"""Legacy setup shim so `pip install -e .` works without the `wheel`
package (the evaluation environment is offline)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Using SMT to Accelerate Nested Virtualization' "
        "(ISCA 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
