"""§6.2 — share of L0 trap-handling time spent on L1's VMCS accesses.

Paper: *"profiling of our benchmarks reveals that of all time spent
handling VM traps in L0, only about 4% is spent in the VM trap handlers
triggered by VMCS accesses in L1"* — the argument for why enlightened-
VMCS-style paravirtualization is orthogonal to SVt.
"""

from repro.analysis.breakdown import vmcs_access_share
from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.io.net import Packet, install_network
from repro.workloads.netperf import RrConfig, _one_rr


def test_sec62_vmcs_access_share(benchmark, report):
    def profile():
        machine = Machine(mode=ExecutionMode.BASELINE)
        net = install_network(machine)
        net.fabric.remote_handler = lambda p: [Packet("r", 1)]
        cfg = RrConfig()
        for i in range(12):
            _one_rr(machine, net, cfg, i + 1)
        return vmcs_access_share(machine.stack)

    share = benchmark(profile)

    report("Section 6.2", format_table(
        ["Quantity", "Measured", "Paper"],
        [("L0 time in L1-VMCS-access handlers",
          f"{share * 100:.1f}%", "~4%")],
    ))

    # Small single-digit share — paravirtualizing VMCS accesses would
    # barely move the needle, exactly the paper's point.
    assert 0.01 < share < 0.10
