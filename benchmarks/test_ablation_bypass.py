"""Ablation E — level bypass (paper §3.1's future-work extension).

Quantifies the gap between HW SVt and "full hardware support for nested
virtualization": with direct L2->L1 trap delivery for emulation-only
exits, a nested cpuid should approach a *single-level* trap's cost.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.bypass import install_bypass
from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa


def _cpuid_us(machine, iterations=20):
    machine.run_program(isa.Program([isa.cpuid()]))
    result = machine.run_program(isa.Program([isa.cpuid()],
                                             repeat=iterations))
    return result.ns_per_instruction / 1000.0


def test_ablation_level_bypass(benchmark, report):
    def run_all():
        times = {}
        times["baseline"] = _cpuid_us(Machine(ExecutionMode.BASELINE))
        times["hw_svt"] = _cpuid_us(Machine(ExecutionMode.HW_SVT))
        bypass_machine = Machine(ExecutionMode.HW_SVT)
        engine = install_bypass(bypass_machine)
        times["hw_svt_bypass"] = _cpuid_us(bypass_machine)
        times["_bypassed"] = engine.bypassed_exits
        single = Machine(ExecutionMode.BASELINE)
        single.run_program(isa.Program([isa.cpuid()]), level=1)
        result = single.run_program(isa.Program([isa.cpuid()], repeat=20),
                                    level=1)
        times["single_level"] = result.ns_per_instruction / 1000.0
        return times

    times = benchmark(run_all)
    base = times["baseline"]

    report("Ablation E: level bypass", format_table(
        ["Configuration", "cpuid (us)", "Speedup vs baseline"],
        [
            ("baseline nested", f"{base:.2f}", "1.00x"),
            ("HW SVt", f"{times['hw_svt']:.2f}",
             f"{base / times['hw_svt']:.2f}x"),
            ("HW SVt + L0 bypass (Sec. 3.1)",
             f"{times['hw_svt_bypass']:.2f}",
             f"{base / times['hw_svt_bypass']:.2f}x"),
            ("single-level trap (the floor)",
             f"{times['single_level']:.2f}",
             f"{base / times['single_level']:.2f}x"),
        ],
        title="How close bypass gets to full hardware nested support",
    ))

    assert times["_bypassed"] >= 20
    # Bypass removes the transforms and L0 handler entirely: expected
    # cost ~= guest work + 2 stall/resume + L1's pure handler.
    expected_us = (50 + 2 * 20 + 1120) / 1000.0
    assert times["hw_svt_bypass"] == pytest.approx(expected_us, rel=0.05)
    # Ordering: baseline > HW SVt > bypass; bypass lands below even the
    # single-level software path (no memory switches at all).
    assert base > times["hw_svt"] > times["hw_svt_bypass"]
    assert times["hw_svt_bypass"] < times["single_level"]
