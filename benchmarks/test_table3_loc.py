"""Table 3 — summary of code changes for the SW SVt prototype.

The paper's Table 3 reports the prototype's footprint on QEMU
(+654/-10), Linux/KVM (+2432/-51) and other Linux code (+227/-2).  Our
prototype is a simulator, not a KVM patch, so the equivalent audit
(`repro.analysis.loc`) counts the lines of this repository that
implement the prototype-specific machinery, for a scale comparison.
"""

from repro.analysis.loc import EQUIVALENTS, PAPER, audit
from repro.analysis.report import format_table


def test_table3_prototype_footprint(benchmark, report):
    ours = benchmark(audit)

    rows = []
    for role, (added, removed) in PAPER.items():
        rows.append((
            role,
            f"+{added}/-{removed}",
            f"{ours[role]} LoC",
            ", ".join(EQUIVALENTS[role]),
        ))
    report("Table 3", format_table(
        ["Codebase", "Paper changes", "Our equivalent", "Modules"],
        rows,
        title="Table 3: prototype footprint (paper patch vs simulator "
              "modules)",
    ))

    # Same order of magnitude, same ranking: the KVM-side work dominates.
    assert ours["Linux / KVM"] > ours["QEMU"]
    assert ours["Linux / KVM"] > ours["Linux / other"]
    for loc in ours.values():
        assert 50 <= loc <= 5000
