"""Ablation A — sensitivity to the lazy/pure handler split.

Table 1 folds lazy context-switch work into the L0/L1 handler rows; our
calibration splits part 3 into 2.82 us pure + 2.07 us lazy and part 5
into 1.12 + 0.84 (DESIGN.md).  The split is the one free parameter in the
Table-1 calibration, so this ablation sweeps it: more lazy share means
HW SVt removes more, and the Fig. 6 HW speedup moves accordingly — the
paper's 1.94x pins the split we chose.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.cpu.costs import CostModel


def _with_lazy_fraction(fraction):
    """CostModel with `fraction` of Table-1 parts 3/5 treated as lazy."""
    part3, part5 = 4890, 1960
    l0_lazy = int(part3 * fraction)
    l1_lazy = int(part5 * fraction)
    base = CostModel()
    l0_pure = dict(base.l0_handler_pure)
    l1_pure = dict(base.l1_handler_pure)
    l0_pure["CPUID"] = part3 - l0_lazy
    l1_pure["CPUID"] = part5 - l1_lazy
    return base.with_overrides(
        l0_lazy_switch=l0_lazy,
        l1_lazy_switch=l1_lazy,
        l0_handler_pure=l0_pure,
        l1_handler_pure=l1_pure,
    )


def _hw_speedup(costs):
    times = {}
    for mode in (ExecutionMode.BASELINE, ExecutionMode.HW_SVT):
        machine = Machine(mode=mode, costs=costs)
        machine.run_program(isa.Program([isa.cpuid()]))
        result = machine.run_program(isa.Program([isa.cpuid()], repeat=10))
        times[mode] = result.ns_per_instruction
    return times[ExecutionMode.BASELINE] / times[ExecutionMode.HW_SVT]


def test_ablation_lazy_split(benchmark, report):
    fractions = (0.0, 0.2, 0.423, 0.6, 0.8)

    def sweep():
        return {f: _hw_speedup(_with_lazy_fraction(f)) for f in fractions}

    speedups = benchmark(sweep)

    report("Ablation A: lazy/pure split", format_table(
        ["lazy share of parts 3+5", "baseline (us)", "HW SVt speedup"],
        [
            (f"{f:.3f}",
             f"{_with_lazy_fraction(f).table1_total() / 1000:.2f}",
             f"{s:.2f}x")
            for f, s in speedups.items()
        ],
        title="HW SVt Fig.-6 speedup vs lazy-share calibration "
              "(paper: 1.94x -> share ~0.42)",
    ))

    # Baseline total is invariant (the split moves cost between rows).
    for fraction in fractions:
        assert _with_lazy_fraction(fraction).table1_total() == 10_400
    # Monotonic: more lazy share -> more HW SVt benefit.
    ordered = [speedups[f] for f in fractions]
    assert ordered == sorted(ordered)
    # No lazy share cannot explain the paper's 1.94x...
    assert speedups[0.0] < 1.5
    # ...our calibrated share reproduces it.
    assert speedups[0.423] == pytest.approx(1.94, abs=0.02)
