"""Ablation A — sensitivity to the lazy/pure handler split.

Table 1 folds lazy context-switch work into the L0/L1 handler rows; our
calibration splits part 3 into 2.82 us pure + 2.07 us lazy and part 5
into 1.12 + 0.84 (DESIGN.md).  The split is the one free parameter in the
Table-1 calibration, so this ablation sweeps it: more lazy share means
HW SVt removes more, and the Fig. 6 HW speedup moves accordingly — the
paper's 1.94x pins the split we chose.  The sweep drivers live in
``repro.exp.experiments.ablations`` (shared with the registered
``ablation_lazy_split`` experiment).
"""

import pytest

from repro.analysis.report import format_table
from repro.exp.experiments.ablations import (
    AblationLazySplit,
    hw_speedup,
    with_lazy_fraction,
)

FRACTIONS = AblationLazySplit.FRACTIONS


def test_ablation_lazy_split(benchmark, report):
    def sweep():
        return {f: hw_speedup(with_lazy_fraction(f)) for f in FRACTIONS}

    speedups = benchmark(sweep)

    report("Ablation A: lazy/pure split", format_table(
        ["lazy share of parts 3+5", "baseline (us)", "HW SVt speedup"],
        [
            (f"{f:.3f}",
             f"{with_lazy_fraction(f).table1_total() / 1000:.2f}",
             f"{s:.2f}x")
            for f, s in speedups.items()
        ],
        title="HW SVt Fig.-6 speedup vs lazy-share calibration "
              "(paper: 1.94x -> share ~0.42)",
    ))

    # Baseline total is invariant (the split moves cost between rows).
    for fraction in FRACTIONS:
        assert with_lazy_fraction(fraction).table1_total() == 10_400
    # Monotonic: more lazy share -> more HW SVt benefit.
    ordered = [speedups[f] for f in FRACTIONS]
    assert ordered == sorted(ordered)
    # No lazy share cannot explain the paper's 1.94x...
    assert speedups[0.0] < 1.5
    # ...our calibrated share reproduces it.
    assert speedups[0.423] == pytest.approx(1.94, abs=0.02)
