"""Figure 6 — cpuid latency across L0/L1/L2/SW SVt/HW SVt."""

import pytest

from repro.analysis.report import format_table
from repro.workloads import cpuid

#: Paper Fig. 6 values (L1 is read off the figure; the rest are stated).
PAPER = {"L0": 0.05, "L1": None, "L2": 10.40, "SW SVt": 10.40 / 1.23,
         "HW SVt": 10.40 / 1.94}


def test_fig6_cpuid_bars(benchmark, report):
    bars = benchmark(cpuid.figure6, iterations=20)

    l2 = bars["L2"]
    rows = []
    for label, us in bars.items():
        paper = PAPER[label]
        rows.append((
            label,
            f"{us:.2f}",
            f"{l2 / us:.2f}x" if label in ("SW SVt", "HW SVt") else "",
            f"{us / bars['L0']:.0f}x",
            f"{paper:.2f}" if paper else "(figure only)",
        ))
    report("Figure 6", format_table(
        ["System", "Time (us)", "Speedup vs L2", "Overhead vs L0",
         "Paper (us)"],
        rows,
        title="Figure 6: cpuid execution time",
    ))

    assert bars["L2"] == pytest.approx(10.40, abs=0.02)
    assert l2 / bars["SW SVt"] == pytest.approx(1.23, abs=0.01)
    assert l2 / bars["HW SVt"] == pytest.approx(1.94, abs=0.01)
    # Fig. 6 right axis: ~200x overhead of nested vs native.
    assert bars["L2"] / bars["L0"] == pytest.approx(208, rel=0.02)
    assert bars["L0"] < bars["L1"] < bars["HW SVt"]
