"""Figure 6 — cpuid latency across L0/L1/L2/SW SVt/HW SVt."""

import pytest

from repro.analysis.report import render_result
from repro.exp import registry
from repro.exp.registry import RunContext


def test_fig6_cpuid_bars(benchmark, report):
    experiment = registry.get("fig6")
    ctx = RunContext.create(
        experiment.resolve({"iterations": 20}, strict=True))
    result = benchmark(experiment.run, ctx)

    report("Figure 6", render_result(result))

    assert result.scalar("l2_us") == pytest.approx(10.40, abs=0.02)
    assert result.scalar("sw_speedup") == pytest.approx(1.23, abs=0.01)
    assert result.scalar("hw_speedup") == pytest.approx(1.94, abs=0.01)
    # Fig. 6 right axis: ~200x overhead of nested vs native.
    assert result.scalar("nested_overhead_vs_l0") == pytest.approx(
        208, rel=0.02)
    assert (result.scalar("l0_us")
            < result.scalar("l1_us")
            < result.scalar("hw_svt_us"))
