"""Ablation G — dynamic SVt/SMT choice per core (paper §3.3).

Finds the nested-trap rate where SVt overtakes SMT on a core and shows a
dynamic per-core policy dominating both static fleets.
"""


from repro.analysis.report import format_table
from repro.core.coexist import (
    CoexistConfig,
    DynamicPolicy,
    crossover_trap_rate,
    useful_throughput,
)


def test_ablation_coexistence(benchmark, report):
    config = CoexistConfig()

    def analyse():
        rates = [0, 10_000, 25_000, 50_000, 75_000]
        grid = [
            (rate,
             useful_throughput(config, "smt", rate),
             useful_throughput(config, "svt", rate))
            for rate in rates
        ]
        fleet = DynamicPolicy(config).fleet_throughput(
            [0, 1_000, 5_000, 20_000, 40_000, 60_000, 90_000, 120_000]
        )
        return grid, crossover_trap_rate(config), fleet

    grid, crossover, fleet = benchmark(analyse)

    rendered = format_table(
        ["nested traps/s", "SMT throughput", "SVt throughput", "winner"],
        [
            (f"{rate}", f"{smt:.3f}", f"{svt:.3f}",
             "SVt" if svt > smt else "SMT")
            for rate, smt, svt in grid
        ],
        title="Per-core useful throughput (relative to one bare thread)",
    )
    rendered += (
        f"\ncrossover: {crossover:,.0f} traps/s"
        f"\n8-core fleet: dynamic {fleet['dynamic']:.2f} vs "
        f"all-SMT {fleet['all_smt']:.2f} vs all-SVt {fleet['all_svt']:.2f}"
    )
    report("Ablation G: SVt/SMT coexistence", rendered)

    assert 10_000 < crossover < 100_000
    assert fleet["dynamic"] > fleet["all_smt"]
    assert fleet["dynamic"] > fleet["all_svt"]
