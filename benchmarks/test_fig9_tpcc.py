"""Figure 9 — TPC-C + PostgreSQL throughput."""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.workloads import tpcc


def test_fig9_tpcc_throughput(benchmark, report):
    def run_both():
        return (tpcc.run(ExecutionMode.BASELINE, transactions=2),
                tpcc.run(ExecutionMode.SW_SVT, transactions=2),
                tpcc.run(ExecutionMode.HW_SVT, transactions=2))

    baseline, svt, hw = benchmark(run_both)
    speedup = svt.ktpm / baseline.ktpm

    report("Figure 9", format_table(
        ["System", "ktpm", "txn (ms)", "Speedup"],
        [
            ("Baseline", f"{baseline.ktpm:.2f} (paper 6.37)",
             f"{baseline.txn_ms:.1f}", "1.00x"),
            ("SVt (SW)", f"{svt.ktpm:.2f}", f"{svt.txn_ms:.1f}",
             f"{speedup:.2f}x (paper 1.18x)"),
            ("SVt (HW model)", f"{hw.ktpm:.2f}", f"{hw.txn_ms:.1f}",
             f"{hw.ktpm / baseline.ktpm:.2f}x (not in paper)"),
        ],
        title="Figure 9: TPC-C throughput",
    ))

    assert baseline.ktpm == pytest.approx(6.37, rel=0.03)
    assert speedup == pytest.approx(1.18, abs=0.05)
    assert hw.ktpm > svt.ktpm
