"""Ablation J — functional L3 vs the analytic deep-nesting model.

`repro.virt.l3` runs a third level through the live machinery (L2's
privileged operations recurse as full depth-2 exits); `repro.virt.deep`
predicts the same costs in closed form.  This bench runs both and
confronts them — and shows the headline depth effect: SVt's advantage
*grows* with nesting depth on aux-heavy traps.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.virt.hypervisor import MSR_TSC_DEADLINE
from repro.virt.l3 import install_third_level


def _l3_trap_us(mode, instruction, repeat=4):
    stack = install_third_level(Machine(mode=mode))
    elapsed, _ = stack.run_program(isa.Program([instruction],
                                               repeat=repeat))
    return elapsed / repeat / 1000.0


def _l2_trap_us(mode, instruction, repeat=4):
    machine = Machine(mode=mode)
    machine.run_program(isa.Program([instruction]))
    result = machine.run_program(isa.Program([instruction],
                                             repeat=repeat))
    return result.elapsed_ns / repeat / 1000.0


def test_ablation_l3_functional(benchmark, report):
    def run_grid():
        grid = {}
        for mode in ExecutionMode.ALL:
            grid[(mode, "cpuid", 2)] = _l2_trap_us(mode, isa.cpuid())
            grid[(mode, "cpuid", 3)] = _l3_trap_us(mode, isa.cpuid())
            grid[(mode, "timer", 2)] = _l2_trap_us(
                mode, isa.wrmsr(MSR_TSC_DEADLINE, 10**9))
            grid[(mode, "timer", 3)] = _l3_trap_us(
                mode, isa.wrmsr(MSR_TSC_DEADLINE, 10**9))
        return grid

    grid = benchmark(run_grid)

    rows = []
    for trap in ("cpuid", "timer"):
        for depth in (2, 3):
            base = grid[(ExecutionMode.BASELINE, trap, depth)]
            rows.append((
                f"{trap} from L{depth}",
                f"{base:.2f}",
                f"{base / grid[(ExecutionMode.SW_SVT, trap, depth)]:.2f}x",
                f"{base / grid[(ExecutionMode.HW_SVT, trap, depth)]:.2f}x",
            ))
    report("Ablation J: functional L3", format_table(
        ["Trap", "baseline (us)", "SW SVt", "HW SVt"],
        rows,
        title="Depth-2 vs depth-3 traps through the live machinery",
    ))

    # Aux-free traps cost the same at both depths (one reflection)...
    assert grid[(ExecutionMode.BASELINE, "cpuid", 3)] == pytest.approx(
        grid[(ExecutionMode.BASELINE, "cpuid", 2)], rel=0.02)
    # ...aux-heavy ones blow up with depth (the Turtles effect).
    assert grid[(ExecutionMode.BASELINE, "timer", 3)] > \
        2.0 * grid[(ExecutionMode.BASELINE, "timer", 2)]
    # SVt's advantage grows with depth on aux-heavy traps.
    hw2 = (grid[(ExecutionMode.BASELINE, "timer", 2)]
           / grid[(ExecutionMode.HW_SVT, "timer", 2)])
    hw3 = (grid[(ExecutionMode.BASELINE, "timer", 3)]
           / grid[(ExecutionMode.HW_SVT, "timer", 3)])
    assert hw3 > hw2
