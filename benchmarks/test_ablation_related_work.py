"""Ablation H — SVt vs the §7 alternatives on one nested I/O operation.

The paper argues in prose that SR-IOV, side-cores and direct interrupt
delivery each accelerate a *subset* of exits at a capability cost, while
SVt accelerates all of them and keeps migration/interposition.  This
bench prices the argument on the calibrated cost base.
"""

from repro.analysis.report import format_table
from repro.core.related_work import IoOpShape, evaluate, speedup_table


def test_ablation_related_work(benchmark, report):
    rows = benchmark(speedup_table)

    report("Ablation H: related work", format_table(
        ["Technique", "op (us)", "Speedup", "Caveats"],
        [(name, f"{us:.1f}", f"{speedup:.2f}x", caveats)
         for name, us, speedup, caveats in rows],
        title="One nested I/O op under each Sec.-7 alternative "
              "(2 device + 3 interrupt + 1 other exits)",
    ))

    by_name = {row[0]: row for row in rows}
    # Everyone beats baseline; only SVt carries no caveats.
    assert by_name["baseline"][2] == 1.0
    assert all(row[2] >= 1.0 for row in rows)
    assert by_name["svt"][3] == "none"
    assert all(by_name[n][3] != "none"
               for n in ("sriov", "sidecore", "eli"))

    # Coverage matters: on a broad exit mix SVt wins outright.
    broad = evaluate(IoOpShape(device_exits=1, interrupt_exits=1,
                               other_exits=5))
    fastest = min(broad.items(), key=lambda item: item[1].op_ns)
    assert fastest[0] == "svt"
