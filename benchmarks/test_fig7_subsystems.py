"""Figure 7 — I/O subsystem latency and bandwidth speedups."""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.workloads import disk, netperf

MODES = ExecutionMode.ALL


def _speedups(values, higher_is_better):
    base = values[ExecutionMode.BASELINE]
    if higher_is_better:
        return (values[ExecutionMode.SW_SVT] / base,
                values[ExecutionMode.HW_SVT] / base)
    return (base / values[ExecutionMode.SW_SVT],
            base / values[ExecutionMode.HW_SVT])


def test_fig7_network_latency(benchmark, report):
    values = benchmark(
        lambda: {m: netperf.run_latency(m, operations=12, warmup=2)
                 for m in MODES}
    )
    sw, hw = _speedups(values, higher_is_better=False)
    base = values[ExecutionMode.BASELINE]
    report("Figure 7 - network latency", format_table(
        ["Metric", "Baseline", "SW SVt", "HW SVt"],
        [("netperf TCP_RR (us)",
          f"{base:.0f} (paper 163)",
          f"{sw:.2f}x (paper 1.10x)",
          f"{hw:.2f}x (paper 2.38x)")],
    ))
    assert base == pytest.approx(163, rel=0.06)
    assert sw == pytest.approx(1.10, abs=0.06)
    assert hw == pytest.approx(2.38, abs=0.12)


def test_fig7_network_bandwidth(benchmark, report):
    values = benchmark(
        lambda: {m: netperf.run_bandwidth(m) for m in MODES}
    )
    sw, hw = _speedups(values, higher_is_better=True)
    base = values[ExecutionMode.BASELINE]
    report("Figure 7 - network bandwidth", format_table(
        ["Metric", "Baseline", "SW SVt", "HW SVt"],
        [("netperf TCP_STREAM (Mbps)",
          f"{base:.0f} (paper 9387)",
          f"{sw:.2f}x (paper 1.00x)",
          f"{hw:.2f}x (paper 1.12x)")],
    ))
    assert base == pytest.approx(9387, rel=0.03)
    assert sw == pytest.approx(1.00, abs=0.05)
    assert hw == pytest.approx(1.12, abs=0.05)


def test_fig7_disk_randrd_latency(benchmark, report):
    values = benchmark(
        lambda: {m: disk.run_latency(m, write=False, operations=10,
                                     warmup=1) for m in MODES}
    )
    sw, hw = _speedups(values, higher_is_better=False)
    base = values[ExecutionMode.BASELINE]
    report("Figure 7 - disk randrd latency", format_table(
        ["Metric", "Baseline", "SW SVt", "HW SVt"],
        [("ioping 512B randrd (us)",
          f"{base:.0f} (paper 126)",
          f"{sw:.2f}x (paper 1.30x)",
          f"{hw:.2f}x (paper 2.18x)")],
    ))
    assert base == pytest.approx(126, rel=0.06)
    assert sw == pytest.approx(1.30, abs=0.08)
    assert hw == pytest.approx(2.18, abs=0.25)


def test_fig7_disk_randwr_latency(benchmark, report):
    values = benchmark(
        lambda: {m: disk.run_latency(m, write=True, operations=10,
                                     warmup=1) for m in MODES}
    )
    sw, hw = _speedups(values, higher_is_better=False)
    base = values[ExecutionMode.BASELINE]
    report("Figure 7 - disk randwr latency", format_table(
        ["Metric", "Baseline", "SW SVt", "HW SVt"],
        [("ioping 512B randwr (us)",
          f"{base:.0f} (paper 179)",
          f"{sw:.2f}x (paper 1.05x)",
          f"{hw:.2f}x (paper 2.26x)")],
    ))
    assert base == pytest.approx(179, rel=0.06)
    assert sw == pytest.approx(1.05, abs=0.05)
    assert hw == pytest.approx(2.26, abs=0.15)


def test_fig7_disk_randrd_bandwidth(benchmark, report):
    values = benchmark(
        lambda: {m: disk.run_bandwidth(m, write=False) for m in MODES}
    )
    sw, hw = _speedups(values, higher_is_better=True)
    base = values[ExecutionMode.BASELINE]
    report("Figure 7 - disk randrd bandwidth", format_table(
        ["Metric", "Baseline", "SW SVt", "HW SVt"],
        [("fio 4KB randrd (KB/s)",
          f"{base:.0f} (paper 87136)",
          f"{sw:.2f}x (paper 1.55x)",
          f"{hw:.2f}x (paper 2.31x)")],
    ))
    assert base == pytest.approx(87_136, rel=0.10)
    assert 1.2 <= sw <= 1.6
    assert 2.0 <= hw <= 2.6


def test_fig7_disk_randwr_bandwidth(benchmark, report):
    values = benchmark(
        lambda: {m: disk.run_bandwidth(m, write=True) for m in MODES}
    )
    sw, hw = _speedups(values, higher_is_better=True)
    base = values[ExecutionMode.BASELINE]
    report("Figure 7 - disk randwr bandwidth", format_table(
        ["Metric", "Baseline", "SW SVt", "HW SVt"],
        [("fio 4KB randwr (KB/s)",
          f"{base:.0f} (paper 55769)",
          f"{sw:.2f}x (paper 1.18x)",
          f"{hw:.2f}x (paper 2.60x)")],
    ))
    assert base == pytest.approx(55_769, rel=0.05)
    assert sw == pytest.approx(1.18, abs=0.06)
    assert hw == pytest.approx(2.60, abs=0.15)
