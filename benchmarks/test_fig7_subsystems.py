"""Figure 7 — I/O subsystem latency and bandwidth speedups.

The sweep itself lives in the registered ``fig7`` experiment; the merged
:class:`~repro.exp.result.Result` is computed once per module and each
test benchmarks its own metric's three cells, then asserts the Result's
scalars against the paper.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.exp import registry
from repro.exp.experiments.figures import FIG7_METRICS
from repro.exp.registry import RunContext

EXPERIMENT = registry.get("fig7")
PARAMS = EXPERIMENT.resolve()


@pytest.fixture(scope="module")
def fig7():
    return EXPERIMENT.run(RunContext.create(PARAMS))


def _metric_cells(metric):
    return {mode: EXPERIMENT.run_cell(f"{metric}:{mode}", PARAMS)
            for mode in ExecutionMode.ALL}


def _metric_block(result, metric):
    label = FIG7_METRICS[metric][0]
    table = result.tables[0]
    row = next(r for r in table.rows if r.label == label)
    return format_table(
        list(table.columns) + ["Paper (base / sw / hw)"],
        [(row.label, *row.values, row.paper)],
    )


def test_fig7_network_latency(benchmark, report, fig7):
    benchmark(_metric_cells, "net_latency")
    report("Figure 7 - network latency",
           _metric_block(fig7, "net_latency"))
    assert fig7.scalar("net_latency_base") == pytest.approx(163, rel=0.06)
    assert fig7.scalar("net_latency_sw_speedup") == pytest.approx(
        1.10, abs=0.06)
    assert fig7.scalar("net_latency_hw_speedup") == pytest.approx(
        2.38, abs=0.12)


def test_fig7_network_bandwidth(benchmark, report, fig7):
    benchmark(_metric_cells, "net_bandwidth")
    report("Figure 7 - network bandwidth",
           _metric_block(fig7, "net_bandwidth"))
    assert fig7.scalar("net_bandwidth_base") == pytest.approx(
        9387, rel=0.03)
    assert fig7.scalar("net_bandwidth_sw_speedup") == pytest.approx(
        1.00, abs=0.05)
    assert fig7.scalar("net_bandwidth_hw_speedup") == pytest.approx(
        1.12, abs=0.05)


def test_fig7_disk_randrd_latency(benchmark, report, fig7):
    benchmark(_metric_cells, "disk_randrd_latency")
    report("Figure 7 - disk randrd latency",
           _metric_block(fig7, "disk_randrd_latency"))
    assert fig7.scalar("disk_randrd_latency_base") == pytest.approx(
        126, rel=0.06)
    assert fig7.scalar("disk_randrd_latency_sw_speedup") == pytest.approx(
        1.30, abs=0.08)
    assert fig7.scalar("disk_randrd_latency_hw_speedup") == pytest.approx(
        2.18, abs=0.25)


def test_fig7_disk_randwr_latency(benchmark, report, fig7):
    benchmark(_metric_cells, "disk_randwr_latency")
    report("Figure 7 - disk randwr latency",
           _metric_block(fig7, "disk_randwr_latency"))
    assert fig7.scalar("disk_randwr_latency_base") == pytest.approx(
        179, rel=0.06)
    assert fig7.scalar("disk_randwr_latency_sw_speedup") == pytest.approx(
        1.05, abs=0.05)
    assert fig7.scalar("disk_randwr_latency_hw_speedup") == pytest.approx(
        2.26, abs=0.15)


def test_fig7_disk_randrd_bandwidth(benchmark, report, fig7):
    benchmark(_metric_cells, "disk_randrd_bandwidth")
    report("Figure 7 - disk randrd bandwidth",
           _metric_block(fig7, "disk_randrd_bandwidth"))
    assert fig7.scalar("disk_randrd_bandwidth_base") == pytest.approx(
        87_136, rel=0.10)
    assert 1.2 <= fig7.scalar("disk_randrd_bandwidth_sw_speedup") <= 1.6
    assert 2.0 <= fig7.scalar("disk_randrd_bandwidth_hw_speedup") <= 2.6


def test_fig7_disk_randwr_bandwidth(benchmark, report, fig7):
    benchmark(_metric_cells, "disk_randwr_bandwidth")
    report("Figure 7 - disk randwr bandwidth",
           _metric_block(fig7, "disk_randwr_bandwidth"))
    assert fig7.scalar("disk_randwr_bandwidth_base") == pytest.approx(
        55_769, rel=0.05)
    assert fig7.scalar("disk_randwr_bandwidth_sw_speedup") == pytest.approx(
        1.18, abs=0.06)
    assert fig7.scalar("disk_randwr_bandwidth_hw_speedup") == pytest.approx(
        2.60, abs=0.15)
