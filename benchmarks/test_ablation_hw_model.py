"""Ablation B — direct HW SVt simulation vs the paper's §6 methodology.

The paper derives "HW SVt" by scaling SW SVt measurements (removing every
context-switch cost from the Table-1 breakdown).  We simulate the
hardware directly; this ablation applies the paper's scaling to our
baseline/SW traces and checks both roads meet.
"""

import pytest

from repro.analysis.hw_model import scale_sw_to_hw
from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa


def _traced(mode, repeat=20):
    machine = Machine(mode=mode)
    machine.run_program(isa.Program([isa.cpuid()]))        # warmup
    before = machine.tracer.snapshot()
    start = machine.sim.now
    machine.run_program(isa.Program([isa.cpuid()], repeat=repeat))
    elapsed = machine.sim.now - start

    class _Delta:
        totals = {
            key: machine.tracer.totals[key] - before.get(key, 0)
            for key in machine.tracer.totals
        }

        @staticmethod
        def total(*categories):
            if not categories:
                return sum(_Delta.totals.values())
            return sum(_Delta.totals.get(c, 0) for c in categories)

    return elapsed / repeat, _Delta


def test_ablation_hw_model_cross_check(benchmark, report):
    def both_roads():
        _, baseline_trace = _traced(ExecutionMode.BASELINE)
        _, sw_trace = _traced(ExecutionMode.SW_SVT)
        direct_ns, _ = _traced(ExecutionMode.HW_SVT)
        return (
            scale_sw_to_hw(baseline_trace) / 20,
            scale_sw_to_hw(sw_trace) / 20,
            direct_ns,
        )

    from_baseline, from_sw, direct = benchmark(both_roads)

    report("Ablation B: HW model methodologies", format_table(
        ["Road to HW SVt (cpuid)", "us/op"],
        [
            ("paper methodology on baseline trace",
             f"{from_baseline / 1000:.2f}"),
            ("paper methodology on SW SVt trace", f"{from_sw / 1000:.2f}"),
            ("direct hardware simulation", f"{direct / 1000:.2f}"),
        ],
        title="Scaling measured traces vs simulating the hardware",
    ))

    assert from_baseline == pytest.approx(direct, rel=0.03)
    assert from_sw == pytest.approx(direct, rel=0.03)
