"""Ablation B — direct HW SVt simulation vs the paper's §6 methodology.

The paper derives "HW SVt" by scaling SW SVt measurements (removing every
context-switch cost from the Table-1 breakdown).  We simulate the
hardware directly; this ablation applies the paper's scaling to our
baseline/SW traces and checks both roads meet.  The trace/scaling driver
lives in ``repro.exp.experiments.ablations`` (shared with the registered
``ablation_hw_model`` experiment).
"""

import pytest

from repro.analysis.report import format_table
from repro.exp.experiments.ablations import hw_model_cross_check


def test_ablation_hw_model_cross_check(benchmark, report):
    roads = benchmark(hw_model_cross_check)
    from_baseline = roads["scaled_from_baseline_ns"]
    from_sw = roads["scaled_from_sw_ns"]
    direct = roads["direct_ns"]

    report("Ablation B: HW model methodologies", format_table(
        ["Road to HW SVt (cpuid)", "us/op"],
        [
            ("paper methodology on baseline trace",
             f"{from_baseline / 1000:.2f}"),
            ("paper methodology on SW SVt trace", f"{from_sw / 1000:.2f}"),
            ("direct hardware simulation", f"{direct / 1000:.2f}"),
        ],
        title="Scaling measured traces vs simulating the hardware",
    ))

    assert from_baseline == pytest.approx(direct, rel=0.03)
    assert from_sw == pytest.approx(direct, rel=0.03)
