"""Table 4 — machine parameters of the evaluation platform."""

from repro.analysis.report import format_table
from repro.config import paper_machine

PAPER_ROWS = {
    "L0": "2xIntel E5-2630v3 (2.4GHz, 8 cores, 2-SMT), "
          "2x64GB RAM, Intel X540-AT2 (10Gb)",
    "L1": "6 vCPUs (1 reserved), 50GB RAM, "
          "virtio-net-pci+vhost, virtio disk @ ramfs",
    "L2": "3 vCPUs (1 reserved), 35GB RAM, "
          "virtio-net-pci+vhost, virtio disk @ ramfs",
}


def test_table4_machine_parameters(benchmark, report):
    machine = benchmark(paper_machine)
    rows = machine.describe()

    report("Table 4", format_table(
        ["Level", "Description"],
        rows,
        title="Table 4: machine parameters",
    ))

    assert dict(rows) == PAPER_ROWS
    assert machine.host.total_hw_threads == 32
    assert machine.vm(2).usable_vcpus == 2   # "experiments run in two
    #                                           virtual CPUs in L2"
