"""Table 1 — time breakdown of one nested cpuid (total 10.40 us)."""

import pytest

from repro.analysis.report import format_table
from repro.workloads import cpuid

PAPER_ROWS = {
    "0 L2": (0.05, 0.47),
    "1 Switch L2<->L0": (0.81, 7.75),
    "2 Transform vmcs02/vmcs12": (1.29, 12.45),
    "3 L0 handler": (4.89, 47.02),
    "4 Switch L0<->L1": (1.40, 13.43),
    "5 L1 handler": (1.96, 18.87),
}


def test_table1_breakdown(benchmark, report):
    rows = benchmark(cpuid.table1_breakdown, iterations=20)

    rendered = format_table(
        ["Part", "Time (us)", "Perc. (%)", "Paper (us)", "Paper (%)"],
        [
            (label, f"{us:.2f}", f"{pct:.2f}",
             f"{PAPER_ROWS[label][0]:.2f}", f"{PAPER_ROWS[label][1]:.2f}")
            for label, us, pct in rows
        ],
        title="Table 1: nested cpuid breakdown (baseline)",
    )
    total = sum(us for _, us, _ in rows)
    rendered += f"\nTotal: {total:.2f} us (paper: 10.40 us)"
    report("Table 1", rendered)

    assert total == pytest.approx(10.40, abs=0.02)
    for label, us, pct in rows:
        assert us == pytest.approx(PAPER_ROWS[label][0], abs=0.02)
        assert pct == pytest.approx(PAPER_ROWS[label][1], abs=0.2)
