"""Ablation C — wait-mechanism choice for the SW SVt channel.

Paper §6.1 concludes "SMT+mwait is a good compromise"; this ablation
runs the nested cpuid microbenchmark with every mechanism and placement
to show the conclusion end to end.  The per-variant driver lives in
``repro.exp.experiments.ablations`` (shared with the registered
``ablation_wait`` experiment).
"""

import pytest

from repro.analysis.report import format_table
from repro.exp.experiments.ablations import AblationWait, channel_cpuid_us
from repro.workloads import channels

PLACEMENTS = AblationWait.PLACEMENTS
MECHANISMS = AblationWait.MECHANISMS


def test_ablation_wait_mechanism_and_placement(benchmark, report):
    grid = benchmark(
        lambda: {
            (placement, mechanism): channel_cpuid_us(placement, mechanism)
            for placement in PLACEMENTS
            for mechanism in MECHANISMS
        }
    )

    report("Ablation C: wait mechanism x placement", format_table(
        ["placement"] + list(MECHANISMS),
        [
            (placement,
             *(f"{grid[(placement, mech)]:.2f} us"
               for mech in MECHANISMS))
            for placement in PLACEMENTS
        ],
        title="Nested cpuid with SW SVt channel variants (raw channel "
              "cost; polling interference handled in sec61 bench)",
    ))

    # Placement dominates: NUMA-placed channels are clearly worst.
    for mechanism in MECHANISMS:
        assert grid[("numa", mechanism)] > grid[("smt", mechanism)]
    # On SMT, mwait beats mutex (blocking wake is costly per trap).
    assert grid[("smt", "mwait")] < grid[("smt", "mutex")]
    # The calibrated configuration is the paper's choice.
    assert grid[("smt", "mwait")] == pytest.approx(8.46, abs=0.05)


def test_ablation_wait_full_sweep_observations(benchmark):
    sweep = benchmark(channels.sweep)
    assert all(sweep.observations.values())
