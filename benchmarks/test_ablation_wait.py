"""Ablation C — wait-mechanism choice for the SW SVt channel.

Paper §6.1 concludes "SMT+mwait is a good compromise"; this ablation
runs the nested cpuid microbenchmark with every mechanism and placement
to show the conclusion end to end.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.workloads import channels


def _cpuid_us(placement, mechanism, iterations=20):
    machine = Machine(mode=ExecutionMode.SW_SVT, placement=placement,
                      wait_mechanism=mechanism)
    machine.run_program(isa.Program([isa.cpuid()]))
    result = machine.run_program(isa.Program([isa.cpuid()],
                                             repeat=iterations))
    return result.ns_per_instruction / 1000.0


def test_ablation_wait_mechanism_and_placement(benchmark, report):
    grid = benchmark(
        lambda: {
            (placement, mechanism): _cpuid_us(placement, mechanism)
            for placement in ("smt", "core", "numa")
            for mechanism in ("polling", "mwait", "mutex")
        }
    )

    report("Ablation C: wait mechanism x placement", format_table(
        ["placement"] + ["polling", "mwait", "mutex"],
        [
            (placement,
             *(f"{grid[(placement, mech)]:.2f} us"
               for mech in ("polling", "mwait", "mutex")))
            for placement in ("smt", "core", "numa")
        ],
        title="Nested cpuid with SW SVt channel variants (raw channel "
              "cost; polling interference handled in sec61 bench)",
    ))

    # Placement dominates: NUMA-placed channels are clearly worst.
    for mechanism in ("polling", "mwait", "mutex"):
        assert grid[("numa", mechanism)] > grid[("smt", mechanism)]
    # On SMT, mwait beats mutex (blocking wake is costly per trap).
    assert grid[("smt", "mwait")] < grid[("smt", "mutex")]
    # The calibrated configuration is the paper's choice.
    assert grid[("smt", "mwait")] == pytest.approx(8.46, abs=0.05)


def test_ablation_wait_full_sweep_observations(benchmark):
    sweep = benchmark(channels.sweep)
    assert all(sweep.observations.values())
