"""§6.1 — communication-channel microbenchmarks (numbers the paper
"does not show for brevity", reproduced with their five observations)."""

from repro.analysis.report import format_table
from repro.core.wait import Placement, WaitMechanism
from repro.workloads import channels


def test_sec61_channel_observations(benchmark, report):
    sweep = benchmark(channels.sweep)

    rows = []
    for workload in (0, 2000, 50000, 200000):
        for mechanism in (WaitMechanism.POLLING, WaitMechanism.MWAIT,
                          WaitMechanism.MUTEX):
            cell = sweep.cell(mechanism, Placement.SMT, workload)
            rows.append((
                f"{workload}", mechanism,
                f"{cell.response_ns:.0f}",
                f"{cell.producer_ns:.0f}",
                f"{cell.total_ns:.0f}",
            ))
    rendered = format_table(
        ["workload (ns)", "mechanism", "response", "producer", "total"],
        rows,
        title="Sec. 6.1: handoff latency on SMT placement (ns)",
    )
    rendered += "\nObservations (paper's five bullets): " + ", ".join(
        f"{name}={'OK' if sweep.observations[name] else 'FAIL'}"
        for name in channels.OBSERVATIONS
    )
    report("Section 6.1 channels", rendered)

    assert all(sweep.observations.values())


def test_sec61_mechanisms_on_nested_cpuid(benchmark, report):
    baseline_us, impacts = benchmark(channels.cpuid_with_mechanisms,
                                     iterations=20)

    report("Section 6.1 cpuid bridge", format_table(
        ["mechanism", "cpuid (us)", "speedup"],
        [("(baseline)", f"{baseline_us:.2f}", "1.00x")] + [
            (i.mechanism, f"{i.cpuid_us:.2f}",
             f"{i.speedup_vs_baseline:.2f}x")
            for i in impacts
        ],
        title="Sec. 6.1: SW SVt channel mechanism -> nested cpuid "
              "(paper: mwait saves ~2 us, 1.23x; polling helps little)",
    ))

    mwait = next(i for i in impacts
                 if i.mechanism == WaitMechanism.MWAIT)
    polling = next(i for i in impacts
                   if i.mechanism == WaitMechanism.POLLING)
    assert abs((baseline_us - mwait.cpuid_us) - 2.0) < 0.2
    assert abs(mwait.speedup_vs_baseline - 1.23) < 0.02
    assert polling.speedup_vs_baseline < 1.05
