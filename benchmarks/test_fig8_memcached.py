"""Figure 8 — memcached latency vs offered load (Facebook ETC)."""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.workloads import memcached


def test_fig8_memcached_curves(benchmark, report):
    def sweep():
        return (
            memcached.run(ExecutionMode.BASELINE, requests=20_000),
            memcached.run(ExecutionMode.SW_SVT, requests=20_000),
        )

    baseline, svt = benchmark(sweep)

    rows = [
        (f"{b.offered_kqps:.1f}",
         f"{b.avg_us:.0f}", f"{b.p99_us:.0f}",
         f"{s.avg_us:.0f}", f"{s.p99_us:.0f}")
        for b, s in zip(baseline.points, svt.points)
    ]
    p99_ratio, avg_ratio = memcached.headline_improvements(baseline, svt)
    rendered = format_table(
        ["kQPS", "base avg", "base p99", "SVt avg", "SVt p99"],
        rows,
        title="Figure 8: memcached latency (us) vs offered load, "
              "SLA 500 us",
    )
    rendered += (
        f"\np99 improvement within SLA: {p99_ratio:.2f}x (paper 2.20x)"
        f"\navg improvement:            {avg_ratio:.2f}x (paper 1.43x)"
        f"\nmax in-SLA load: baseline {baseline.max_load_within_sla():.1f}"
        f" kQPS, SVt {svt.max_load_within_sla():.1f} kQPS"
    )
    report("Figure 8", rendered)

    assert p99_ratio == pytest.approx(2.20, abs=0.35)
    assert avg_ratio == pytest.approx(1.43, abs=0.25)
    assert svt.max_load_within_sla() > baseline.max_load_within_sla()
    # Latency-vs-load curves rise monotonically (open-loop saturation).
    for result in (baseline, svt):
        p99s = [point.p99_us for point in result.points]
        assert p99s == sorted(p99s)
