"""Figure 8 — memcached latency vs offered load (Facebook ETC)."""

import pytest

from repro.analysis.report import render_result
from repro.exp import registry
from repro.exp.registry import RunContext


def test_fig8_memcached_curves(benchmark, report):
    experiment = registry.get("fig8")
    ctx = RunContext.create(
        experiment.resolve({"requests": 20_000}, strict=True))
    result = benchmark(experiment.run, ctx)

    report("Figure 8", render_result(result))

    assert result.scalar("p99_improvement") == pytest.approx(
        2.20, abs=0.35)
    assert result.scalar("avg_improvement") == pytest.approx(
        1.43, abs=0.25)
    assert (result.scalar("svt_max_kqps_in_sla")
            > result.scalar("base_max_kqps_in_sla"))
    # Latency-vs-load curves rise monotonically (open-loop saturation).
    for series in result.series:
        p99s = [y for _x, y in series.points]
        assert p99s == sorted(p99s)
