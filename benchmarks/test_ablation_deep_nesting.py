"""Ablation F — nesting depth beyond two levels.

The paper evaluates two levels; its machinery generalises (§3.1's
multiplexing, §4's "emulate deeper virtualization hierarchies").  This
ablation extends the calibrated cost model recursively to depth 5 and
shows (a) stock nested virtualization's geometric blowup with depth and
(b) SVt's roughly constant-factor win while hardware contexts last,
eroding once levels must be multiplexed.
"""

import pytest

from repro.analysis.report import format_table
from repro.virt.deep import DeepNestingModel


def test_ablation_deep_nesting(benchmark, report):
    model = DeepNestingModel()

    def compute():
        return {
            "wide": model.table(max_depth=5, hardware_contexts=8),
            "narrow": [
                (d, model.svt_exit_ns(d, hardware_contexts=3) / 1000.0)
                for d in range(1, 6)
            ],
        }

    data = benchmark(compute)

    rows = []
    for (depth, base_us, svt_us, speedup), (_, narrow_us) in zip(
            data["wide"], data["narrow"]):
        rows.append((
            f"L{depth}",
            f"{base_us:.2f}",
            f"{svt_us:.2f}",
            f"{speedup:.2f}x",
            f"{narrow_us:.2f}",
        ))
    report("Ablation F: deep nesting", format_table(
        ["Trap from", "baseline (us)", "SVt 8-ctx (us)", "speedup",
         "SVt 3-ctx (us)"],
        rows,
        title="Exit cost vs nesting depth (aux ops per handler run: 2)",
    ))

    base, svt = model.sanity_check_against_simulation()
    assert base == 10_400 and svt == pytest.approx(5360, abs=20)
    depths = data["wide"]
    assert depths[-1][1] / depths[1][1] > 10     # geometric baseline
    assert all(1.8 < row[3] < 2.2 for row in depths[1:])
    # Multiplexing: the 3-context core is worse than the 8-context one
    # at depth >= 3 but still beats the baseline.
    assert data["narrow"][4][1] > depths[4][2]
    assert data["narrow"][4][1] < depths[4][1]
