"""Figure 10 — dropped frames during 4K playback."""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.workloads import video


def test_fig10_dropped_frames(benchmark, report):
    grid = benchmark(video.figure10, seed=7)

    rows = []
    for fps in (24, 60, 120):
        base = grid[fps][ExecutionMode.BASELINE]
        svt = grid[fps][ExecutionMode.SW_SVT]
        paper = video.PAPER[fps]
        rows.append((
            f"{fps} FPS",
            f"{base.dropped} (paper {paper['baseline']})",
            f"{svt.dropped} (paper {paper['svt']})",
        ))
    report("Figure 10", format_table(
        ["Rate", "Baseline drops", "SVt drops"],
        rows,
        title="Figure 10: dropped frames over 5 min of playback",
    ))

    base120 = grid[120][ExecutionMode.BASELINE].dropped
    svt120 = grid[120][ExecutionMode.SW_SVT].dropped
    assert grid[24][ExecutionMode.BASELINE].dropped == 0
    assert grid[24][ExecutionMode.SW_SVT].dropped == 0
    assert grid[60][ExecutionMode.BASELINE].dropped <= 8
    assert grid[60][ExecutionMode.SW_SVT].dropped \
        <= grid[60][ExecutionMode.BASELINE].dropped
    assert base120 == pytest.approx(40, abs=10)
    assert svt120 == pytest.approx(26, abs=8)
    # Paper: "SVt brings frame drops down to 0.65x at 120 FPS".
    assert svt120 / base120 == pytest.approx(0.65, abs=0.18)
