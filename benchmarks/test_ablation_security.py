"""Ablation I — the §3.4 security argument, measured.

SMT co-scheduling exposes two security domains to each other for the
whole overlap of their runtimes; an SVt core must show *zero* concurrent
cross-domain execution even though it uses the same SMT hardware.
"""

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.core.security import audit_machine_run, smt_coscheduling_exposure
from repro.core.system import Machine
from repro.cpu import isa


def test_ablation_security_coresidency(benchmark, report):
    def audit():
        machine = Machine(mode=ExecutionMode.HW_SVT)
        program = isa.Program([isa.cpuid(), isa.alu(2000)], repeat=25)
        auditor = audit_machine_run(machine, program)
        return auditor, machine.sim.now

    auditor, elapsed = benchmark(audit)
    smt_exposure = smt_coscheduling_exposure(elapsed, elapsed)

    report("Ablation I: Sec. 3.4 security", format_table(
        ["Configuration", "cross-domain co-residency"],
        [
            ("SMT co-scheduling two tenants",
             f"{smt_exposure / 1000:.1f} us (the whole run)"),
            ("SVt (three domains on one core)",
             f"{auditor.cross_domain_coresidency_ns()} ns"),
        ],
        title="Side-channel exposure window over one run "
              f"({elapsed / 1000:.0f} us of execution)",
    ))

    assert auditor.is_svt_safe()
    assert smt_exposure > 0
    # The audit really tracked multiple domains bouncing on the core.
    assert len({i.domain for i in auditor._all_intervals()}) >= 2
