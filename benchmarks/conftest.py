"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
a measured-vs-paper comparison.  ``pytest benchmarks/ --benchmark-only``
runs them all; the printed blocks are collected at the end of the session
so they survive pytest's output capturing, and also written to
``results/`` as one text file per table/figure.
"""

import re
from pathlib import Path

import pytest

_REPORTS = []
_RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def record_report(title, text):
    """Stash a rendered table for the end-of-session summary."""
    _REPORTS.append((title, text))


@pytest.fixture
def report():
    return record_report


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction output")
    _RESULTS_DIR.mkdir(exist_ok=True)
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
        slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
        (_RESULTS_DIR / f"{slug}.txt").write_text(text + "\n")
    terminalreporter.write_line("")
    terminalreporter.write_line(f"(written to {_RESULTS_DIR}/)")
