"""Ablation D — SVt past the core's SMT width (paper §3.1).

*"SVt can accelerate context switches between as many nested VM and
hypervisor contexts as hardware contexts are available in a core.  Past
that point, the hypervisor must multiplex some of the virtualization
levels on a single hardware context, performing context switches between
different virtualization layers."*

We model a 2-context SVt core running the 3-level stack: L0 and L2 get
hardware contexts (the hot path stays stall/resume), but L1 is
multiplexed — every reflection pays a memory context switch for L1's
state, like the baseline.  The ablation quantifies how much of HW SVt's
win survives.
"""

import pytest

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode
from repro.core.switch import HwSvtEngine
from repro.core.system import Machine
from repro.cpu import isa
from repro.sim.trace import Category


class MultiplexedL1Engine(HwSvtEngine):
    """HW SVt with only two hardware contexts: L1 is evicted/reloaded
    around every reflection (memory switch + lazy save/restore)."""

    def enter_l1(self, exit_info, vcpu):
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)
        self.core.svt_resume()

    def leave_l1(self, vcpu):
        self.core.svt_trap()
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)

    def charge_l1_lazy(self):
        self._charge(self.costs.l1_lazy_switch, Category.L1_LAZY_SWITCH)

    def aux_exit_begin(self):
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)
        self.core.svt_trap()

    def aux_exit_end(self):
        self.core.svt_resume()
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)


def _cpuid_us(machine, iterations=20):
    machine.run_program(isa.Program([isa.cpuid()]))
    result = machine.run_program(isa.Program([isa.cpuid()],
                                             repeat=iterations))
    return result.ns_per_instruction / 1000.0


def test_ablation_context_multiplexing(benchmark, report):
    def run_all():
        times = {}
        times["baseline"] = _cpuid_us(Machine(ExecutionMode.BASELINE))
        times["hw_svt_3ctx"] = _cpuid_us(Machine(ExecutionMode.HW_SVT))
        times["hw_svt_2ctx_mux"] = _cpuid_us(Machine(
            ExecutionMode.HW_SVT,
            engine_factory=lambda sim, tracer, costs, core, channels:
                MultiplexedL1Engine(sim, tracer, costs, core),
        ))
        return times

    times = benchmark(run_all)
    base = times["baseline"]

    report("Ablation D: context multiplexing", format_table(
        ["Configuration", "cpuid (us)", "Speedup"],
        [
            ("baseline", f"{base:.2f}", "1.00x"),
            ("HW SVt, 3 contexts", f"{times['hw_svt_3ctx']:.2f}",
             f"{base / times['hw_svt_3ctx']:.2f}x"),
            ("HW SVt, 2 contexts (L1 multiplexed)",
             f"{times['hw_svt_2ctx_mux']:.2f}",
             f"{base / times['hw_svt_2ctx_mux']:.2f}x"),
        ],
        title="SVt with fewer hardware contexts than levels (paper Sec. "
              "3.1)",
    ))

    # Multiplexing L1 gives up the L0<->L1 acceleration but keeps the
    # L2<->L0 one: the result must sit strictly between.
    assert times["hw_svt_3ctx"] < times["hw_svt_2ctx_mux"] < base
    # The surviving win is the L2-side switch+lazy elision.
    expected_mux_ns = (
        times["hw_svt_3ctx"] * 1000
        + Machine(ExecutionMode.BASELINE).costs.switch_l0_l1
        + Machine(ExecutionMode.BASELINE).costs.l1_lazy_switch
    )
    assert times["hw_svt_2ctx_mux"] * 1000 == pytest.approx(
        expected_mux_ns, rel=0.01)
