PYTHON ?= python
export PYTHONPATH := src

.PHONY: test smoke bench bench-smoke dse fuzz fuzz-smoke serve \
	loadtest loadtest-smoke lint clean

test:
	$(PYTHON) -m pytest -x -q

# Fast end-to-end pass: every registered experiment with smoke
# parameters, serial vs parallel, writing results/runtime_smoke.json —
# then the full parallel run against the cache.
smoke:
	$(PYTHON) -m repro smoke
	$(PYTHON) -m repro all --json --jobs 4 > /dev/null

# Wall-clock perf harness (docs/performance.md): times every registered
# experiment under the segment, batch and legacy kernels at smoke AND
# full parameters and rewrites the committed BENCH_sim.json baseline.
bench:
	$(PYTHON) -m repro bench --repeats 3

# CI's perf gate: smoke parameters only, compared against the committed
# baseline; exits nonzero on a >25% wall-clock regression.
bench-smoke:
	$(PYTHON) -m repro bench --smoke --repeats 3 \
		--cost-model xeon-paper \
		--baseline BENCH_sim.json --out BENCH_smoke.json --check

# Design-space sweep over the registered cost models (docs/
# cost-models.md): records each model's three modes once, re-prices
# the recordings across the parameter grid, and rewrites the committed
# results/dse_frontier.json crossover-frontier artifact.
dse:
	$(PYTHON) -m repro dse

# Differential fuzzing (docs/fuzzing.md): seed-deterministic guest
# programs run across every mode x kernel with the oracle suite armed.
# `fuzz` is the developer campaign; `fuzz-smoke` is CI's gate — a
# 25-run clean campaign, a bug-calibration campaign that must find and
# shrink a violation, and a replay of every committed counterexample.
fuzz:
	$(PYTHON) -m repro fuzz --seed 2019 --jobs 4

fuzz-smoke:
	$(PYTHON) -m repro fuzz --seed 2019 --runs 25 --jobs 4
	$(PYTHON) -m repro fuzz --seed 2019 --runs 5 --ops 12 \
		--bug drop-redirect --expect-violation > /dev/null
	$(PYTHON) -m repro fuzz --corpus tests/fuzz/corpus

# The long-lived experiment service (docs/serving.md): HTTP/JSON API
# with admission control, request coalescing over the result cache,
# and a supervised worker pool.  Ctrl-C to stop.
serve:
	$(PYTHON) -m repro serve --jobs 4

# Deterministic serve-tier load test: boots a throwaway service on an
# ephemeral port, drives it with a seeded request schedule, asserts
# the serving invariants in-process, and rewrites the committed
# BENCH_serve.json baseline.  `loadtest-smoke` is CI's gate — the same
# seeded campaign compared against the committed baseline (exact on
# the deterministic counters, noise-floored on wall clock), plus a
# worker-kill storm that must still complete every request.
loadtest:
	$(PYTHON) -m repro loadtest --seed 2019 --requests 60 --jobs 2 \
		--out BENCH_serve.json

loadtest-smoke:
	$(PYTHON) -m repro loadtest --seed 2019 --requests 60 --jobs 2 \
		--baseline BENCH_serve.json --check
	$(PYTHON) -m repro loadtest --seed 2019 --requests 24 --jobs 2 \
		--storm

# Three gates, strictest first.  svtlint ships with the repo and always
# runs; ruff and mypy are optional in the offline evaluation image and
# are skipped quietly when not installed.  Any finding from any
# installed gate exits nonzero so CI can rely on `make lint`.
lint:
	$(PYTHON) -m repro lint
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping ruff"; \
	fi
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping mypy"; \
	fi

clean:
	rm -rf results/cache .pytest_cache .svtlint_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
