PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke lint clean

test:
	$(PYTHON) -m pytest -x -q

# Fast end-to-end pass: every registered experiment with smoke
# parameters, serial vs parallel, writing results/runtime_smoke.json —
# then the full parallel run against the cache.
bench-smoke:
	$(PYTHON) -m repro smoke
	$(PYTHON) -m repro all --json --jobs 4 > /dev/null

# ruff is optional in the offline evaluation image; skip quietly when
# it is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

clean:
	rm -rf results/cache .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
