"""ioping / fio over virtio-blk (paper Fig. 7, disk columns).

* **ioping** — synchronous 512 B random reads/writes: per-request latency
  (Fig. 7 "Disk randrd/randwr Latency").
* **fio** — 4 KB random reads/writes at queue depth: sustained bandwidth
  (Fig. 7 "Disk randrd/randwr Bandwidth").

Path shapes (calibrated to the paper's baseline absolutes):

* *Reads* are notification-heavy: the guest sleeps per request, so every
  submit/complete pays interrupt, EOI and wakeup traffic — lots of
  reflected exits, which is why SW SVt helps reads most (1.30x/1.55x).
* *Writes* keep L1's QEMU I/O thread busy (journaling, dirty tracking,
  sync flags): fewer guest notifications but many more L1 privileged
  operations that trap to L0 (aux exits) — SW SVt barely helps
  (1.05x/1.18x) while HW SVt, which also elides those, gains most
  (2.26x/2.60x).
"""

from dataclasses import dataclass

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.io.block import BlkRequest, install_block
from repro.io.fabric import DeviceTimings
from repro.virt.exits import ExitInfo, ExitReason
from repro.virt.hypervisor import MSR_APIC_EOI

#: Paper Figure 7 (disk groups).
PAPER = {
    "randrd_latency_us": 126.0,
    "randrd_latency_speedup": (1.30, 2.18),     # (SW, HW)
    "randrd_bandwidth_kbs": 87_136.0,
    "randrd_bandwidth_speedup": (1.55, 2.31),
    "randwr_latency_us": 179.0,
    "randwr_latency_speedup": (1.05, 2.26),
    "randwr_bandwidth_kbs": 55_769.0,
    "randwr_bandwidth_speedup": (1.18, 2.60),
}


@dataclass(frozen=True)
class IopingConfig:
    """Synchronous 512 B accesses (latency test)."""

    nbytes: int = 512
    read_guest_work_ns: int = 18200   # syscall + fs + page-cache miss
    write_guest_work_ns: int = 24200  # + dirty accounting, sync write path
    read_hlt_exits: int = 1           # guest sleeps awaiting completion
    read_l1_singles: int = 0
    read_extra_wakes: int = 1         # additional worker-thread wakeups
    write_l1_aux_ops: int = 26        # journaling/sync privileged ops in L1
    write_l1_singles: int = 14        # L1's own bookkeeping exits
    write_extra_wakes: int = 1


@dataclass(frozen=True)
class FioConfig:
    """4 KB random access at queue depth (bandwidth test)."""

    nbytes: int = 4096
    read_queue_depth: int = 8      # reads pipeline deeper (no ordering)
    write_queue_depth: int = 4     # sync semantics cap write batching
    requests: int = 64
    read_guest_work_ns: int = 11400
    write_guest_work_ns: int = 8600
    write_l1_aux_ops: int = 9         # per request, amortised journaling
    write_l1_singles: int = 5
    read_extra_wakes: int = 4         # per batch: AIO/eventfd worker wakes
    write_extra_wakes: int = 6        # per batch: flush-thread wakes


def _machine(mode, costs=None, timings=None):
    machine = Machine(mode=mode, costs=costs)
    blk = install_block(machine, timings or DeviceTimings())
    return machine, blk


def _eoi(machine):
    machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))


def _l1_single(machine, reason=ExitReason.MSR_WRITE):
    machine.stack.l1_exit(ExitInfo(reason, {"msr": MSR_APIC_EOI,
                                            "value": 0}))


def _one_sync_request(machine, blk, cfg, write):
    """One ioping-style synchronous request; returns its latency."""
    stack = machine.stack
    started = machine.sim.now
    work = cfg.write_guest_work_ns if write else cfg.read_guest_work_ns
    machine.run_instruction(isa.alu(work))
    request = BlkRequest(sector=(started // 512) % 65536, nbytes=cfg.nbytes,
                         write=write, issued_at=machine.sim.now)
    blk.device.queue_request(request)
    machine.run_instruction(isa.mmio_write(blk.device.doorbell_gpa, 0))
    if write:
        # L1's write path: journaling and sync privileged ops.
        for _ in range(cfg.write_l1_aux_ops):
            stack.l1_aux_op(ExitReason.VMWRITE)
        for _ in range(cfg.write_l1_singles):
            _l1_single(machine)
        for _ in range(cfg.write_extra_wakes):
            stack.engine.charge_guest_wake(1)
    else:
        for _ in range(cfg.read_hlt_exits):
            machine.run_instruction(isa.hlt())
            machine.l2_vm.vcpu.halted = False
        for _ in range(cfg.read_l1_singles):
            _l1_single(machine)
        for _ in range(cfg.read_extra_wakes):
            stack.engine.charge_guest_wake(1)
    machine.wait_until(lambda: blk.device.requests.has_used)
    blk.device.reap_completions()
    _eoi(machine)
    return machine.sim.now - started


def run_latency(mode=ExecutionMode.BASELINE, write=False, config=None,
                operations=20, warmup=2, costs=None, timings=None):
    """ioping mean latency in µs (Fig. 7 disk latency columns)."""
    cfg = config or IopingConfig()
    machine, blk = _machine(mode, costs, timings)
    blk.backend.backend_idles = not write   # write path keeps L1 busy
    for _ in range(warmup):
        _one_sync_request(machine, blk, cfg, write)
    samples = [
        _one_sync_request(machine, blk, cfg, write)
        for _ in range(operations)
    ]
    return sum(samples) / len(samples) / 1000.0


def run_bandwidth(mode=ExecutionMode.BASELINE, write=False, config=None,
                  costs=None, timings=None):
    """fio sustained throughput in KB/s (Fig. 7 disk bandwidth columns).

    Submits batches of ``queue_depth`` requests per kick; completions
    arrive batched with one interrupt per batch.
    """
    cfg = config or FioConfig()
    machine, blk = _machine(mode, costs, timings)
    blk.backend.backend_idles = not write
    stack = machine.stack
    started = machine.sim.now
    submitted = 0
    depth = cfg.write_queue_depth if write else cfg.read_queue_depth
    while submitted < cfg.requests:
        batch = min(depth, cfg.requests - submitted)
        work = cfg.write_guest_work_ns if write else cfg.read_guest_work_ns
        for i in range(batch):
            machine.run_instruction(isa.alu(work))
            blk.device.queue_request(BlkRequest(
                sector=(submitted + i) * 8, nbytes=cfg.nbytes, write=write,
                issued_at=machine.sim.now,
            ))
        machine.run_instruction(isa.mmio_write(blk.device.doorbell_gpa, 0))
        if write:
            for _ in range(cfg.write_l1_aux_ops * batch):
                stack.l1_aux_op(ExitReason.VMWRITE)
            for _ in range(cfg.write_l1_singles):
                _l1_single(machine)
            for _ in range(cfg.write_extra_wakes):
                stack.engine.charge_guest_wake(1)
        else:
            for _ in range(cfg.read_extra_wakes):
                stack.engine.charge_guest_wake(1)
        submitted += batch
        machine.wait_until(
            lambda want=submitted: blk.device.requests.completed >= want
        )
        blk.device.reap_completions()
        _eoi(machine)
    elapsed = machine.sim.now - started
    total_kb = cfg.requests * cfg.nbytes / 1024.0
    return total_kb * 1e9 / elapsed  # KB/s


@dataclass(frozen=True)
class DiskResult:
    mode: str
    randrd_latency_us: float
    randwr_latency_us: float
    randrd_bandwidth_kbs: float
    randwr_bandwidth_kbs: float


def run(mode=ExecutionMode.BASELINE, costs=None, timings=None):
    """All four disk metrics for one mode."""
    return DiskResult(
        mode=mode,
        randrd_latency_us=run_latency(mode, write=False, costs=costs,
                                      timings=timings),
        randwr_latency_us=run_latency(mode, write=True, costs=costs,
                                      timings=timings),
        randrd_bandwidth_kbs=run_bandwidth(mode, write=False, costs=costs,
                                           timings=timings),
        randwr_bandwidth_kbs=run_bandwidth(mode, write=True, costs=costs,
                                           timings=timings),
    )
