"""Communication-channel microbenchmarks (paper §6.1).

The paper measures the latency of polling / mwait / mutex handoffs
against a function call, across thread placements and workload sizes,
and states five observations (numbers "not shown for brevity").  This
module sweeps the model in `repro.core.wait` and checks each observation,
plus the end-to-end conclusion: applying each mechanism to the SVt-thread
channel and measuring nested cpuid latency (the paper's Figure-6 bridge:
"the mwait implementation offers a reduction of around 2 us").
"""

from dataclasses import dataclass, field

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.core.wait import Placement, WaitMechanism, handoff
from repro.cpu import isa
from repro.cpu import costmodels

#: The five qualitative observations of §6.1, as short keys.
OBSERVATIONS = (
    "polling_fastest_small",
    "polling_steals_cycles_smt",
    "numa_order_of_magnitude",
    "mutex_wins_large_smt",
    "mwait_beats_mutex_large",
)


@dataclass
class ChannelSweep:
    """Raw sweep plus evaluated observations."""

    results: list = field(default_factory=list)
    observations: dict = field(default_factory=dict)

    def cell(self, mechanism, placement, workload_ns):
        for result in self.results:
            if (result.mechanism == mechanism
                    and result.placement == placement
                    and result.workload_ns == workload_ns):
                return result
        raise KeyError((mechanism, placement, workload_ns))


def sweep(costs=None, workloads=(0, 500, 2000, 10000, 50000, 200000)):
    """Full §6.1 grid with the five observations evaluated."""
    costs = costmodels.resolve(costs)
    out = ChannelSweep()
    for mechanism in WaitMechanism.ALL:
        for placement in Placement.ALL:
            for workload in workloads:
                out.results.append(
                    handoff(costs, mechanism, placement, workload)
                )

    small, large = workloads[0], workloads[-1]
    polling0 = out.cell(WaitMechanism.POLLING, Placement.SMT, small)
    mwait0 = out.cell(WaitMechanism.MWAIT, Placement.SMT, small)
    mutex0 = out.cell(WaitMechanism.MUTEX, Placement.SMT, small)
    polling_l = out.cell(WaitMechanism.POLLING, Placement.SMT, large)
    mwait_l = out.cell(WaitMechanism.MWAIT, Placement.SMT, large)
    mutex_l = out.cell(WaitMechanism.MUTEX, Placement.SMT, large)
    numa0 = out.cell(WaitMechanism.POLLING, Placement.NUMA, small)

    out.observations = {
        "polling_fastest_small": (
            polling0.response_ns <= mwait0.response_ns
            and polling0.response_ns <= mutex0.response_ns
        ),
        "polling_steals_cycles_smt": (
            polling_l.producer_ns > polling_l.workload_ns
        ),
        "numa_order_of_magnitude": (
            numa0.response_ns >= 8 * polling0.response_ns
        ),
        "mutex_wins_large_smt": mutex_l.total_ns < polling_l.total_ns,
        "mwait_beats_mutex_large": mwait_l.total_ns < mutex_l.total_ns,
    }
    return out


@dataclass(frozen=True)
class MechanismImpact:
    """End-to-end nested cpuid latency with each channel mechanism."""

    mechanism: str
    cpuid_us: float
    speedup_vs_baseline: float


def cpuid_with_mechanisms(costs=None, iterations=40):
    """Drive SW SVt with each wait mechanism (paper: polling "offers very
    little acceleration ... the mwait implementation offers a reduction
    of around 2 us (or 1.23x)")."""
    costs = costmodels.resolve(costs)
    program = isa.Program([isa.cpuid()], repeat=iterations)

    baseline_machine = Machine(mode=ExecutionMode.BASELINE, costs=costs)
    baseline_machine.run_program(isa.Program([isa.cpuid()]))
    baseline_us = (
        baseline_machine.run_program(program).ns_per_instruction / 1000.0
    )

    impacts = []
    for mechanism in (WaitMechanism.POLLING, WaitMechanism.MWAIT,
                      WaitMechanism.MUTEX):
        machine = Machine(mode=ExecutionMode.SW_SVT, costs=costs,
                          wait_mechanism=mechanism)
        machine.run_program(isa.Program([isa.cpuid()]))   # warmup
        before = machine.tracer.snapshot()
        result = machine.run_program(program)
        ns = result.ns_per_instruction
        if mechanism == WaitMechanism.POLLING:
            # The polling SVt-thread spins on the sibling hardware thread
            # the whole time L0/L2 execute there, stealing execution
            # resources from everything but L1's handling (which runs on
            # the SVt-thread itself) and the channel transfers.  Paper
            # §6.1: "the time between VM traps in L2 is always large
            # enough that polling's overheads shadow its low response
            # time".
            from repro.sim.trace import Category

            deltas = {
                key: machine.tracer.totals[key] - before.get(key, 0)
                for key in machine.tracer.totals
            }
            per_op = {k: v / iterations for k, v in deltas.items()}
            exempt = (per_op.get(Category.L1_HANDLER, 0)
                      + per_op.get(Category.CHANNEL, 0))
            inflatable = ns - exempt
            slowdown = 1.0 / (1.0 - costs.poll_smt_interference)
            ns = inflatable * slowdown + exempt
        us = ns / 1000.0
        impacts.append(MechanismImpact(
            mechanism=mechanism,
            cpuid_us=us,
            speedup_vs_baseline=baseline_us / us,
        ))
    return baseline_us, impacts
