"""The cpuid microbenchmark (paper Table 1 and Figure 6).

Paper §6.1: *"a loop with the operation under scrutiny, surrounded by a
series of dependant register increments that simulate a variable
workload"*; repeated until the mean stabilises per the §6 protocol.
"""

from dataclasses import dataclass

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa

#: Figure 6 numbers from the paper.
PAPER = {
    "baseline_us": 10.40,
    "sw_svt_speedup": 1.23,
    "hw_svt_speedup": 1.94,
    "l0_us": 0.05,
}


@dataclass(frozen=True)
class CpuidResult:
    mode: str
    level: int
    ns_per_op: float
    iterations: int

    @property
    def us_per_op(self):
        return self.ns_per_op / 1000.0


def run(mode=ExecutionMode.BASELINE, level=2, iterations=50,
        surrounding_work_ns=0, costs=None):
    """Measure one cpuid (plus optional surrounding register work) at a
    virtualization level, in a given mode."""
    machine = Machine(mode=mode, costs=costs)
    body = []
    if surrounding_work_ns:
        body.append(isa.alu(surrounding_work_ns))
    body.append(isa.cpuid())
    # Warm up one iteration (the first HW SVt resume differs slightly).
    machine.run_program(isa.Program(body, repeat=1), level=level)
    result = machine.run_program(isa.Program(body, repeat=iterations),
                                 level=level)
    return CpuidResult(
        mode=mode,
        level=level,
        ns_per_op=result.ns_per_instruction * len(body),
        iterations=iterations,
    )


def figure6(costs=None, iterations=50):
    """All five bars of Figure 6: L0, L1, L2 (baseline), SW SVt, HW SVt.

    Returns ``{label: us}``.
    """
    bars = {}
    bars["L0"] = run(level=0, iterations=iterations, costs=costs).us_per_op
    bars["L1"] = run(level=1, iterations=iterations, costs=costs).us_per_op
    bars["L2"] = run(ExecutionMode.BASELINE, iterations=iterations,
                     costs=costs).us_per_op
    bars["SW SVt"] = run(ExecutionMode.SW_SVT, iterations=iterations,
                         costs=costs).us_per_op
    bars["HW SVt"] = run(ExecutionMode.HW_SVT, iterations=iterations,
                         costs=costs).us_per_op
    return bars


def table1_breakdown(costs=None, iterations=50):
    """Reproduce Table 1: per-part time for one nested cpuid, baseline.

    Returns ``[(part_label, us, percent)]`` in the paper's row order.
    The hidden lazy save/restore shares are folded into the L0/L1 handler
    rows exactly as the paper folds them.
    """
    from repro.sim.trace import Category

    machine = Machine(mode=ExecutionMode.BASELINE, costs=costs)
    machine.run_program(isa.Program([isa.cpuid()], repeat=1))
    before = machine.tracer.snapshot()
    machine.run_program(isa.Program([isa.cpuid()], repeat=iterations))
    totals = {
        key: machine.tracer.totals[key] - before.get(key, 0)
        for key in machine.tracer.totals
    }
    per_op = {key: value / iterations for key, value in totals.items()}

    rows = [
        ("0 L2", per_op.get(Category.GUEST_WORK, 0)),
        ("1 Switch L2<->L0", per_op.get(Category.SWITCH_L2_L0, 0)),
        ("2 Transform vmcs02/vmcs12", per_op.get(Category.VMCS_TRANSFORM, 0)),
        ("3 L0 handler", per_op.get(Category.L0_HANDLER, 0)
         + per_op.get(Category.L0_LAZY_SWITCH, 0)),
        ("4 Switch L0<->L1", per_op.get(Category.SWITCH_L0_L1, 0)),
        ("5 L1 handler", per_op.get(Category.L1_HANDLER, 0)
         + per_op.get(Category.L1_LAZY_SWITCH, 0)),
    ]
    total = sum(ns for _, ns in rows)
    return [
        (label, ns / 1000.0, 100.0 * ns / total) for label, ns in rows
    ]
