"""Soft-realtime video playback (paper Fig. 10 / §6.3.3).

mplayer plays the first five minutes of a 4K movie at 24/60/120 FPS and
the paper counts dropped frames.  Profiling attributes the damage to
EPT_MISCONFIG (disk chunk reads) and MSR_WRITE (TSC-deadline re-arms):
*"Even if the overheads are small (L2 is idle for 61% of the time), they
are enough to deliver interrupts too late for 40 frames at 120 FPS."*

Mechanism reproduced here: the player re-arms the deadline timer per
frame; every ~0.5 s it reads the next media chunk from the virtio disk —
a *burst* of synchronous reads during which the vCPU is saturated with
exit handling.  A frame wake landing inside a burst is delivered late by
the burst's remaining length; when that exceeds the per-frame slack the
frame is dropped.  SVt shortens the bursts (each read costs less), so
fewer wakes miss — at 24/60 FPS the slack absorbs everything.

Burst durations are *measured* by running the chunk reads through the
live machine in the chosen mode; the 5-minute timeline is then swept
deterministically.
"""

from dataclasses import dataclass

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.io.block import BlkRequest, install_block
from repro.sim.rng import DeterministicRng
from repro.virt.hypervisor import MSR_APIC_EOI

#: Paper Figure 10: dropped frames per (fps, system).
PAPER = {
    24: {"baseline": 0, "svt": 0},
    60: {"baseline": 3, "svt": 0},
    120: {"baseline": 40, "svt": 26},
    "duration_s": 300,
}


@dataclass(frozen=True)
class VideoConfig:
    duration_s: int = 300            # "the first 5 min" of the movie
    chunk_interval_ms: int = 500     # media chunk read period
    reads_per_chunk: int = 11        # sync metadata+data reads
    chunk_read_work_ns: int = 27000  # demux/copy work per read
    burst_jitter_sigma: float = 0.32  # page cache / readahead variance
    slack_fraction: float = 0.0775   # per-frame delivery tolerance
    decode_share: float = 0.39       # paper: L2 idle 61% of the time


@dataclass(frozen=True)
class VideoResult:
    mode: str
    fps: int
    frames: int
    dropped: int
    burst_us: float

    @property
    def drop_rate(self):
        return self.dropped / self.frames if self.frames else 0.0


def measure_burst_us(mode=ExecutionMode.BASELINE, config=None, costs=None):
    """Duration of one media-chunk read burst, via the live machine."""
    cfg = config or VideoConfig()
    machine = Machine(mode=mode, costs=costs)
    blk = install_block(machine)
    blk.backend.backend_idles = True

    def one_read(i):
        machine.run_instruction(isa.alu(cfg.chunk_read_work_ns))
        request = BlkRequest(sector=i * 64, nbytes=512, write=False,
                             issued_at=machine.sim.now)
        blk.device.queue_request(request)
        machine.run_instruction(isa.mmio_write(blk.device.doorbell_gpa, 0))
        machine.wait_until(lambda: blk.device.requests.has_used)
        blk.device.reap_completions()
        machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))

    one_read(0)  # warmup
    started = machine.sim.now
    for i in range(cfg.reads_per_chunk):
        one_read(i + 1)
    return (machine.sim.now - started) / 1000.0


def run(mode=ExecutionMode.BASELINE, fps=120, config=None, seed=7,
        costs=None):
    """Count dropped frames over the playback (one Fig. 10 bar)."""
    cfg = config or VideoConfig()
    burst_us = measure_burst_us(mode, cfg, costs=costs)
    rng = DeterministicRng(seed).fork(f"video:{mode}:{fps}")

    period_us = 1e6 / fps
    tolerance_us = cfg.slack_fraction * period_us
    frames = cfg.duration_s * fps
    n_bursts = cfg.duration_s * 1000 // cfg.chunk_interval_ms

    dropped = 0
    for _ in range(int(n_bursts)):
        # Burst length varies with page-cache behaviour; its phase
        # relative to the frame clock is uniform.
        burst = rng.lognormal_around(burst_us, cfg.burst_jitter_sigma)
        phase = rng.uniform(0.0, period_us)
        # Frame wakes land at phase, phase+period, ... inside the burst;
        # each whose remaining burst time exceeds the slack is dropped.
        t = phase
        while t < burst:
            if burst - t > tolerance_us:
                dropped += 1
            t += period_us
    return VideoResult(mode=mode, fps=fps, frames=frames, dropped=dropped,
                       burst_us=burst_us)


def figure10(modes=(ExecutionMode.BASELINE, ExecutionMode.SW_SVT),
             fps_list=(24, 60, 120), seed=7, costs=None):
    """The full Figure 10 grid: ``{fps: {mode: VideoResult}}``."""
    return {
        fps: {mode: run(mode, fps=fps, seed=seed, costs=costs)
              for mode in modes}
        for fps in fps_list
    }
