"""Shared workload helpers."""

from dataclasses import dataclass, field

from repro.core.mode import ExecutionMode


@dataclass
class ModeComparison:
    """A metric measured in every execution mode, plus derived speedups.

    ``higher_is_better`` controls the speedup direction (bandwidths vs
    latencies)."""

    metric: str
    unit: str
    higher_is_better: bool
    values: dict = field(default_factory=dict)

    def speedup(self, mode):
        """Improvement of ``mode`` over the baseline, as the paper
        reports it (>1 is better)."""
        base = self.values[ExecutionMode.BASELINE]
        value = self.values[mode]
        if self.higher_is_better:
            return value / base
        return base / value

    def row(self):
        """(baseline value, SW speedup, HW speedup) — one Fig. 7 group."""
        return (
            self.values[ExecutionMode.BASELINE],
            self.speedup(ExecutionMode.SW_SVT),
            self.speedup(ExecutionMode.HW_SVT),
        )


def compare_modes(run_fn, metric, unit, higher_is_better=False,
                  modes=ExecutionMode.ALL, **kwargs):
    """Run ``run_fn(mode=..., **kwargs)`` for every mode and collect the
    returned metric value into a :class:`ModeComparison`."""
    comparison = ModeComparison(metric=metric, unit=unit,
                                higher_is_better=higher_is_better)
    for mode in modes:
        comparison.values[mode] = run_fn(mode=mode, **kwargs)
    return comparison
