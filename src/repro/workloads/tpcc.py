"""TPC-C over PostgreSQL (paper Fig. 9 / §6.3.2).

The paper runs sysbench's TPC-C addon against a PostgreSQL instance in
L2 — "a proxy for network and disk throughput".  A transaction is a burst
of client/server query round trips (network path) plus WAL/heap I/O
(disk path) plus query processing.  We drive those components through the
live machine and report transactions/minute.
"""

from dataclasses import dataclass

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.io.block import BlkRequest, install_block
from repro.io.net import Packet, TXQ, install_network
from repro.virt.exits import ExitInfo, ExitReason
from repro.virt.hypervisor import MSR_APIC_EOI

#: Paper Figure 9.
PAPER = {
    "baseline_ktpm": 6.37,
    "speedup_sw": 1.18,
}


@dataclass(frozen=True)
class TpccConfig:
    """Transaction shape (sysbench TPC-C defaults, scaled to the paper's
    throughput)."""

    queries_per_txn: int = 55        # client/server round trips
    wal_writes_per_txn: int = 22     # WAL + heap sync writes
    heap_reads_per_txn: int = 12     # buffer-cache misses
    query_work_ns: int = 2600        # executor work per query
    plan_work_ns: int = 8_940_000    # parse/plan/execute CPU per txn
    workers: int = 2                 # usable L2 vCPUs (Table 4)
    l1_wakes_per_query: int = 5      # vhost/event-loop wakeups


def _one_query(machine, net, cfg):
    """One client query round trip served by L2 (memcached-style path)."""
    stack = machine.stack
    for _ in range(cfg.l1_wakes_per_query):
        stack.engine.charge_guest_wake(1)
    stack.inject_irq_into_l2(0x60)
    machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))
    machine.run_instruction(isa.alu(cfg.query_work_ns))
    net.l2_nic.queue_tx(Packet("result", 256))
    machine.run_instruction(isa.mmio_write(net.l2_nic.doorbell_gpa, TXQ))
    machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))
    machine.stack.l1_exit(ExitInfo(ExitReason.MSR_WRITE,
                                   {"msr": MSR_APIC_EOI, "value": 0}))


def _one_disk_op(machine, blk, sector, write):
    request = BlkRequest(sector=sector, nbytes=8192, write=write,
                         issued_at=machine.sim.now)
    blk.device.queue_request(request)
    machine.run_instruction(isa.mmio_write(blk.device.doorbell_gpa, 0))
    if write:
        # WAL fsync: journaling privileged ops in L1 (as in the fio
        # write path, amortised).
        for _ in range(6):
            machine.stack.l1_aux_op(ExitReason.VMWRITE)
    machine.wait_until(lambda: blk.device.requests.has_used)
    blk.device.reap_completions()
    machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))


def _one_transaction(machine, net, blk, cfg):
    started = machine.sim.now
    for _ in range(cfg.queries_per_txn):
        _one_query(machine, net, cfg)
    for i in range(cfg.heap_reads_per_txn):
        _one_disk_op(machine, blk, sector=1000 + i * 16, write=False)
    for i in range(cfg.wal_writes_per_txn):
        _one_disk_op(machine, blk, sector=8000 + i * 16, write=True)
    machine.run_instruction(isa.alu(cfg.plan_work_ns))
    return machine.sim.now - started


@dataclass(frozen=True)
class TpccResult:
    mode: str
    txn_ms: float
    ktpm: float


def run(mode=ExecutionMode.BASELINE, config=None, transactions=3,
        costs=None):
    """Measured TPC-C throughput (thousand transactions/minute)."""
    cfg = config or TpccConfig()
    machine = Machine(mode=mode, costs=costs)
    net = install_network(machine)
    net.l1_backend.notify_tx_completion = False
    blk = install_block(machine)
    blk.backend.backend_idles = True
    _one_transaction(machine, net, blk, cfg)   # warmup
    total = sum(
        _one_transaction(machine, net, blk, cfg)
        for _ in range(transactions)
    )
    txn_ns = total / transactions
    tpm = cfg.workers * 60e9 / txn_ns
    return TpccResult(mode=mode, txn_ms=txn_ns / 1e6, ktpm=tpm / 1000.0)
