"""netperf over virtio-net (paper Fig. 7, network columns).

Two benchmarks, exactly the paper's:

* **TCP RR** — round-trip time of 1-byte packets ("network latency").
* **TCP STREAM** — throughput of 16 KB packets ("network bandwidth").

The RR operation drives the full nested path: TX kick (reflected
EPT_MISCONFIG), TX-completion and RX interrupts into L2 (reflected
EXTERNAL_INTERRUPT with the event-injection aux trap), APIC EOIs
(reflected MSR_WRITE — L1 emulates its guest's x2APIC), idle entry (HLT
exit), L1's own forwarding kick / interrupts / EOIs / idle (single-level
exits), and a periodic TSC-deadline re-arm.  Every one of these exits
walks Algorithm 1 through the live machinery, so the three modes price
them per their switch engines.
"""

from dataclasses import dataclass

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.io.fabric import DeviceTimings, serialization_ns
from repro.io.net import Packet, TXQ, install_network
from repro.virt.exits import ExitInfo, ExitReason
from repro.virt.hypervisor import MSR_APIC_EOI, MSR_TSC_DEADLINE

#: Paper Figure 7 (network group).
PAPER = {
    "latency_us": 163.0,
    "latency_speedup_sw": 1.10,
    "latency_speedup_hw": 2.38,
    "bandwidth_mbps": 9387.0,
    "bandwidth_speedup_sw": 1.00,
    "bandwidth_speedup_hw": 1.12,
}


@dataclass(frozen=True)
class RrConfig:
    """TCP_RR shape knobs (calibrated against the paper's baseline)."""

    request_bytes: int = 1
    reply_bytes: int = 1
    guest_work_tx_ns: int = 5200    # L2 TCP stack, send side
    guest_work_rx_ns: int = 5200    # ...receive side
    l1_eoi_singles: int = 2         # L1's own APIC EOIs per RR
    l1_hlt_singles: int = 1         # L1 idling between events
    timer_rearm_every: int = 4      # reflected deadline write every N ops


@dataclass(frozen=True)
class StreamConfig:
    """TCP_STREAM shape knobs."""

    message_bytes: int = 16 * 1024
    batch: int = 12                 # messages per kick (GSO-style batching)
    guest_work_per_msg_ns: int = 4280
    messages: int = 240
    # Streaming suppresses TX-completion interrupts (virtio event-index).
    tx_completion_irq: bool = False


@dataclass(frozen=True)
class NetResult:
    mode: str
    latency_us: float = 0.0
    bandwidth_mbps: float = 0.0


def _build(mode, costs=None, timings=None):
    machine = Machine(mode=mode, costs=costs)
    net = install_network(machine, timings)
    return machine, net


def _one_rr(machine, net, cfg, op_index):
    """One netperf TCP_RR transaction; returns its round-trip time."""
    stack = machine.stack
    vcpu = machine.l2_vm.vcpu
    started = machine.sim.now

    # Send side: TCP stack work, post the request, kick the NIC.
    machine.run_instruction(isa.alu(cfg.guest_work_tx_ns))
    net.l2_nic.queue_tx(Packet("rr-req", cfg.request_bytes))
    machine.run_instruction(isa.mmio_write(net.l2_nic.doorbell_gpa, TXQ))

    # The deferred TX-completion interrupt lands before this EOI runs.
    machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))

    # Guest idles awaiting the reply; L1 idles/EOIs around its own events.
    machine.run_instruction(isa.hlt())
    vcpu.halted = False
    for _ in range(cfg.l1_hlt_singles):
        stack.l1_exit(ExitInfo(ExitReason.HLT))
        machine.l1_vm.vcpu.halted = False
    machine.wait_until(lambda: net.l2_nic.rx.has_used)
    net.l2_nic.reap_rx()

    # Acknowledge the RX interrupt; L1 acknowledges its own.
    machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))
    for _ in range(cfg.l1_eoi_singles):
        stack.l1_exit(ExitInfo(ExitReason.MSR_WRITE,
                               {"msr": MSR_APIC_EOI, "value": 0}))

    # Receive-side stack work, periodic timer re-arm.
    machine.run_instruction(isa.alu(cfg.guest_work_rx_ns))
    if op_index % cfg.timer_rearm_every == 0:
        machine.run_instruction(
            isa.wrmsr(MSR_TSC_DEADLINE, machine.sim.now + 1_000_000_000)
        )
    return machine.sim.now - started


def run_latency(mode=ExecutionMode.BASELINE, config=None, operations=24,
                warmup=3, costs=None, timings=None):
    """TCP_RR mean latency in µs (Fig. 7 "Network / Latency")."""
    cfg = config or RrConfig()
    machine, net = _build(mode, costs, timings)
    net.fabric.remote_handler = lambda packet: [
        Packet("rr-reply", cfg.reply_bytes)
    ]
    for i in range(warmup):
        _one_rr(machine, net, cfg, i + 1)
    samples = [
        _one_rr(machine, net, cfg, warmup + i + 1)
        for i in range(operations)
    ]
    return sum(samples) / len(samples) / 1000.0


def run_bandwidth(mode=ExecutionMode.BASELINE, config=None, costs=None,
                  timings=None):
    """TCP_STREAM throughput in Mbps (Fig. 7 "Network / Bandwidth").

    The guest streams batches of 16 KB messages; the CPU-side cost comes
    from the live exit path, while the wire imposes its serialization
    floor.  Reported throughput is the minimum of the two — the paper's
    baseline sits just below the 10 Gb line ("network bandwidth is close
    to the physical limit").
    """
    cfg = config or StreamConfig()
    timings = timings or DeviceTimings()
    machine, net = _build(mode, costs, timings)
    net.l1_backend.notify_tx_completion = cfg.tx_completion_irq
    started = machine.sim.now
    sent = 0
    while sent < cfg.messages:
        batch = min(cfg.batch, cfg.messages - sent)
        for _ in range(batch):
            machine.run_instruction(isa.alu(cfg.guest_work_per_msg_ns))
            net.l2_nic.queue_tx(Packet("stream", cfg.message_bytes))
        machine.run_instruction(isa.mmio_write(net.l2_nic.doorbell_gpa, TXQ))
        machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))
        machine.stack.l1_exit(ExitInfo(ExitReason.MSR_WRITE,
                                       {"msr": MSR_APIC_EOI, "value": 0}))
        sent += batch
    machine.service_io()
    cpu_ns = machine.sim.now - started
    total_bytes = cfg.messages * cfg.message_bytes
    wire_ns = serialization_ns(total_bytes, timings.nic_effective_gbps)
    elapsed = max(cpu_ns, wire_ns)
    return total_bytes * 8 * 1000.0 / elapsed  # Mbps


def run(mode=ExecutionMode.BASELINE, costs=None, timings=None):
    """Both network metrics for one mode."""
    return NetResult(
        mode=mode,
        latency_us=run_latency(mode, costs=costs, timings=timings),
        bandwidth_mbps=run_bandwidth(mode, costs=costs, timings=timings),
    )
