"""memcached under Facebook's ETC workload (paper Fig. 8 / §6.3.1).

The paper drives a memcached server in L2 with the mutilate load
generator from a separate machine, sweeping offered load and reporting
average and 99th-percentile latency against a 500 µs SLA.

Reproduction in two stages:

1. **Service-time measurement** — server-side request handling is driven
   through the live machine: RX interrupt into L2 (reflected exit + aux),
   EOIs (reflected MSR writes), hash-table work, reply TX kick (reflected
   EPT_MISCONFIG through L1's vhost), TX completion, and a periodic
   TSC-deadline re-arm.  This is where the paper's profiling shape comes
   from (EPT_MISCONFIG and MSR_WRITE dominating L0's handling time).
2. **Queueing simulation** — open-loop Poisson arrivals over the L2 VM's
   two usable vCPUs (Table 4), log-normal service jitter, FCFS.  Tail
   latency then *emerges* from utilisation, which is why the baseline's
   p99 explodes first.
"""

import math
from dataclasses import dataclass, field

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.io.net import Packet, TXQ, install_network
from repro.sim import kernel as simkernel
from repro.sim.rng import DeterministicRng
from repro.sim.stats import percentile
from repro.virt.exits import ExitInfo, ExitReason
from repro.virt.hypervisor import MSR_APIC_EOI, MSR_TSC_DEADLINE

#: Paper Figure 8.
PAPER = {
    "sla_us": 500.0,
    "p99_improvement": 2.20,
    "avg_improvement": 1.43,
    "load_range_kqps": (5.0, 22.5),
}


@dataclass(frozen=True)
class EtcConfig:
    """Facebook ETC workload shape (Atikoglu et al., SIGMETRICS'12)."""

    get_fraction: float = 0.97          # ETC is strongly read-dominated
    key_space: int = 4096
    zipf_skew: float = 0.99
    get_work_ns: int = 2600             # hash lookup + response build
    set_work_ns: int = 5800             # allocation + LRU + store
    timer_rearm_every: int = 6          # background deadline re-arms
    # Every request wakes L1-side workers (vhost TX+RX, QEMU event loop,
    # iothread): scheduler wakeups in the baseline, free with the
    # mwait-parked SVt-thread / stalled hardware contexts under SVt.
    l1_wakes_per_request: int = 5
    service_jitter_sigma: float = 0.22  # log-normal shape
    servers: int = 2                    # usable L2 vCPUs (Table 4)


@dataclass
class LoadPoint:
    offered_kqps: float
    avg_us: float
    p99_us: float

    def within_sla(self, sla_us=500.0):
        return self.p99_us <= sla_us


@dataclass
class MemcachedResult:
    mode: str
    service_get_us: float
    service_set_us: float
    points: list = field(default_factory=list)

    def max_load_within_sla(self, sla_us=500.0):
        ok = [p.offered_kqps for p in self.points if p.within_sla(sla_us)]
        return max(ok) if ok else 0.0


def _serve_one(machine, net, cfg, is_get, op_index):
    """Drive one server-side request through the machine; returns ns."""
    started = machine.sim.now
    for _ in range(cfg.l1_wakes_per_request):
        machine.stack.engine.charge_guest_wake(1)
    # Request arrives: RX interrupt into L2 plus its EOI.
    machine.stack.inject_irq_into_l2(0x60)
    machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))
    # Application work.
    work = cfg.get_work_ns if is_get else cfg.set_work_ns
    machine.run_instruction(isa.alu(work))
    # Reply: TX kick through the nested virtio chain + completion + EOI.
    net.l2_nic.queue_tx(Packet("reply", 128 if is_get else 32))
    machine.run_instruction(isa.mmio_write(net.l2_nic.doorbell_gpa, TXQ))
    machine.run_instruction(isa.wrmsr(MSR_APIC_EOI, 0))
    # L1's own EOI for the forwarded frame.
    machine.stack.l1_exit(ExitInfo(ExitReason.MSR_WRITE,
                                   {"msr": MSR_APIC_EOI, "value": 0}))
    if op_index % cfg.timer_rearm_every == 0:
        machine.run_instruction(
            isa.wrmsr(MSR_TSC_DEADLINE, machine.sim.now + 10_000_000)
        )
    return machine.sim.now - started


#: Service-time memo (the "compile once per sweep" stage for this
#: workload): ``measure_service`` is a pure function of its inputs —
#: it builds a private Machine, drives a fixed request script through
#: it, and returns two means — so one measurement per
#: (mode, config, samples, cost model) serves a whole sweep.  Bypassed
#: whenever an observer is ambient or the ordering sanitizer is armed:
#: those want the *events*, not just the result.  Bounded with a full
#: wipe, like the segment memo.
_SERVICE_MEMO_MAX = 64
_service_memo = {}


def reset_service_memo():
    """Drop memoized service-time measurements (bench sections isolate
    kernel timings behind this)."""
    _service_memo.clear()


def measure_service(mode=ExecutionMode.BASELINE, config=None, samples=18,
                    costs=None):
    """Mean service time (ns) for GET and SET in a mode."""
    from repro.cpu import costmodels, segments
    from repro.obs.observer import ambient as obs_ambient
    from repro.sim import sanitizer

    cfg = config or EtcConfig()
    memoizable = obs_ambient() is None and not sanitizer.enabled()
    key = None
    if memoizable:
        key = (str(mode), cfg, samples,
               segments.cost_fingerprint(costmodels.resolve(costs)))
        cached = _service_memo.get(key)
        if cached is not None:
            return cached
    machine = Machine(mode=mode, costs=costs)
    net = install_network(machine)
    # Under sustained load, TX completions are coalesced (event index).
    net.l1_backend.notify_tx_completion = False
    get_ns = []
    set_ns = []
    for i in range(2):   # warmup
        _serve_one(machine, net, cfg, True, i + 1)
    for i in range(samples):
        get_ns.append(_serve_one(machine, net, cfg, True, i + 1))
        set_ns.append(_serve_one(machine, net, cfg, False, i + 7))
    outcome = (sum(get_ns) / len(get_ns), sum(set_ns) / len(set_ns))
    if memoizable:
        if len(_service_memo) >= _SERVICE_MEMO_MAX:
            _service_memo.clear()
        _service_memo[key] = outcome
    return outcome


def _queueing_run(get_ns, set_ns, offered_kqps, cfg, rng, requests=30_000):
    """FCFS multi-server queue; returns (avg_us, p99_us) of sojourn.

    Dispatches to the compiled request-segment replay under the
    ``segment`` kernel (docs/performance.md) whenever the workload shape
    allows it, and under the ``batch`` kernel additionally tries the
    native compile-once replay (``repro.sim.batch``); the reference
    loop stays the semantic definition and the ``legacy`` kernel's
    path.  All paths are bit-for-bit identical.
    """
    kernel = simkernel.active_kernel()
    compiled_shape = (cfg.servers == 2 and cfg.key_space > 1
                      and cfg.service_jitter_sigma > 0
                      and get_ns > 0 and set_ns > 0)
    if kernel == simkernel.BATCH and compiled_shape:
        outcome = _queueing_run_batch(get_ns, set_ns, offered_kqps,
                                      cfg, rng, requests)
        if outcome is not None:
            return outcome
        # Native tier unavailable (no compiler / self-check failed):
        # the batch kernel degrades to the segment fast path, which is
        # bit-identical, so the kernel never loses to segment.
        return _queueing_run_fast(get_ns, set_ns, offered_kqps, cfg,
                                  rng, requests)
    if kernel != simkernel.LEGACY and compiled_shape:
        return _queueing_run_fast(get_ns, set_ns, offered_kqps, cfg,
                                  rng, requests)
    return _queueing_run_reference(get_ns, set_ns, offered_kqps, cfg,
                                   rng, requests)


def _queueing_run_reference(get_ns, set_ns, offered_kqps, cfg, rng,
                            requests=30_000):
    """The per-request loop, one rng helper call per draw (legacy)."""
    arrival_mean_ns = 1e6 / offered_kqps
    servers = [0.0] * cfg.servers
    clock = 0.0
    sojourns = []
    for _ in range(requests):
        clock += rng.exponential(arrival_mean_ns)
        is_get = rng.bernoulli(cfg.get_fraction)
        rng.zipf_index(cfg.key_space, cfg.zipf_skew)  # key popularity draw
        base = get_ns if is_get else set_ns
        service = rng.lognormal_around(base, cfg.service_jitter_sigma)
        idx = min(range(len(servers)), key=servers.__getitem__)
        start = max(clock, servers[idx])
        finish = start + service
        servers[idx] = finish
        sojourns.append(finish - clock)
    avg = sum(sojourns) / len(sojourns) / 1000.0
    return avg, percentile(sojourns, 99) / 1000.0


#: Kinderman-Monahan constant, exactly as CPython's random.normalvariate
#: uses it (stable across the 3.9-3.13 line; the differential tests
#: below and in tests/workloads guard against upstream drift).
_NV_MAGICCONST = 4 * math.exp(-0.5) / math.sqrt(2.0)


def _queueing_run_fast(get_ns, set_ns, offered_kqps, cfg, rng,
                       requests=30_000):
    """Segment-compiled replay of the reference loop (bit-exact).

    The per-request "segment" — arrival draw, GET/SET split, key
    popularity draw, log-normal service draw, 2-server FCFS dispatch —
    is compiled down to local arithmetic over the raw uniform stream:
    the stdlib samplers (``expovariate``, ``lognormvariate`` via
    Kinderman-Monahan ``normalvariate``) are inlined with their exact
    algorithms, and the per-mode constants (``lambd``, the two
    log-normal ``mu`` values) are hoisted out of the loop.  Exactly one
    zipf popularity variate is consumed and discarded per request, as
    in the reference (`zipf_index` draws once for ``key_space > 1``).
    Guarded by the dispatcher to the shapes it compiles for
    (two servers, jitter > 0); anything else takes the reference loop.
    """
    random = rng.raw_stream()
    log = math.log
    exp = math.exp
    lambd = 1.0 / (1e6 / offered_kqps)
    p_get = cfg.get_fraction
    sigma = cfg.service_jitter_sigma
    half_var = sigma * sigma / 2.0
    mu_get = log(get_ns) - half_var
    mu_set = log(set_ns) - half_var
    nv_magic = _NV_MAGICCONST
    server0 = 0.0
    server1 = 0.0
    clock = 0.0
    sojourns = []
    append = sojourns.append
    for _ in range(requests):
        # expovariate(lambd), inlined.
        clock += -log(1.0 - random()) / lambd
        is_get = random() < p_get
        random()  # zipf popularity draw (index unused by the model)
        mu = mu_get if is_get else mu_set
        # lognormvariate = exp(normalvariate(mu, sigma)), inlined
        # (Kinderman-Monahan rejection sampling).
        while True:
            u1 = random()
            u2 = 1.0 - random()
            z = nv_magic * (u1 - 0.5) / u2
            if z * z / 4.0 <= -log(u2):
                break
        service = exp(mu + z * sigma)
        # Two-server FCFS: ties pick server 0, same as min() over the
        # list in the reference.
        if server0 <= server1:
            start = clock if clock > server0 else server0
            server0 = start + service
            append(server0 - clock)
        else:
            start = clock if clock > server1 else server1
            server1 = start + service
            append(server1 - clock)
    avg = sum(sojourns) / len(sojourns) / 1000.0
    return avg, percentile(sojourns, 99) / 1000.0


def _queueing_run_batch(get_ns, set_ns, offered_kqps, cfg, rng,
                        requests=30_000):
    """Batch-kernel replay: the whole load point in one native call.

    The per-request segment is identical to :func:`_queueing_run_fast`;
    what changes is *where* it runs — a compile-once C kernel
    (``repro.sim.batch.queue_replay``) that draws from the transferred
    MT19937 state and hands back the sojourn total (left-folded in
    generation order, like ``sum``) plus the p99 sojourn (the exact
    two order statistics ``stats.percentile`` would interpolate,
    selected in O(n)).  Returns ``None`` when the native tier is
    unavailable, in which case the caller falls back to the fast path.
    """
    from repro.sim import batch

    lambd = 1.0 / (1e6 / offered_kqps)
    half_var = cfg.service_jitter_sigma * cfg.service_jitter_sigma / 2.0
    outcome = batch.queue_replay(
        rng, requests, lambd, cfg.get_fraction,
        cfg.service_jitter_sigma,
        math.log(get_ns) - half_var, math.log(set_ns) - half_var,
        _NV_MAGICCONST, pct=99,
    )
    if outcome is None:
        return None
    total, p99 = outcome
    return total / requests / 1000.0, p99 / 1000.0


def run(mode=ExecutionMode.BASELINE, config=None, loads_kqps=None, seed=42,
        requests=30_000, costs=None):
    """Full Figure-8 sweep for one mode."""
    cfg = config or EtcConfig()
    loads = loads_kqps or [5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5]
    get_ns, set_ns = measure_service(mode, cfg, costs=costs)
    result = MemcachedResult(mode=mode, service_get_us=get_ns / 1000.0,
                             service_set_us=set_ns / 1000.0)
    for load in loads:
        rng = DeterministicRng(seed).fork(f"{mode}:{load}")
        avg, p99 = _queueing_run(get_ns, set_ns, load, cfg, rng,
                                 requests=requests)
        result.points.append(LoadPoint(load, avg, p99))
    return result


def headline_improvements(baseline, svt, sla_us=500.0):
    """The paper's headline numbers (the 2.20x / 1.43x arrows of Fig. 8).

    * p99: the largest improvement over loads where the baseline still
      meets the SLA (the paper's "within SLA" qualifier).
    * avg: the improvement in the flat low-load region, where average
      latency reflects the service path rather than queueing.
    """
    p99_ratios = [
        base_point.p99_us / svt_point.p99_us
        for base_point, svt_point in zip(baseline.points, svt.points)
        if base_point.within_sla(sla_us)
    ]
    avg_ratio = (baseline.points[0].avg_us / svt.points[0].avg_us
                 if baseline.points and svt.points else 0.0)
    return (max(p99_ratios) if p99_ratios else 0.0, avg_ratio)
