"""Workload models reproducing the paper's evaluation (§6).

One module per benchmark family:

* `repro.workloads.cpuid` — the cpuid microbenchmark (Table 1, Fig. 6)
* `repro.workloads.netperf` — TCP RR / STREAM over virtio-net (Fig. 7)
* `repro.workloads.disk` — ioping / fio over virtio-blk (Fig. 7)
* `repro.workloads.memcached` — key-value store under load (Fig. 8)
* `repro.workloads.tpcc` — TPC-C + PostgreSQL proxy (Fig. 9)
* `repro.workloads.video` — soft-realtime playback (Fig. 10)
* `repro.workloads.channels` — wait-mechanism microbenchmarks (§6.1)

Each module exposes ``run(mode=...)`` returning a result dataclass and a
``PAPER`` constant with the numbers the paper reports, so benchmarks can
print measured-vs-paper rows.
"""

from repro.workloads import (
    channels,
    cpuid,
    disk,
    memcached,
    netperf,
    tpcc,
    video,
)
from repro.workloads.base import ModeComparison, compare_modes

__all__ = [
    "ModeComparison",
    "channels",
    "compare_modes",
    "cpuid",
    "disk",
    "memcached",
    "netperf",
    "tpcc",
    "video",
]
