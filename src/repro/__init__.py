"""repro — reproduction of *Using SMT to Accelerate Nested Virtualization*
(Vilanova, Amit, Etsion; ISCA 2019).

The library simulates the paper's whole stack — an SMT core with a shared
physical register file, Intel-style nested virtualization (VMCS
shadowing, vmcs12<->vmcs02 transforms, Algorithm 1), virtio I/O devices,
and the three systems the paper evaluates: stock nested virtualization
(baseline), the software-only SVt prototype, and the proposed SVt
hardware.  Timing is calibrated to the paper's Table 1.

Quick start::

    from repro import Machine, ExecutionMode
    from repro.cpu import isa

    machine = Machine(mode=ExecutionMode.HW_SVT)
    result = machine.run_program(isa.Program([isa.cpuid()], repeat=100))
    print(result.ns_per_instruction)   # ~5360 ns vs 10400 baseline
"""

from repro.config import HostConfig, MachineConfig, VMConfig, paper_machine
from repro.core.mode import ExecutionMode
from repro.core.system import Machine, RunResult
from repro.cpu.costs import CostModel
from repro.errors import (
    ChannelError,
    ConfigError,
    CrossContextFault,
    DeadlockError,
    EptFault,
    ReproError,
    VirtualizationError,
    VmcsError,
)

__version__ = "1.0.0"

__all__ = [
    "ChannelError",
    "ConfigError",
    "CostModel",
    "CrossContextFault",
    "DeadlockError",
    "EptFault",
    "ExecutionMode",
    "HostConfig",
    "Machine",
    "MachineConfig",
    "ReproError",
    "RunResult",
    "VMConfig",
    "VirtualizationError",
    "VmcsError",
    "paper_machine",
    "__version__",
]
