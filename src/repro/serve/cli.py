"""CLI entry points: ``repro serve`` and ``repro loadtest``."""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ReproError
from repro.exp.cache import ResultCache
from repro.exp.result import canonical_json
from repro.serve import loadtest as loadtest_mod
from repro.serve.http import ServeHttp
from repro.serve.pool import WorkerPool
from repro.serve.service import ExperimentService


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Long-lived experiment service (see "
                    "docs/serving.md)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8749)
    parser.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="worker processes (default 2)")
    parser.add_argument("--capacity", type=int, default=8,
                        help="admission queue capacity (default 8)")
    parser.add_argument("--deadline", type=float, default=30.0,
                        metavar="S",
                        help="per-request deadline, seconds")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result cache root (default "
                             "results/cache/)")
    return parser


async def _serve_forever(args: argparse.Namespace) -> None:
    pool = WorkerPool(jobs=args.jobs)
    service = ExperimentService(
        ResultCache(root=args.cache_dir), pool,
        capacity=args.capacity, deadline_s=args.deadline)
    server = ServeHttp(service, host=args.host, port=args.port)
    pool.start()
    try:
        host, port = await server.start()
        print(f"repro serve on http://{host}:{port} "
              f"(jobs={args.jobs}, capacity={args.capacity})",
              file=sys.stderr)
        await asyncio.Event().wait()
    finally:
        await server.stop()
        pool.stop()


def main_serve(argv: Optional[List[str]] = None) -> int:
    args = _serve_parser().parse_args(argv)
    try:
        asyncio.run(_serve_forever(args))
    except KeyboardInterrupt:
        pass
    return 0


def _loadtest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro loadtest",
        description="Deterministic serve-tier load test + regression "
                    "gate (see docs/serving.md)")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--concurrency", type=int, default=8,
                        help="clients per wave (default 8)")
    parser.add_argument("--capacity", type=int, default=None,
                        help="admission capacity (default: "
                             "concurrency)")
    parser.add_argument("--deadline", type=float, default=30.0)
    parser.add_argument("--no-coalesce", action="store_true",
                        help="disable coalescing (differential mode)")
    parser.add_argument("--storm", action="store_true",
                        help="arm the worker-kill fault storm")
    parser.add_argument("--dump-bodies", type=Path, default=None,
                        metavar="DIR",
                        help="write one body per fingerprint to DIR")
    parser.add_argument("--out", type=Path, default=None,
                        help="write the campaign document here")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="compare against this document")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when the baseline regresses")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="relative wall-clock threshold "
                             "(default 0.5)")
    parser.add_argument("--json", action="store_true",
                        help="print the document instead of the "
                             "summary")
    return parser


def main_loadtest(argv: Optional[List[str]] = None) -> int:
    args = _loadtest_parser().parse_args(argv)
    try:
        doc = loadtest_mod.run_loadtest(
            seed=args.seed, requests=args.requests, jobs=args.jobs,
            concurrency=args.concurrency, capacity=args.capacity,
            deadline_s=args.deadline, coalesce=not args.no_coalesce,
            storm=args.storm, dump_dir=args.dump_bodies)
    except ReproError as error:
        print(f"loadtest failed: {error}", file=sys.stderr)
        return 2
    if args.out is not None:
        args.out.write_text(canonical_json(doc))
    if args.json:
        print(canonical_json(doc), end="")
    else:
        print(loadtest_mod.render(doc))
    if args.baseline is not None:
        try:
            baseline = json.loads(args.baseline.read_text())
        except (OSError, ValueError) as error:
            print(f"cannot read baseline: {error}", file=sys.stderr)
            return 2
        regressions = loadtest_mod.compare(doc, baseline,
                                           args.threshold)
        for entry in regressions:
            print(f"REGRESSION [{entry['kind']}] {entry['field']}: "
                  f"{entry['current']} vs baseline "
                  f"{entry['baseline']}", file=sys.stderr)
        if regressions and args.check:
            return 1
    return 0
