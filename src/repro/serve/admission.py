"""Bounded admission gate — the CommandRing ``try_push`` idiom, HTTP'd.

The SW SVt command ring (:class:`repro.core.channel.CommandRing`)
never blocks a producer: ``try_push`` either claims a slot or returns
``False`` and counts an overflow, and the *caller* decides how to
retry.  The serve tier front door works the same way: admission is a
non-raising ``try_push`` against a fixed capacity, a full gate is a
counted rejection the service turns into ``429 Retry-After``, and
nothing ever waits inside the gate itself.

The gate is the one piece of serve state shared between the client
(event-loop) side and the supervisor threads, so every transition is
lock-ordered and exposed only through the ``try_push``/``release``
ordering API — svtlint's SVT007 flags any direct write to gate fields
from multi-context code.

``reject_streak`` is the overload signal: it counts *consecutive*
rejections (any admit resets it), so a sustained streak of at least
one full capacity means clients are arriving faster than the pool
drains — the service's cue to start shedding tiers.
"""

from __future__ import annotations

import threading
from typing import Any, Dict

from repro.errors import ConfigError


class AdmissionQueue:
    """Bounded in-flight request gate with backpressure counters."""

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.depth = 0
        self.high_water = 0
        self.admitted_total = 0
        self.rejected_total = 0
        self.reject_streak = 0
        self._lock = threading.Lock()

    def try_push(self) -> bool:
        """Claim one in-flight slot; ``False`` (counted) when full."""
        with self._lock:
            if self.depth >= self.capacity:
                self.rejected_total += 1
                self.reject_streak += 1
                return False
            self.depth += 1
            self.admitted_total += 1
            self.reject_streak = 0
            if self.depth > self.high_water:
                self.high_water = self.depth
            return True

    def release(self) -> None:
        """Return a slot claimed by a successful :meth:`try_push`."""
        with self._lock:
            if self.depth <= 0:
                raise ConfigError("release() without a matching admit")
            self.depth -= 1

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready gate state (deterministic key order)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "depth": self.depth,
                "high_water": self.high_water,
                "admitted": self.admitted_total,
                "rejected": self.rejected_total,
                "reject_streak": self.reject_streak,
            }
