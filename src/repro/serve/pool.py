"""Supervised process worker pool: deadlines, crash retry, quarantine.

Requests execute in child processes (one :class:`WorkerSlot` per
``--jobs``), so a wedged or dying cell can never take the service
down.  The supervisor side (this module) owns the full robustness
contract:

* **deadlines** — every dispatch polls the worker pipe against a
  per-request deadline; an overrun kills and restarts the worker and
  the request fails fast with a ``timeout`` outcome (the deadline is
  spent — no retry);
* **crash detection + deterministic retry** — a worker dying
  mid-request (EOF on the pipe / process death) is retried on a fresh
  worker under the shared :class:`repro.faults.BackoffPolicy`, with
  the backoff jitter seeded by the *request fingerprint* — replaying
  the same campaign replays the same retry schedule;
* **capped attempts + quarantine** — a request that kills its worker
  on every attempt exhausts the policy budget and is reported as a
  ``crash`` outcome; the service quarantines its fingerprint so one
  poisoned request cannot grind the pool down forever;
* **fault injection** — an optional :class:`repro.faults.FaultInjector`
  is consulted once per dispatch (``FaultKind.WORKER_KILL``); an
  injected kill makes the worker exit *before* computing, so crash
  storms never duplicate a computation, and recoveries are reported
  back to the injector scoreboard.

Workers compute through exactly the code path the CLI uses
(``Experiment.run`` / ``dse.build_document`` / ``bench_document``), so
a served body is byte-identical to the CLI artifact for the same
fingerprint.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError, ReproError
from repro.faults.backoff import BackoffPolicy
from repro.faults.plan import FaultKind

#: Worker exit code for an injected kill (distinguishable in ps/logs).
_KILL_EXIT = 17

#: Pipe poll slice, seconds: how often the supervisor re-checks the
#: deadline and worker liveness while waiting.
_POLL_SLICE_S = 0.02

#: Serve-tier retry schedule: the watchdog shape (double and cap)
#: scaled from sim-nanoseconds to real milliseconds, with
#: fingerprint-seeded jitter on so storm retries de-synchronize.
SERVE_BACKOFF = BackoffPolicy(
    base_ns=1_000_000,       # 1 ms
    factor=2,
    cap_ns=16_000_000,       # 16 ms
    max_attempts=4,
    jitter_tenths=5,
)


@dataclass(frozen=True)
class Job:
    """One unit of pool work (picklable, fully resolved)."""

    key: str
    kind: str
    experiment: str
    params: Tuple[Tuple[str, Any], ...]
    deadline_s: float = 30.0


@dataclass
class Outcome:
    """What one :meth:`WorkerPool.execute` call produced."""

    status: str              # "ok" | "error" | "timeout" | "crash"
    body: str = ""
    error: str = ""
    attempts: int = 1
    worker: str = ""


def compute_body(kind: str, experiment: str,
                 params: Dict[str, Any]) -> str:
    """The canonical body for one request — the CLI path, verbatim.

    Experiment bodies are ``Result.to_json()`` of the serial reference
    path; dse/bench bodies are the canonical JSON of the documents the
    ``repro dse`` / ``repro bench`` CLIs emit.
    """
    from repro.exp.result import canonical_json

    if kind == "experiment":
        from repro.exp import registry
        from repro.exp.registry import RunContext

        exp = registry.get(experiment)
        return exp.run(RunContext.create(params)).to_json()
    if kind == "dse":
        from repro.exp import dse

        doc = dse.build_document(
            models=params.get("models", ("xeon-paper",)),
            scale_tenths=params.get("scale_tenths",
                                    dse.SMOKE["scale_tenths"]),
            mwait_wake=params.get("mwait_wake",
                                  dse.SMOKE["mwait_wake"]),
            stall_resume=params.get("stall_resume",
                                    dse.SMOKE["stall_resume"]),
            placements=params.get("placements",
                                  dse.SMOKE["placements"]),
            iterations=params.get("iterations", 50),
        )
        return canonical_json(doc)
    if kind == "bench":
        from repro.exp import bench

        overrides = {}
        if params.get("cost_model"):
            overrides["cost_model"] = params["cost_model"]
        doc = bench.bench_document(
            names=params.get("names"), sections=("smoke",),
            repeats=params.get("repeats", 1), legacy=False,
            overrides=overrides or None)
        return canonical_json(doc)
    raise ConfigError(f"unknown request kind {kind!r}")


def _worker_main(conn: Any) -> None:
    """Child-process loop: recv a job, compute, send the outcome."""
    # svtlint: disable=SVT005 — bounded: the supervisor owns this
    # loop; closing the pipe raises EOFError on recv and the worker
    # exits, and a "stop" message ends it cooperatively.
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message.get("op") == "stop":
            break
        if message.get("kill"):
            # Injected WORKER_KILL: die *before* computing, so a
            # retried request is never a duplicated computation.
            os._exit(_KILL_EXIT)
        try:
            body = compute_body(message["kind"], message["experiment"],
                                dict(message["params"]))
            reply = {"status": "ok", "body": body}
        except ReproError as error:
            # Deterministic simulation/config failure: same inputs
            # would fail the same way — cacheable as a negative entry.
            reply = {"status": "error", "error": str(error)}
        except Exception as error:  # noqa: BLE001 - worker must reply
            reply = {"status": "error",
                     "error": f"{type(error).__name__}: {error}"}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


@dataclass
class WorkerSlot:
    """One supervised worker process and its pipe."""

    name: str
    process: Any = None
    conn: Any = None
    kills: int = 0           # injected kills absorbed by this slot
    completed: int = 0       # computations finished on this slot

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """Fixed-size supervised pool; ``execute`` blocks one caller
    thread per in-flight request (the service runs it in an executor).
    """

    def __init__(self, jobs: int = 2,
                 policy: Optional[BackoffPolicy] = None,
                 injector: Any = None,
                 max_kills_per_worker: int = 1) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.policy = policy or SERVE_BACKOFF
        self.injector = injector
        self.max_kills_per_worker = max_kills_per_worker
        self._mp = multiprocessing.get_context("fork")
        self._slots: Dict[str, WorkerSlot] = {}
        self._ready: "queue.Queue[WorkerSlot]" = queue.Queue()
        self._lock = threading.Lock()
        self._started = False
        # -- supervisor scoreboard (mirrored into /healthz) ---------------
        self.executed = 0        # computations completed
        self.crashes = 0         # worker deaths observed mid-request
        self.retries = 0         # re-dispatches after a crash
        self.timeouts = 0        # deadline overruns
        self.restarts = 0        # worker processes respawned
        self.quarantine_hits = 0  # requests that exhausted retries

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for index in range(self.jobs):
            slot = WorkerSlot(name=f"worker-{index}")
            self._spawn(slot)
            self._slots[slot.name] = slot
            self._ready.put(slot)

    def stop(self) -> None:
        if not self._started:
            return
        self._started = False
        for slot in self._slots.values():
            try:
                if slot.conn is not None:
                    slot.conn.send({"op": "stop"})
                    slot.conn.close()
            except (BrokenPipeError, OSError):
                pass
            if slot.process is not None:
                slot.process.join(timeout=2.0)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=2.0)
        self._slots.clear()
        # Drain the ready queue so a restart starts clean.
        # svtlint: disable=SVT005 — bounded: drains a queue that no
        # longer receives entries (started flag is down); each
        # iteration removes one element and Empty breaks out.
        while True:
            try:
                self._ready.get_nowait()
            except queue.Empty:
                break

    def _spawn(self, slot: WorkerSlot) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(target=_worker_main,
                                   args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn

    def _restart(self, slot: WorkerSlot) -> None:
        try:
            if slot.conn is not None:
                slot.conn.close()
        except OSError:
            pass
        if slot.process is not None:
            if slot.process.is_alive():
                slot.process.terminate()
            slot.process.join(timeout=2.0)
        self._spawn(slot)
        with self._lock:
            self.restarts += 1

    # -- execution --------------------------------------------------------

    def execute(self, job: Job) -> Outcome:
        """Run one job to a final outcome (blocking; see class doc)."""
        if not self._started:
            raise ConfigError("pool is not started")
        attempts = 0
        injected = 0
        while True:   # each attempt consumes retry budget (attempts)
            slot = self._ready.get()
            kill = self._decide_kill(slot)
            if kill:
                injected += 1
            outcome = self._dispatch(slot, job, kill)
            outcome.attempts = attempts + 1
            if outcome.status != "crash":
                if outcome.status == "ok":
                    self._note_recovered(injected)
                return outcome
            with self._lock:
                self.crashes += 1
            attempts += 1
            if self.policy.exhausted(attempts):
                with self._lock:
                    self.quarantine_hits += 1
                outcome.error = (
                    f"worker crashed on every attempt ({attempts})")
                return outcome
            with self._lock:
                self.retries += 1
            delay_ns = self.policy.delay_ns(attempts - 1, key=job.key)
            time.sleep(delay_ns / 1e9)

    def _decide_kill(self, slot: WorkerSlot) -> bool:
        if self.injector is None:
            return False
        if slot.kills >= self.max_kills_per_worker:
            return False
        if not self.injector.worker_kill(slot.name):
            return False
        slot.kills += 1
        return True

    def _note_recovered(self, injected: int) -> None:
        if injected and self.injector is not None:
            self.injector.note_recovered(FaultKind.WORKER_KILL,
                                         injected)

    def _dispatch(self, slot: WorkerSlot, job: Job,
                  kill: bool) -> Outcome:
        """One attempt on one worker; always re-parks a live slot."""
        payload = {"op": "job", "kind": job.kind,
                   "experiment": job.experiment, "params": job.params,
                   "kill": kill}
        try:
            slot.conn.send(payload)
        except (BrokenPipeError, OSError):
            self._restart(slot)
            self._ready.put(slot)
            return Outcome(status="crash", worker=slot.name,
                           error="worker pipe closed before dispatch")
        deadline = time.monotonic() + job.deadline_s
        reply = None
        crashed = False
        while reply is None and not crashed:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                if slot.conn.poll(min(remaining, _POLL_SLICE_S)):
                    reply = slot.conn.recv()
                elif not slot.alive():
                    crashed = True
            except (EOFError, OSError):
                crashed = True
        if reply is not None:
            slot.completed += 1
            with self._lock:
                self.executed += 1
            self._ready.put(slot)
            return Outcome(status=reply.get("status", "error"),
                           body=reply.get("body", ""),
                           error=reply.get("error", ""),
                           worker=slot.name)
        self._restart(slot)
        self._ready.put(slot)
        if crashed:
            return Outcome(status="crash", worker=slot.name,
                           error="worker died mid-request")
        with self._lock:
            self.timeouts += 1
        return Outcome(
            status="timeout", worker=slot.name,
            error=f"deadline of {job.deadline_s:g}s exceeded")

    # -- introspection ----------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """JSON-ready supervisor scoreboard (deterministic order)."""
        with self._lock:
            return {
                "jobs": self.jobs,
                "executed": self.executed,
                "crashes": self.crashes,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "restarts": self.restarts,
                "quarantine_hits": self.quarantine_hits,
            }
