"""Minimal asyncio HTTP/1.1 transport for the experiment service.

Deliberately tiny (stdlib ``asyncio`` streams only, no new runtime
dependencies) and deliberately boring: one request per connection
(``Connection: close``), bounded header and body reads (oversized
input is a 413/431, never an unbounded buffer), no ``Date`` header so
response bytes are a pure function of response content.

Routes::

    GET  /healthz      liveness + full scoreboard (always 200)
    GET  /readyz       readiness (503 while overloaded)
    GET  /metrics      raw `repro.obs` metrics snapshot
    POST /v1/request   execute one ServeRequest body

Validation failures are 400s carrying the ConfigError message;
transport-level garbage closes the connection with the smallest
correct error we can produce.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional, Tuple

from repro.errors import ConfigError
from repro.serve.protocol import ServeRequest
from repro.serve.service import ExperimentService, Response

#: Bounds on what a client may send (bytes / header lines).
MAX_BODY_BYTES = 64 * 1024
MAX_HEADER_LINES = 64
MAX_LINE_BYTES = 8 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def render_response(response: Response) -> bytes:
    """Serialize one :class:`Response` to HTTP/1.1 wire bytes."""
    reason = _REASONS.get(response.status, "Unknown")
    lines = [f"HTTP/1.1 {response.status} {reason}",
             "Content-Type: application/json",
             f"Content-Length: {len(response.body)}",
             "Connection: close"]
    lines.extend(f"{name}: {value}"
                 for name, value in response.headers)
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("utf-8") + response.body


class ServeHttp:
    """The asyncio stream server wrapping one ExperimentService."""

    def __init__(self, service: ExperimentService,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- one connection ---------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            response = await self._respond(reader)
        except ConnectionError:
            response = None
        except Exception as error:  # noqa: BLE001 - must answer
            response = Response.json(
                500, {"error": f"{type(error).__name__}: {error}"})
        try:
            if response is not None:
                writer.write(render_response(response))
                await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _respond(self,
                       reader: asyncio.StreamReader) -> Response:
        request_line = await reader.readline()
        if len(request_line) > MAX_LINE_BYTES:
            return Response.json(431, {"error": "request line too "
                                                "long"})
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return Response.json(400, {"error": "malformed request "
                                                "line"})
        method, path = parts[0], parts[1]
        length, error = await self._read_headers(reader)
        if error is not None:
            return error
        if method == "GET":
            return self._get(path)
        if method == "POST":
            return await self._post(path, reader, length)
        return Response.json(405,
                             {"error": f"method {method} not allowed"})

    async def _read_headers(
            self, reader: asyncio.StreamReader,
    ) -> Tuple[int, Optional[Response]]:
        """Consume headers; returns (content_length, error_response)."""
        length = 0
        remaining_lines = MAX_HEADER_LINES
        while remaining_lines > 0:
            remaining_lines -= 1
            line = await reader.readline()
            if len(line) > MAX_LINE_BYTES:
                return 0, Response.json(
                    431, {"error": "header line too long"})
            if line in (b"\r\n", b"\n", b""):
                return length, None
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return 0, Response.json(
                        400, {"error": "bad Content-Length"})
        return 0, Response.json(431, {"error": "too many headers"})

    def _get(self, path: str) -> Response:
        if path == "/healthz":
            return self.service.healthz()
        if path == "/readyz":
            return self.service.readyz()
        if path == "/metrics":
            return Response.json(200, self.service.metrics.snapshot())
        return Response.json(404, {"error": f"no route {path}"})

    async def _post(self, path: str, reader: asyncio.StreamReader,
                    length: int) -> Response:
        if path != "/v1/request":
            return Response.json(404, {"error": f"no route {path}"})
        if length > MAX_BODY_BYTES:
            return Response.json(
                413, {"error": f"body over {MAX_BODY_BYTES} bytes"})
        if length <= 0:
            return Response.json(400, {"error": "missing body"})
        body = await reader.readexactly(length)
        try:
            doc: Any = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return Response.json(400, {"error": "body is not JSON"})
        try:
            request = ServeRequest.parse(doc)
        except ConfigError as bad:
            return Response.json(400, {"error": str(bad)})
        return await self.service.submit(request)
