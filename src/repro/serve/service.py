"""The experiment service: admission, coalescing, shed, health.

:class:`ExperimentService` glues the serve tier together around one
asyncio event loop.  Per request (see ``docs/serving.md`` for the
state machine):

1. **quarantine check** — fingerprints that exhausted their crash
   retries are refused outright (422) until an operator clears them;
2. **cache fast-path** — experiment requests probe the shared
   :class:`~repro.exp.cache.ResultCache` first: a hit is served
   *before* any shed decision (cached reads are the last tier
   standing), and a remembered deterministic failure (negative entry)
   is replayed as the same error, never recomputed;
3. **shed check** — under degradation (recent worker crashes) or
   overload (a full capacity of consecutive rejections) the service
   sheds tiers expensive-first: bench, then DSE, then fresh
   experiment runs — with a deterministic ``Retry-After``;
4. **coalescing** — the first in-flight request per fingerprint leads
   and computes; identical concurrent requests join its future and
   receive byte-identical bodies;
5. **admission** — leaders claim a bounded
   :class:`~repro.serve.admission.AdmissionQueue` slot
   (``try_push``); a full gate is a 429 with the tier's deterministic
   ``Retry-After``;
6. **supervised execution** — the leader dispatches to the
   :class:`~repro.serve.pool.WorkerPool` (deadline, crash retry with
   fingerprint-seeded backoff) in an executor thread, then stores the
   result — or the error sentinel — back into the cache.

``/healthz`` (always 200) and ``/readyz`` (503 while overloaded)
report the gate, the coalescer, the supervisor scoreboard and p50/p99
service time from a `repro.obs` histogram.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple

from repro.exp.cache import ResultCache
from repro.exp.result import Result, canonical_json
from repro.obs.metrics import MetricsRegistry
from repro.serve.admission import AdmissionQueue
from repro.serve.coalesce import Coalescer
from repro.serve.pool import Job, Outcome, WorkerPool
from repro.serve.protocol import (TIER_RANK, ServeRequest,
                                  retry_after_s)

HEALTH_SCHEMA = "repro-serve-health/1"

#: How many requests a crash keeps the service in the degraded state
#: (sheds bench/DSE); refreshed by every newly observed crash.
DEGRADE_WINDOW = 32

#: In-memory body memo for dse/bench fingerprints (they have no
#: ResultCache tier); bounded, oldest-first eviction.
BODY_CACHE_LIMIT = 128

#: Shed levels (compare against TIER_RANK): 4 = serve everything,
#: 2 = shed dse+bench, 1 = shed everything uncached.
LEVEL_NORMAL, LEVEL_DEGRADED, LEVEL_CRITICAL = 4, 2, 1


@dataclass
class Response:
    """One HTTP-ready response (the transport adds the raw framing)."""

    status: int
    body: bytes
    headers: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    @classmethod
    def json(cls, status: int, doc: Any,
             **headers: str) -> "Response":
        return cls(status=status,
                   body=canonical_json(doc).encode("utf-8"),
                   headers=tuple(sorted(headers.items())))

    @classmethod
    def raw(cls, status: int, body: str, **headers: str) -> "Response":
        return cls(status=status, body=body.encode("utf-8"),
                   headers=tuple(sorted(headers.items())))


class ExperimentService:
    """Coalescing, admission-controlled front end over a worker pool."""

    def __init__(self, cache: ResultCache, pool: WorkerPool,
                 capacity: int = 8, deadline_s: float = 30.0,
                 degrade_window: int = DEGRADE_WINDOW,
                 coalesce: bool = True) -> None:
        self.cache = cache
        self.pool = pool
        self.deadline_s = deadline_s
        self.degrade_window = degrade_window
        self.coalesce = coalesce
        self.gate = AdmissionQueue(capacity=capacity)
        self.board = Coalescer()
        self.metrics = MetricsRegistry()
        self.quarantined: Set[str] = set()
        self._body_cache: Dict[str, Response] = {}
        self._crash_seen = 0
        self._degrade_budget = 0

    # -- degradation state ------------------------------------------------

    def _observe_crashes(self) -> None:
        crashes = self.pool.counters()["crashes"]
        if crashes > self._crash_seen:
            self._crash_seen = crashes
            self._degrade_budget = self.degrade_window
        elif self._degrade_budget > 0:
            self._degrade_budget -= 1

    @property
    def overloaded(self) -> bool:
        """A full capacity of consecutive rejections = overload."""
        return self.gate.reject_streak >= self.gate.capacity

    @property
    def degraded(self) -> bool:
        return self._degrade_budget > 0

    def shed_level(self) -> int:
        if self.overloaded and self.degraded:
            return LEVEL_CRITICAL
        if self.overloaded or self.degraded:
            return LEVEL_DEGRADED
        return LEVEL_NORMAL

    def status(self) -> str:
        level = self.shed_level()
        if level == LEVEL_CRITICAL:
            return "critical"
        if self.overloaded:
            return "overloaded"
        if self.degraded:
            return "degraded"
        return "ok"

    # -- request flow -----------------------------------------------------

    async def submit(self, request: ServeRequest) -> Response:
        """Run one validated request to an HTTP-ready response."""
        began = time.monotonic()
        self.metrics.count("serve_requests_total", kind=request.kind)
        self._observe_crashes()
        key = request.fingerprint(self.cache)
        response = self._fast_path(request, key)
        if response is None:
            response = await self._coalesced(request, key)
        elapsed_ns = int((time.monotonic() - began) * 1e9)
        self.metrics.observe("serve_request_ns", elapsed_ns)
        self.metrics.count("serve_responses_total",
                           status=response.status)
        return response

    def _fast_path(self, request: ServeRequest,
                   key: str) -> Optional[Response]:
        """Quarantine, memoization and shed checks (no computation)."""
        if key in self.quarantined:
            self.metrics.count("serve_quarantine_refusals_total")
            return Response.json(
                422, {"error": "request fingerprint is quarantined "
                               "after repeated worker crashes",
                      "fingerprint": key},
                **{"X-Repro-Fingerprint": key})
        if request.kind == "experiment":
            cached = self.cache.load(request.experiment,
                                     request.params_dict)
            if cached is not None:
                self.metrics.count("serve_cache_hits_total")
                return Response.raw(
                    200, cached.to_json(),
                    **{"X-Repro-Fingerprint": key,
                       "X-Repro-Source": "cache"})
            error = self.cache.load_error(request.experiment,
                                          request.params_dict)
            if error is not None:
                self.metrics.count("serve_cache_errors_total")
                return Response.json(
                    422, {"error": error, "cached": True},
                    **{"X-Repro-Fingerprint": key,
                       "X-Repro-Source": "cache"})
        else:
            memo = self._body_cache.get(key)
            if memo is not None:
                self.metrics.count("serve_cache_hits_total")
                return memo
        if request.tier >= self.shed_level():
            self.metrics.count("serve_shed_total", kind=request.kind)
            hint = retry_after_s(request.kind, self.gate.depth,
                                 self.gate.capacity)
            return Response.json(
                503, {"error": f"{request.kind} tier is shed while "
                               f"the service is {self.status()}",
                      "status": self.status()},
                **{"Retry-After": str(hint),
                   "X-Repro-Fingerprint": key})
        return None

    async def _coalesced(self, request: ServeRequest,
                         key: str) -> Response:
        if not self.coalesce:
            # Differential mode (`repro loadtest --no-coalesce`):
            # every request leads; bodies must still be identical.
            return await self._lead(request, key)
        loop = asyncio.get_running_loop()
        future, leader = self.board.join_or_lead(key, loop)
        if not leader:
            self.metrics.count("serve_coalesce_hits_total")
            shared: Response = await future
            headers = dict(shared.headers)
            headers["X-Repro-Source"] = "coalesced"
            return Response(status=shared.status, body=shared.body,
                            headers=tuple(sorted(headers.items())))
        try:
            response = await self._lead(request, key)
        except BaseException as error:
            self.board.abandon(key, error)
            raise
        self.board.resolve_key(key, response)
        return response

    async def _lead(self, request: ServeRequest,
                    key: str) -> Response:
        if not self.gate.try_push():
            hint = retry_after_s(request.kind, self.gate.capacity,
                                 self.gate.capacity)
            return Response.json(
                429, {"error": "admission queue is full",
                      "capacity": self.gate.capacity},
                **{"Retry-After": str(hint),
                   "X-Repro-Fingerprint": key})
        loop = asyncio.get_running_loop()
        job = Job(key=key, kind=request.kind,
                  experiment=request.experiment, params=request.params,
                  deadline_s=self.deadline_s)
        try:
            outcome = await loop.run_in_executor(
                None, self.pool.execute, job)
        finally:
            self.gate.release()
        return self._finish(request, key, outcome)

    def _finish(self, request: ServeRequest, key: str,
                outcome: Outcome) -> Response:
        if outcome.status == "ok":
            if request.kind == "experiment":
                self.cache.store(request.experiment,
                                 request.params_dict,
                                 Result.from_json(outcome.body))
            response = Response.raw(
                200, outcome.body,
                **{"X-Repro-Fingerprint": key,
                   "X-Repro-Source": "computed"})
            if request.kind != "experiment":
                self._memoize(key, response)
            return response
        if outcome.status == "error":
            if request.kind == "experiment":
                self.cache.store_error(request.experiment,
                                       request.params_dict,
                                       outcome.error)
            self.metrics.count("serve_errors_total")
            return Response.json(
                422, {"error": outcome.error, "cached": False},
                **{"X-Repro-Fingerprint": key})
        if outcome.status == "timeout":
            self.metrics.count("serve_timeouts_total")
            return Response.json(
                504, {"error": outcome.error,
                      "deadline_s": self.deadline_s},
                **{"X-Repro-Fingerprint": key})
        # Crash with the retry budget exhausted: quarantine the key.
        self.quarantined.add(key)
        self.metrics.count("serve_quarantined_total")
        return Response.json(
            500, {"error": outcome.error, "quarantined": True,
                  "attempts": outcome.attempts},
            **{"X-Repro-Fingerprint": key})

    def _memoize(self, key: str, response: Response) -> None:
        if len(self._body_cache) >= BODY_CACHE_LIMIT:
            oldest = next(iter(self._body_cache))
            del self._body_cache[oldest]
        self._body_cache[key] = response

    # -- health -----------------------------------------------------------

    def health_doc(self) -> Dict[str, Any]:
        histogram = self.metrics.histogram("serve_request_ns")
        p50 = histogram.quantile(0.5) if histogram else 0
        p99 = histogram.quantile(0.99) if histogram else 0
        return {
            "schema": HEALTH_SCHEMA,
            "status": self.status(),
            "shed_level": self.shed_level(),
            "queue": self.gate.snapshot(),
            "coalesce": self.board.snapshot(),
            "workers": self.pool.counters(),
            "requests": {
                "total": self.metrics.counter_total(
                    "serve_requests_total"),
                "cache_hits": self.metrics.counter_total(
                    "serve_cache_hits_total"),
                "coalesce_hits": self.metrics.counter_total(
                    "serve_coalesce_hits_total"),
                "shed": self.metrics.counter_total(
                    "serve_shed_total"),
                "errors": self.metrics.counter_total(
                    "serve_errors_total"),
                "timeouts": self.metrics.counter_total(
                    "serve_timeouts_total"),
                "quarantined": len(self.quarantined),
            },
            # Diagnostics only — never folded into Result bytes.
            "latency_ms": {
                "p50": round(p50 / 1e6, 3),
                "p99": round(p99 / 1e6, 3),
            },
        }

    def healthz(self) -> Response:
        """Liveness + full scoreboard; always 200 while we can answer."""
        return Response.json(200, self.health_doc())

    def readyz(self) -> Response:
        """Readiness: 503 while overloaded or critical."""
        ready = self.shed_level() > LEVEL_CRITICAL and not self.overloaded
        if ready:
            return Response.json(200, {"ready": True,
                                       "status": self.status()})
        return Response.json(
            503, {"ready": False, "status": self.status()},
            **{"Retry-After": str(retry_after_s(
                "experiment", self.gate.depth, self.gate.capacity))})
