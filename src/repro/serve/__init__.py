"""repro.serve — the long-lived, fault-tolerant experiment service.

The front door the ROADMAP's "millions of users" north star needs:
an asyncio HTTP/JSON API (stdlib only — no new runtime dependencies)
that executes experiment/DSE/bench requests on a supervised process
worker pool, with the robustness machinery threaded through every
layer:

* **admission control + backpressure** — a bounded request gate
  reusing the CommandRing ``try_push`` idiom
  (:mod:`repro.serve.admission`): when full, clients get 429 with a
  deterministic ``Retry-After``;
* **request coalescing** — identical in-flight requests, keyed by the
  ``repro.exp.cache`` fingerprints (cost-model fingerprint included),
  share one computation (:mod:`repro.serve.coalesce`), with the result
  cache as the memoization tier;
* **deadlines + supervision** — per-request deadlines, worker-crash
  detection with deterministic fingerprint-seeded backoff
  (:class:`repro.faults.BackoffPolicy`), capped retries, and
  poisoned-request quarantine (:mod:`repro.serve.pool`);
* **graceful degradation** — under overload or repeated worker loss
  the service sheds load by tier (bench/DSE first, cached reads last)
  and reports through ``/healthz`` + ``/readyz``
  (:mod:`repro.serve.service`).

Served results are byte-identical to the CLI path for the same
fingerprint; ``repro loadtest`` (:mod:`repro.serve.loadtest`) drives a
seeded client schedule against a live instance and gates the committed
``BENCH_serve.json`` baseline.  See ``docs/serving.md``.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.coalesce import Coalescer
from repro.serve.pool import WorkerPool
from repro.serve.protocol import ServeRequest
from repro.serve.service import ExperimentService

__all__ = [
    "AdmissionQueue",
    "Coalescer",
    "ExperimentService",
    "ServeRequest",
    "WorkerPool",
]
