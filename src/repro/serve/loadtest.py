"""``repro loadtest`` — deterministic client storm + regression gate.

Boots a real service (worker pool, HTTP listener on an ephemeral
loopback port) and drives it with a **seeded client schedule**: the
request mix — which experiments, which cost models, which arrivals
repeat an earlier request — derives entirely from
:class:`repro.sim.rng.DeterministicRng`, so two runs of the same seed
issue byte-identical request sequences.  Requests go over the wire in
waves of ``concurrency`` (asyncio gather), which is what makes
coalescing observable: duplicates inside a wave share the leader's
computation, duplicates across waves hit the result cache.

The emitted ``repro-serve-bench/1`` document splits cleanly:

* ``deterministic`` — counters that must reproduce exactly at a given
  seed (request count, distinct fingerprints, computations, retries,
  rejections, sheds).  The campaign itself asserts the two core
  invariants: **one computation per distinct fingerprint** (when
  coalescing is on) and **byte-identical bodies per fingerprint**.
* ``wall`` — wall-clock throughput and latency percentiles, gated
  against the committed ``BENCH_serve.json`` with generous noise
  floors (hosted runners are noisy; see :func:`compare`).

``--storm`` arms a :class:`repro.faults.FaultPlan` worker-kill storm
(every worker killed once, deterministically) to prove the supervisor
retries without duplicating a computation.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.exp import registry
from repro.exp.cache import ResultCache
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.serve.http import ServeHttp
from repro.serve.pool import WorkerPool
from repro.serve.service import ExperimentService
from repro.sim.rng import DeterministicRng

SCHEMA = "repro-serve-bench/1"

#: Experiments fast enough for a request mix (smoke wall < 20 ms).
MIX = ("coexist", "deep", "related", "table4", "table3", "table1")

#: Cost models exercised by the schedule (near-identical requests:
#: same experiment, different model => distinct fingerprints).
MODELS = ("xeon-paper", "fast-switch")

#: Probability an arrival repeats an earlier request (the coalesce /
#: cache fodder).
REPEAT_P = 0.45

#: Noise floors for the wall-clock gate: a regression needs to beat
#: the relative threshold *and* these absolute slacks.
MIN_WALL_DELTA_S = 1.0
MIN_P99_DELTA_MS = 250.0


def build_schedule(seed: int, requests: int) -> List[Dict[str, Any]]:
    """The seeded request list (pure function of seed and count)."""
    rng = DeterministicRng(seed).fork("serve-loadtest")
    schedule: List[Dict[str, Any]] = []
    for _ in range(requests):
        if schedule and rng.bernoulli(REPEAT_P):
            schedule.append(
                schedule[rng.randint(0, len(schedule) - 1)])
            continue
        name = MIX[rng.randint(0, len(MIX) - 1)]
        model = MODELS[rng.randint(0, len(MODELS) - 1)]
        exp = registry.get(name)
        params = dict(exp.smoke)
        params["cost_model"] = model
        schedule.append({"kind": "experiment", "experiment": name,
                         "params": params})
    return schedule


# -- raw HTTP client ------------------------------------------------------

async def http_request(host: str, port: int, method: str, path: str,
                       doc: Optional[Mapping[str, Any]] = None,
                       ) -> Tuple[int, Dict[str, str], bytes]:
    """One request over a fresh connection; returns
    (status, lowercase headers, body).

    The body is framed by ``Content-Length``, *not* read-to-EOF:
    worker processes forked by a mid-campaign supervisor restart
    inherit every open client socket, so the server-side close alone
    does not deliver EOF until those workers exit.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b""
        if doc is not None:
            payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Content-Type: application/json\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("utf-8") + payload)
        await writer.drain()
        header_blob = await reader.readuntil(b"\r\n\r\n")
        lines = header_blob.decode("latin-1").split("\r\n")
        status = int(lines[0].split()[1])
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await reader.readexactly(
            int(headers.get("content-length", "0")))
    finally:
        writer.close()
    return status, headers, body


# -- the campaign ---------------------------------------------------------

async def _drive(host: str, port: int,
                 schedule: List[Dict[str, Any]], concurrency: int,
                 ) -> List[Tuple[int, Dict[str, str], bytes, float]]:
    results: List[Tuple[int, Dict[str, str], bytes, float]] = []

    async def one(doc: Mapping[str, Any],
                  ) -> Tuple[int, Dict[str, str], bytes, float]:
        began = time.perf_counter()
        status, headers, body = await http_request(
            host, port, "POST", "/v1/request", doc)
        return status, headers, body, time.perf_counter() - began

    for wave_start in range(0, len(schedule), concurrency):
        wave = schedule[wave_start:wave_start + concurrency]
        results.extend(await asyncio.gather(*[one(doc)
                                              for doc in wave]))
    return results


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


async def _campaign(seed: int, requests: int, jobs: int,
                    concurrency: int, capacity: int,
                    deadline_s: float, coalesce: bool, storm: bool,
                    cache_dir: Path,
                    dump_dir: Optional[Path]) -> Dict[str, Any]:
    schedule = build_schedule(seed, requests)
    injector = None
    if storm:
        plan = FaultPlan(seed=seed,
                         rates={FaultKind.WORKER_KILL: 1.0})
        injector = FaultInjector(plan)
    pool = WorkerPool(jobs=jobs, injector=injector,
                      max_kills_per_worker=1)
    cache = ResultCache(root=cache_dir)
    service = ExperimentService(cache, pool, capacity=capacity,
                                deadline_s=deadline_s,
                                coalesce=coalesce)
    server = ServeHttp(service)
    pool.start()
    try:
        host, port = await server.start()
        began = time.perf_counter()
        outcomes = await _drive(host, port, schedule, concurrency)
        wall_s = time.perf_counter() - began
        health_status, _, health_body = await http_request(
            host, port, "GET", "/healthz")
        ready_status, _, _ = await http_request(
            host, port, "GET", "/readyz")
    finally:
        await server.stop()
        pool.stop()

    if health_status != 200:
        raise ReproError(f"/healthz returned {health_status}")
    if ready_status != 200:
        raise ReproError(f"/readyz returned {ready_status}")
    health = json.loads(health_body)

    bodies: Dict[str, bytes] = {}
    statuses: Dict[int, int] = {}
    latencies: List[float] = []
    for status, headers, body, latency in outcomes:
        statuses[status] = statuses.get(status, 0) + 1
        latencies.append(latency)
        key = headers.get("x-repro-fingerprint", "")
        if status == 200 and key:
            seen = bodies.get(key)
            if seen is not None and seen != body:
                raise ReproError(
                    f"fingerprint {key} served two different bodies")
            bodies[key] = body
    ok = statuses.get(200, 0)
    if ok != requests:
        raise ReproError(
            f"expected {requests} successes, got {ok} "
            f"(statuses: {dict(sorted(statuses.items()))})")
    computed = health["workers"]["executed"]
    if coalesce and computed != len(bodies):
        raise ReproError(
            f"{computed} computations for {len(bodies)} distinct "
            "fingerprints — coalesce/cache tier leaked work")
    if storm and health["workers"]["retries"] == 0:
        raise ReproError("storm campaign saw zero supervisor retries")

    if dump_dir is not None:
        dump_dir.mkdir(parents=True, exist_ok=True)
        for key, body in sorted(bodies.items()):
            (dump_dir / f"{key}.json").write_bytes(body)

    return {
        "schema": SCHEMA,
        "config": {
            "seed": seed,
            "requests": requests,
            "jobs": jobs,
            "concurrency": concurrency,
            "capacity": capacity,
            "coalesce": coalesce,
            "storm": storm,
            "python": ".".join(str(part)
                               for part in sys.version_info[:3]),
        },
        "deterministic": {
            "requests": requests,
            "ok": ok,
            "distinct": len(bodies),
            "computed": computed,
            "shared": requests - len(bodies),
            "retries": health["workers"]["retries"],
            "crashes": health["workers"]["crashes"],
            "rejected": health["queue"]["rejected"],
            "shed": health["requests"]["shed"],
            "errors": health["requests"]["errors"],
            "quarantined": health["requests"]["quarantined"],
        },
        "wall": {
            "wall_s": round(wall_s, 4),
            "requests_per_s": round(requests / wall_s, 2)
            if wall_s else 0.0,
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        },
    }


def run_loadtest(seed: int = 2019, requests: int = 60, jobs: int = 2,
                 concurrency: int = 8,
                 capacity: Optional[int] = None,
                 deadline_s: float = 30.0, coalesce: bool = True,
                 storm: bool = False,
                 cache_dir: Optional[Path] = None,
                 dump_dir: Optional[Path] = None) -> Dict[str, Any]:
    """One full campaign; returns the ``repro-serve-bench/1`` doc.

    Uses a fresh temporary cache unless ``cache_dir`` is given, so
    ``computed == distinct fingerprints`` holds from a cold start.
    """
    import tempfile

    registry.ensure_loaded()
    if capacity is None:
        capacity = concurrency
    if cache_dir is not None:
        return asyncio.run(_campaign(
            seed, requests, jobs, concurrency, capacity, deadline_s,
            coalesce, storm, cache_dir, dump_dir))
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        return asyncio.run(_campaign(
            seed, requests, jobs, concurrency, capacity, deadline_s,
            coalesce, storm, Path(tmp), dump_dir))


# -- the regression gate --------------------------------------------------

def compare(current: Mapping[str, Any], baseline: Mapping[str, Any],
            threshold: float = 0.5) -> List[Dict[str, Any]]:
    """Regressions of ``current`` vs ``baseline``, worst first.

    The ``deterministic`` section must match key-for-key (any drift
    is a correctness regression, not noise).  The ``wall`` section
    regresses only past the relative ``threshold`` *and* the absolute
    noise floors — loadtest wall clocks on shared runners jitter far
    more than the sim bench's.
    """
    regressions: List[Dict[str, Any]] = []
    base_det = baseline.get("deterministic", {})
    cur_det = current.get("deterministic", {})
    for key in sorted(set(base_det) | set(cur_det)):
        if base_det.get(key) != cur_det.get(key):
            regressions.append({
                "kind": "deterministic", "field": key,
                "current": cur_det.get(key),
                "baseline": base_det.get(key),
            })
    base_wall = baseline.get("wall", {})
    cur_wall = current.get("wall", {})
    wall_s = float(cur_wall.get("wall_s", 0.0))
    base_s = float(base_wall.get("wall_s", 0.0))
    if (base_s > 0.0 and wall_s > base_s * (1.0 + threshold)
            and wall_s - base_s > MIN_WALL_DELTA_S):
        regressions.append({
            "kind": "wall", "field": "wall_s", "current": wall_s,
            "baseline": base_s,
            "ratio": round(wall_s / base_s, 3),
        })
    p99 = float(cur_wall.get("p99_ms", 0.0))
    base_p99 = float(base_wall.get("p99_ms", 0.0))
    if (base_p99 > 0.0 and p99 > base_p99 * (1.0 + threshold)
            and p99 - base_p99 > MIN_P99_DELTA_MS):
        regressions.append({
            "kind": "wall", "field": "p99_ms", "current": p99,
            "baseline": base_p99,
            "ratio": round(p99 / base_p99, 3),
        })
    return sorted(regressions,
                  key=lambda r: (r["kind"] != "deterministic",
                                 str(r["field"])))


def render(doc: Mapping[str, Any]) -> str:
    """Human-readable campaign summary."""
    config = doc.get("config", {})
    det = doc.get("deterministic", {})
    wall = doc.get("wall", {})
    lines = [
        (f"loadtest seed={config.get('seed')} "
         f"requests={det.get('requests')} jobs={config.get('jobs')} "
         f"concurrency={config.get('concurrency')} "
         f"coalesce={config.get('coalesce')} "
         f"storm={config.get('storm')}"),
        (f"  distinct={det.get('distinct')} "
         f"computed={det.get('computed')} "
         f"shared={det.get('shared')} retries={det.get('retries')} "
         f"rejected={det.get('rejected')} shed={det.get('shed')}"),
        (f"  wall={wall.get('wall_s')}s "
         f"rate={wall.get('requests_per_s')}/s "
         f"p50={wall.get('p50_ms')}ms p99={wall.get('p99_ms')}ms"),
    ]
    return "\n".join(lines)
