"""Request model, shed tiers, and deterministic Retry-After arithmetic.

A :class:`ServeRequest` is the validated form of one ``POST
/v1/request`` body::

    {"kind": "experiment", "experiment": "table1",
     "params": {"cost_model": "fast-switch"}}

``kind`` selects the execution path — a registered experiment, a DSE
sweep (:func:`repro.exp.dse.build_document`) or a bench document
(:func:`repro.exp.bench.bench_document`).  Validation is strict:
unknown experiment names and parameter typos fail loudly with 400
(``Experiment.resolve(strict=True)``), never silently run defaults.

**Fingerprints.**  Every request has exactly one fingerprint, computed
through :meth:`repro.exp.cache.ResultCache.key` — the same key the CLI
path caches under, folding in the resolved parameters, the cost-model
fingerprint/id, the code fingerprint and the kernel tag.  The
coalescer and the quarantine both key on it, so "identical request"
means identical *result bytes*, not identical wire bytes.

**Shed tiers.**  Under degradation the service sheds the expensive
tiers first: bench before DSE before fresh experiment runs; cached
reads (tier 0) are never shed.  :data:`TIER_RANK` is the single
ordering both the service and the tests consult.

**Retry-After.**  Rejections must tell well-behaved clients when to
come back, and the hint must be deterministic (testable, replayable):
a pure function of the tier and the queue shape, never of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ConfigError
from repro.exp import registry
from repro.exp.cache import ResultCache

#: Execution paths, cheapest-to-shed last.
KINDS = ("experiment", "dse", "bench")

#: Shed ordering: a request is shed when its rank >= the current shed
#: level.  Cached reads (rank 0) survive every level >= 1.
TIER_RANK = {"cached": 0, "experiment": 1, "dse": 2, "bench": 3}

#: Retry-After base per tier, seconds.  Expensive tiers are told to
#: back off longer — they are also the first to be shed.
RETRY_AFTER_BASE_S = {"experiment": 1, "dse": 2, "bench": 4}

#: Parameters accepted by the non-experiment kinds (everything else is
#: a 400; the experiment kind validates against the registry schema).
DSE_PARAMS = ("models", "scale_tenths", "mwait_wake", "stall_resume",
              "placements", "iterations")
BENCH_PARAMS = ("names", "repeats", "cost_model")


def retry_after_s(kind: str, depth: int, capacity: int) -> int:
    """Deterministic Retry-After for one rejection.

    A pure function of the tier base and queue pressure: the base is
    scaled by how many full queues deep the backlog is.  At the moment
    of a 429 (``depth == capacity``) this is exactly the tier base,
    which is what the overload tests pin.
    """
    if capacity <= 0:
        raise ConfigError(f"capacity must be > 0: {capacity}")
    base = RETRY_AFTER_BASE_S.get(kind, RETRY_AFTER_BASE_S["bench"])
    pressure = max(1, -(-max(depth, 1) // capacity))   # ceil division
    return base * pressure


@dataclass(frozen=True)
class ServeRequest:
    """One validated request: what to run and under which parameters."""

    kind: str
    experiment: str = ""
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)

    @property
    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def tier(self) -> int:
        return TIER_RANK[self.kind]

    @classmethod
    def parse(cls, doc: Mapping[str, Any]) -> "ServeRequest":
        """Validate one request body; raises ConfigError on any typo."""
        if not isinstance(doc, Mapping):
            raise ConfigError("request body must be a JSON object")
        kind = doc.get("kind", "experiment")
        if kind not in KINDS:
            raise ConfigError(
                f"unknown kind {kind!r}; known: {', '.join(KINDS)}")
        params = doc.get("params") or {}
        if not isinstance(params, Mapping):
            raise ConfigError("params must be a JSON object")
        name = doc.get("experiment", "")
        if kind == "experiment":
            if not name:
                raise ConfigError(
                    "experiment requests need an 'experiment' name")
            # Unknown names raise here; unknown params raise inside
            # resolve(strict=True).  The *resolved* params are stored,
            # so two spellings of the same run share one fingerprint.
            resolved = registry.get(name).resolve(params, strict=True)
            return cls(kind=kind, experiment=name,
                       params=tuple(sorted(resolved.items())))
        allowed = DSE_PARAMS if kind == "dse" else BENCH_PARAMS
        for key in params:
            if key not in allowed:
                raise ConfigError(
                    f"{kind} requests accept no parameter {key!r}")
        normalized = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in params.items()
        }
        return cls(kind=kind, experiment="",
                   params=tuple(sorted(normalized.items())))

    def fingerprint(self, cache: ResultCache) -> str:
        """The request's cache/coalesce key (see module docstring).

        Non-experiment kinds borrow the same key machinery under a
        reserved pseudo-name, so their coalescing still folds in the
        code fingerprint and kernel tag.
        """
        name = self.experiment if self.kind == "experiment" \
            else f"__{self.kind}__"
        return cache.key(name, self.params_dict)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"kind": self.kind,
                               "params": self.params_dict}
        if self.experiment:
            doc["experiment"] = self.experiment
        return doc
