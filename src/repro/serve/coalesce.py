"""Request coalescing: identical in-flight requests share one run.

Coalescing is keyed by the request *fingerprint*
(:meth:`repro.serve.protocol.ServeRequest.fingerprint` — the
``repro.exp.cache`` key), so "identical" means identical result bytes
by construction.  The first arrival for a key becomes the **leader**
and actually executes; every later arrival while the key is in flight
becomes a **joiner** and awaits the leader's future.  The leader
resolves the future with its finished response — whatever it is: a
200 result, a deterministic error, even a 429 — so joiners can never
outlive the computation they joined.

Near-identical requests (same experiment, different ``--cost-model``)
have different fingerprints and therefore never coalesce: exactly one
computation runs per *distinct* fingerprint, which is the invariant
the coalescer tests pin.

The board is event-loop-only state: every method must be called from
the service's asyncio thread (supervisor threads hand results back by
scheduling :meth:`resolve_key` on the loop), so no lock is needed —
single-threaded mutation *is* the ordering.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Tuple


class Coalescer:
    """In-flight request board: one future per live fingerprint."""

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        self.leads_total = 0
        self.hits_total = 0

    def join_or_lead(
            self, key: str, loop: asyncio.AbstractEventLoop,
    ) -> Tuple["asyncio.Future[Any]", bool]:
        """The shared future for ``key`` and whether the caller leads."""
        future = self._inflight.get(key)
        if future is not None:
            self.hits_total += 1
            return future, False
        future = loop.create_future()
        self._inflight[key] = future
        self.leads_total += 1
        return future, True

    def resolve_key(self, key: str, response: Any) -> None:
        """Leader hands its finished response to every joiner."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(response)

    def abandon(self, key: str, error: BaseException) -> None:
        """Leader died before producing a response; fail the joiners."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_exception(error)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def snapshot(self) -> Dict[str, int]:
        return {
            "inflight": self.inflight,
            "leads": self.leads_total,
            "hits": self.hits_total,
        }
