"""Event engine with an integer nanosecond clock.

Two styles of progress coexist:

* *Synchronous* code (hypervisor handlers, guest instruction execution)
  calls :meth:`Simulator.advance` to charge elapsed time.  Any events whose
  deadline falls inside the advanced window fire at their exact timestamp,
  so asynchronous arrivals interleave deterministically with synchronous
  execution.
* *Asynchronous* code registers callbacks with :meth:`Simulator.after` or
  :meth:`Simulator.at`; callbacks run with the clock set to their deadline.

Determinism: ties on the timestamp are broken by registration order, and
no wall-clock or global randomness is consulted anywhere.
"""

import heapq


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling in the past)."""


class EventHandle:
    """Cancellation token returned by :meth:`Simulator.at`/``after``."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from firing; safe to call repeatedly."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator (time unit: nanoseconds)."""

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0
        self._firing = False

    # -- scheduling ------------------------------------------------------

    def at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute ``time`` ns."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        handle = EventHandle(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def after(self, delay, callback, *args):
        """Schedule ``callback(*args)`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, *args)

    # -- time progress ---------------------------------------------------

    def advance(self, ns):
        """Advance the clock by ``ns``, firing events that fall due.

        Synchronous machine code uses this to charge execution costs.
        Events fire with ``now`` set to their own deadline; after the last
        due event the clock lands exactly on the target time.
        """
        if ns < 0:
            raise SimulationError(f"cannot advance by negative time {ns}")
        target = self.now + ns
        self._drain(target)
        self.now = target
        return target

    def run_until_idle(self, limit=None):
        """Fire all pending events in order; stop at ``limit`` ns if given.

        Returns the final simulation time.
        """
        target = limit if limit is not None else None
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if target is not None and head.time > target:
                break
            heapq.heappop(self._queue)
            self.now = head.time
            head.callback(*head.args)
        if target is not None and target > self.now:
            self.now = target
        return self.now

    def peek_next_time(self):
        """Timestamp of the earliest pending event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    @property
    def pending(self):
        """Number of non-cancelled scheduled events."""
        return sum(1 for h in self._queue if not h.cancelled)

    # -- internals -------------------------------------------------------

    def _drain(self, target):
        """Fire every non-cancelled event with deadline <= target."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > target:
                break
            heapq.heappop(self._queue)
            self.now = head.time
            head.callback(*head.args)
