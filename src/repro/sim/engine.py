"""Event engine with an integer nanosecond clock.

Two styles of progress coexist:

* *Synchronous* code (hypervisor handlers, guest instruction execution)
  calls :meth:`Simulator.advance` to charge elapsed time.  Any events whose
  deadline falls inside the advanced window fire at their exact timestamp,
  so asynchronous arrivals interleave deterministically with synchronous
  execution.
* *Asynchronous* code registers callbacks with :meth:`Simulator.after` or
  :meth:`Simulator.at`; callbacks run with the clock set to their deadline.

Determinism: ties on the timestamp are broken by registration order, and
no wall-clock or global randomness is consulted anywhere.

**Fast path (docs/performance.md).**  :meth:`Simulator.charge` is the
hot-path twin of :meth:`advance`: it keeps a conservative-low cache of
the earliest scheduled deadline (``_next_due``) and, while the charge
target stays below it, bumps the clock without touching the heap at
all.  The cache only ever *under*-estimates the true next live deadline
(pushes min-update it, pops refresh it from the heap root, which may be
a cancelled entry at an earlier time), so a skipped drain can never skip
a due event.  Fired and cancelled handles are recycled through a
bounded freelist — but only when their refcount proves no outside alias
survives that could later ``cancel()`` the reincarnated event — and the
heap is compacted inside :meth:`at` once cancelled entries outnumber
live ones (watchdog retry timers would otherwise leak dead handles
forever).

**Deadlock/livelock detection.**  Blocking participants announce
themselves with :meth:`Simulator.park` (and :meth:`Simulator.unpark` on
wake-up).  When :meth:`run_until_idle` drains the event queue while
waiters are still parked, nothing left in the simulation can ever wake
them — the §5.3 failure shape — and the engine raises a structured
:class:`repro.errors.DeadlockError` carrying a :class:`DeadlockReport`
that names each waiter, what it waits on, and the wait-for edges.  A
``max_events`` cycle budget turns livelock (events forever rescheduling
themselves without progress) into the same loud report.
"""

import heapq
from dataclasses import dataclass, field
from sys import getrefcount

from repro.errors import DeadlockError
from repro.sim import kernel as _kernel
from repro.sim import sanitizer as _san

#: Freelist bound: enough to absorb timer churn, small enough that a
#: pathological cancel storm cannot pin memory.
_FREELIST_MAX = 256

#: Minimum number of cancelled entries before ``at`` considers
#: compacting — avoids heapify thrash on tiny queues.
_COMPACT_MIN = 8


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling in the past)."""


@dataclass(frozen=True)
class Waiter:
    """One parked participant registered via :meth:`Simulator.park`."""

    name: str           # who is blocked ("L0_0.hypervisor", ...)
    waits_on: str       # the resource/event it needs ("CMD_VM_RESUME")
    blocked_on: str = ""  # the party expected to provide it ("" unknown)
    since_ns: int = 0   # sim time the wait began

    def to_dict(self):
        return {
            "name": self.name,
            "waits_on": self.waits_on,
            "blocked_on": self.blocked_on,
            "since_ns": self.since_ns,
        }


@dataclass(frozen=True)
class DeadlockReport:
    """Structured account of a detected deadlock or livelock."""

    kind: str                       # "deadlock" | "livelock"
    at_ns: int                      # sim time of detection
    waiters: tuple = ()             # tuple[Waiter], sorted by name
    edges: tuple = ()               # wait-for edges (waiter, blocked_on)
    events_fired: int = 0           # livelock only: budget consumed
    detail: str = ""
    timeline: tuple = field(default_factory=tuple)

    def to_dict(self):
        return {
            "kind": self.kind,
            "at_ns": self.at_ns,
            "waiters": [w.to_dict() for w in self.waiters],
            "edges": [list(edge) for edge in self.edges],
            "events_fired": self.events_fired,
            "detail": self.detail,
        }

    def render(self):
        lines = [f"{self.kind} at t={self.at_ns} ns"]
        if self.detail:
            lines.append(f"  {self.detail}")
        for waiter in self.waiters:
            via = (f" (blocked on {waiter.blocked_on})"
                   if waiter.blocked_on else "")
            lines.append(
                f"  waiter {waiter.name}: waits for {waiter.waits_on}"
                f"{via} since t={waiter.since_ns}"
            )
        for src, dst in self.edges:
            lines.append(f"  wait-for edge: {src} -> {dst}")
        return "\n".join(lines)


class EventHandle:
    """Cancellation token returned by :meth:`Simulator.at`/``after``."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner")

    def __init__(self, time, seq, callback, args, owner=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner = owner

    def cancel(self):
        """Prevent the callback from firing; safe to call repeatedly."""
        if not self.cancelled:
            self.cancelled = True
            # Keep the owning simulator's live-event counter exact; an
            # already-fired event has detached itself (owner is None).
            if self._owner is not None:
                self._owner._pending -= 1
                self._owner._dead += 1
                self._owner = None

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator (time unit: nanoseconds)."""

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0
        self._pending = 0
        self._firing = False
        # Conservative-low cache of the earliest scheduled deadline:
        # never greater than the true earliest *live* deadline (it may
        # point at a cancelled entry's earlier time, which is harmless),
        # so `charge` may skip the heap whenever target < _next_due.
        self._next_due = None
        # Cancelled entries still sitting in the heap; compaction in
        # `at` keeps this below the live count.
        self._dead = 0
        # Recycled EventHandle slots (bounded; see _recycle).
        self._freelist = []
        # Fast-path accounting (repro.sim.kernel / `repro bench`).
        self.events_fired = 0
        self.compactions = 0
        # Parked waiters (deadlock detection): name -> Waiter.
        self._waiters = {}
        # Observability hook (repro.obs.Observer); None keeps event
        # firing on the exact pre-observability path.
        self.obs = None
        _kernel.adopt_simulator(self)

    def _fire(self, head):
        """Run one due event's callback, optionally under a span."""
        self.events_fired += 1
        if _san.ACTIVE is not None:
            # Event dispatch is serialization by construction: the heap
            # fires strictly in timestamp order, so everything before
            # this fire happens-before the callback's accesses.
            _san.ACTIVE.ordering_event("event-fire")
        obs = self.obs
        if obs is not None and obs.tracing:
            name = getattr(head.callback, "__qualname__",
                           head.callback.__class__.__name__)
            with obs.span(f"event:{name}", t=head.time, seq=head.seq):
                head.callback(*head.args)
        else:
            head.callback(*head.args)

    # -- scheduling ------------------------------------------------------

    def at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute ``time`` ns."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        if self._dead >= _COMPACT_MIN and self._dead > self._pending:
            self._compact()
        free = self._freelist
        if free:
            handle = free.pop()
            handle.time = time
            handle.seq = self._seq
            handle.callback = callback
            handle.args = args
            handle.cancelled = False
            handle._owner = self
        else:
            handle = EventHandle(time, self._seq, callback, args,
                                 owner=self)
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._queue, handle)
        if self._next_due is None or time < self._next_due:
            self._next_due = time
        return handle

    def after(self, delay, callback, *args):
        """Schedule ``callback(*args)`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, *args)

    # -- time progress ---------------------------------------------------

    def advance(self, ns):
        """Advance the clock by ``ns``, firing events that fall due.

        Synchronous machine code uses this to charge execution costs.
        Events fire with ``now`` set to their own deadline; after the last
        due event the clock lands exactly on the target time.
        """
        if ns < 0:
            raise SimulationError(f"cannot advance by negative time {ns}")
        target = self.now + ns
        self._drain(target)
        self.now = target
        queue = self._queue
        self._next_due = queue[0].time if queue else None
        return target

    def charge(self, ns):
        """Fast-path :meth:`advance`: identical semantics, lazy heap.

        While the target stays strictly below the cached next deadline
        no event can fall due, so the clock bumps without a heap peek;
        otherwise the call flushes through the same :meth:`_drain` as
        ``advance`` and every due event fires at its exact timestamp.
        Synchronous machine code on the hot path charges through this.
        """
        if ns < 0:
            raise SimulationError(f"cannot advance by negative time {ns}")
        target = self.now + ns
        due = self._next_due
        if due is None or due > target:
            self.now = target
            return target
        self._drain(target)
        self.now = target
        queue = self._queue
        self._next_due = queue[0].time if queue else None
        return target

    def run_until_idle(self, limit=None, max_events=None):
        """Fire all pending events in order; stop at ``limit`` ns if given.

        Returns the final simulation time.

        ``max_events`` is a livelock cycle-budget: if more events fire
        than the budget allows, a :class:`repro.errors.DeadlockError`
        with a ``kind="livelock"`` report is raised.  Independently, if
        the queue drains while participants are parked (see
        :meth:`park`), nothing can ever wake them and a
        ``kind="deadlock"`` report is raised.
        """
        target = limit if limit is not None else None
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._dead -= 1
                self._recycle(head)
                continue
            if target is not None and head.time > target:
                break
            if max_events is not None and fired >= max_events:
                raise DeadlockError(
                    f"livelock: cycle budget of {max_events} events "
                    f"exhausted at t={self.now}",
                    report=self.deadlock_report("livelock",
                                                events_fired=fired),
                )
            heapq.heappop(self._queue)
            self._pending -= 1
            head._owner = None
            self.now = head.time
            self._fire(head)
            self._recycle(head)
            fired += 1
        queue = self._queue
        self._next_due = queue[0].time if queue else None
        if target is not None and target > self.now:
            self.now = target
        if not self._queue and self._waiters:
            # The queue drained for real (not a limit stop) with parked
            # waiters: no remaining event can ever wake them.
            report = self.deadlock_report("deadlock", events_fired=fired)
            raise DeadlockError(
                "deadlock: event queue drained with "
                f"{len(self._waiters)} parked waiter(s): "
                + ", ".join(sorted(self._waiters)),
                report=report,
            )
        return self.now

    # -- deadlock detection ----------------------------------------------

    def park(self, name, waits_on, blocked_on=""):
        """Register a blocked participant for deadlock detection.

        ``name`` identifies the waiter; ``waits_on`` names the event or
        resource it needs; ``blocked_on`` (optional) names the party
        expected to provide it, yielding a wait-for edge in the report.
        Re-parking the same name replaces the previous registration.
        """
        self._waiters[name] = Waiter(name=name, waits_on=waits_on,
                                     blocked_on=blocked_on,
                                     since_ns=self.now)

    def unpark(self, name):
        """Remove a parked waiter (no-op when not parked)."""
        self._waiters.pop(name, None)

    @property
    def parked(self):
        """Sorted names of currently parked waiters."""
        return sorted(self._waiters)

    def deadlock_report(self, kind="deadlock", events_fired=0, detail=""):
        """Build a :class:`DeadlockReport` from the current waiter set."""
        waiters = tuple(self._waiters[name]
                        for name in sorted(self._waiters))
        edges = tuple((w.name, w.blocked_on) for w in waiters
                      if w.blocked_on)
        return DeadlockReport(kind=kind, at_ns=self.now, waiters=waiters,
                              edges=edges, events_fired=events_fired,
                              detail=detail)

    def peek_next_time(self):
        """Timestamp of the earliest pending event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            head = heapq.heappop(self._queue)
            self._dead -= 1
            self._recycle(head)
        if not self._queue:
            self._next_due = None
            return None
        self._next_due = self._queue[0].time
        return self._next_due

    @property
    def pending(self):
        """Number of non-cancelled scheduled events.

        O(1): a live counter maintained by :meth:`at`,
        :meth:`EventHandle.cancel` and the firing paths — this sits on
        the hot path of long runs (devices poll it between bursts), so
        it must not scan the heap.
        """
        return self._pending

    # -- internals -------------------------------------------------------

    def _drain(self, target):
        """Fire every non-cancelled event with deadline <= target."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._dead -= 1
                self._recycle(head)
                continue
            if head.time > target:
                break
            heapq.heappop(self._queue)
            self._pending -= 1
            head._owner = None
            self.now = head.time
            self._fire(head)
            self._recycle(head)

    def _recycle(self, handle, extra=0):
        """Return a dead (fired or cancelled) handle to the freelist.

        Only when its refcount proves no alias survives outside the
        caller: the caller's local, this parameter binding and
        ``getrefcount``'s own argument account for 3 references
        (``extra`` covers a caller-side container still holding it).
        Any additional reference means external code could still call
        ``cancel()`` on the handle after reuse — which would corrupt an
        unrelated future event — so such handles are simply dropped.
        Recycling never perturbs ordering: ``seq`` comes from the
        monotonic global counter regardless of the allocation path.
        """
        free = self._freelist
        if len(free) >= _FREELIST_MAX or getrefcount(handle) > 3 + extra:
            return
        handle.callback = None
        handle.args = ()
        handle._owner = None
        free.append(handle)

    def _compact(self):
        """Rebuild the heap without cancelled entries (satellite of the
        fast-path work: watchdog retry timers cancel in bulk and used to
        leave their handles in ``_queue`` until their deadline passed).
        """
        queue = self._queue
        live = []
        for handle in queue:
            if handle.cancelled:
                self._recycle(handle, extra=1)
            else:
                live.append(handle)
        heapq.heapify(live)
        self._queue = live
        self._dead = 0
        self._next_due = live[0].time if live else None
        self.compactions += 1
