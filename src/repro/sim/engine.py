"""Event engine with an integer nanosecond clock.

Two styles of progress coexist:

* *Synchronous* code (hypervisor handlers, guest instruction execution)
  calls :meth:`Simulator.advance` to charge elapsed time.  Any events whose
  deadline falls inside the advanced window fire at their exact timestamp,
  so asynchronous arrivals interleave deterministically with synchronous
  execution.
* *Asynchronous* code registers callbacks with :meth:`Simulator.after` or
  :meth:`Simulator.at`; callbacks run with the clock set to their deadline.

Determinism: ties on the timestamp are broken by registration order, and
no wall-clock or global randomness is consulted anywhere.
"""

import heapq


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling in the past)."""


class EventHandle:
    """Cancellation token returned by :meth:`Simulator.at`/``after``."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_owner")

    def __init__(self, time, seq, callback, args, owner=None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._owner = owner

    def cancel(self):
        """Prevent the callback from firing; safe to call repeatedly."""
        if not self.cancelled:
            self.cancelled = True
            # Keep the owning simulator's live-event counter exact; an
            # already-fired event has detached itself (owner is None).
            if self._owner is not None:
                self._owner._pending -= 1
                self._owner = None

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Deterministic discrete-event simulator (time unit: nanoseconds)."""

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0
        self._pending = 0
        self._firing = False
        # Observability hook (repro.obs.Observer); None keeps event
        # firing on the exact pre-observability path.
        self.obs = None

    def _fire(self, head):
        """Run one due event's callback, optionally under a span."""
        obs = self.obs
        if obs is not None and obs.tracing:
            name = getattr(head.callback, "__qualname__",
                           head.callback.__class__.__name__)
            with obs.span(f"event:{name}", t=head.time, seq=head.seq):
                head.callback(*head.args)
        else:
            head.callback(*head.args)

    # -- scheduling ------------------------------------------------------

    def at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute ``time`` ns."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        handle = EventHandle(time, self._seq, callback, args, owner=self)
        self._seq += 1
        self._pending += 1
        heapq.heappush(self._queue, handle)
        return handle

    def after(self, delay, callback, *args):
        """Schedule ``callback(*args)`` ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, callback, *args)

    # -- time progress ---------------------------------------------------

    def advance(self, ns):
        """Advance the clock by ``ns``, firing events that fall due.

        Synchronous machine code uses this to charge execution costs.
        Events fire with ``now`` set to their own deadline; after the last
        due event the clock lands exactly on the target time.
        """
        if ns < 0:
            raise SimulationError(f"cannot advance by negative time {ns}")
        target = self.now + ns
        self._drain(target)
        self.now = target
        return target

    def run_until_idle(self, limit=None):
        """Fire all pending events in order; stop at ``limit`` ns if given.

        Returns the final simulation time.
        """
        target = limit if limit is not None else None
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if target is not None and head.time > target:
                break
            heapq.heappop(self._queue)
            self._pending -= 1
            head._owner = None
            self.now = head.time
            self._fire(head)
        if target is not None and target > self.now:
            self.now = target
        return self.now

    def peek_next_time(self):
        """Timestamp of the earliest pending event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    @property
    def pending(self):
        """Number of non-cancelled scheduled events.

        O(1): a live counter maintained by :meth:`at`,
        :meth:`EventHandle.cancel` and the firing paths — this sits on
        the hot path of long runs (devices poll it between bursts), so
        it must not scan the heap.
        """
        return self._pending

    # -- internals -------------------------------------------------------

    def _drain(self, target):
        """Fire every non-cancelled event with deadline <= target."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > target:
                break
            heapq.heappop(self._queue)
            self._pending -= 1
            head._owner = None
            self.now = head.time
            self._fire(head)
