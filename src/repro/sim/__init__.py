"""Discrete-event simulation substrate used by every other subpackage.

The simulator keeps an integer nanosecond clock.  Synchronous "machine"
code advances time by charging costs (:meth:`Simulator.advance`), while
asynchronous events (interrupt arrivals, client requests) are scheduled
with :meth:`Simulator.after` / :meth:`Simulator.at` and fire in timestamp
order whenever the clock sweeps past them.
"""

from repro.sim.engine import EventHandle, Simulator, SimulationError
from repro.sim.rng import DeterministicRng
from repro.sim.stats import (
    Summary,
    mean,
    percentile,
    remove_outliers,
    stddev,
    summarize,
)
from repro.sim.timeline import Span, Timeline, record_exit_timeline
from repro.sim.trace import Tracer, Category

__all__ = [
    "Category",
    "Span",
    "Timeline",
    "record_exit_timeline",
    "DeterministicRng",
    "EventHandle",
    "SimulationError",
    "Simulator",
    "Summary",
    "Tracer",
    "mean",
    "percentile",
    "remove_outliers",
    "stddev",
    "summarize",
]
