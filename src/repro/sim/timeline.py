"""Span timeline: who ran when, exportable to Chrome's trace format.

The :class:`~repro.sim.trace.Tracer` answers "how much time went where";
the timeline answers "in what order, and overlapping what".  Spans are
hierarchical (an exit span contains handler spans contains aux-trap
spans), mirror Algorithm 1's structure, and export to the JSON the
``chrome://tracing`` / Perfetto viewers load, so a nested VM trap can be
inspected visually.
"""

import json

from repro.errors import ConfigError


class Span:
    """One named interval with nested children."""

    __slots__ = ("name", "category", "start", "end", "children", "meta")

    def __init__(self, name, category, start, meta=None):
        self.name = name
        self.category = category
        self.start = start
        self.end = None
        self.children = []
        self.meta = meta or {}

    @property
    def duration(self):
        if self.end is None:
            raise ConfigError(f"span {self.name!r} still open")
        return self.end - self.start

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self):
        state = f"{self.duration}ns" if self.end is not None else "open"
        return f"Span({self.name!r}, {self.category}, {state})"


class Timeline:
    """Records a stack of spans against a simulator clock."""

    def __init__(self, sim):
        self._sim = sim
        self.roots = []
        self._stack = []

    # -- recording ---------------------------------------------------------

    def begin(self, name, category="span", **meta):
        span = Span(name, category, self._sim.now, meta)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span=None):
        if not self._stack:
            raise ConfigError("no open span to end")
        top = self._stack.pop()
        if span is not None and span is not top:
            raise ConfigError(
                f"span nesting violated: closing {span.name!r} while "
                f"{top.name!r} is innermost"
            )
        top.end = self._sim.now
        return top

    def span(self, name, category="span", **meta):
        """Context manager form."""
        return _SpanContext(self, name, category, meta)

    @property
    def depth(self):
        return len(self._stack)

    # -- queries -------------------------------------------------------------

    def all_spans(self):
        for root in self.roots:
            yield from root.walk()

    def total_by_category(self):
        """Exclusive (self-minus-children) time per category."""
        totals = {}
        for span in self.all_spans():
            if span.end is None:
                continue
            child_time = sum(
                c.duration for c in span.children if c.end is not None
            )
            exclusive = span.duration - child_time
            totals[span.category] = totals.get(span.category, 0) \
                + exclusive
        return totals

    def find(self, name):
        return [s for s in self.all_spans() if s.name == name]

    # -- export ---------------------------------------------------------------

    def to_chrome_trace(self, process_name="repro", thread_id=0):
        """The Chrome/Perfetto ``traceEvents`` JSON (complete events,
        microsecond timestamps)."""
        events = [{
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }]
        for span in self.all_spans():
            if span.end is None:
                continue
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "pid": 1,
                "tid": thread_id,
                "ts": span.start / 1000.0,
                "dur": span.duration / 1000.0,
                "args": dict(span.meta),
            })
        return {"traceEvents": events,
                "displayTimeUnit": "ns"}

    def dump_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)


class _SpanContext:
    def __init__(self, timeline, name, category, meta):
        self._timeline = timeline
        self._args = (name, category, meta)
        self._span = None

    def __enter__(self):
        name, category, meta = self._args
        self._span = self._timeline.begin(name, category, **meta)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        self._timeline.end(self._span)
        return False


def record_exit_timeline(machine, program):
    """Run a program with a span per VM exit; returns the timeline.

    Wraps the stack's ``l2_exit`` so every trap becomes a root span
    whose metadata carries the exit reason — enough to see Algorithm 1's
    rhythm in a trace viewer.
    """
    timeline = Timeline(machine.sim)
    stack = machine.stack
    original = stack.l2_exit

    def traced_l2_exit(exit_info):
        with timeline.span(f"vmexit:{exit_info.reason}", "exit",
                           reason=exit_info.reason):
            return original(exit_info)

    stack.l2_exit = traced_l2_exit
    try:
        machine.run_program(program)
    finally:
        stack.l2_exit = original
    return timeline
