"""Deterministic random source.

Every stochastic choice in the simulator flows through one of these, so a
fixed seed reproduces a run bit-for-bit.  Helpers mirror the distributions
the workload models need (Poisson arrivals, Zipfian key popularity for the
ETC workload, log-normal service jitter).
"""

import bisect
import math
import random
import zlib


class DeterministicRng:
    """Seeded random source with workload-oriented helpers."""

    _zipf_tables = {}  # class-level cache: (n, skew) -> cumulative weights

    def __init__(self, seed=0):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label):
        """Derive an independent stream named ``label`` (stable across
        processes — avoids Python's per-process string-hash salt — and
        stable w.r.t. the parent seed, so adding streams does not perturb
        existing ones)."""
        digest = zlib.crc32(f"{self.seed}:{label}".encode("utf-8"))
        return DeterministicRng(digest & 0xFFFFFFFF)

    # -- primitive draws -------------------------------------------------

    def uniform(self, lo, hi):
        return self._random.uniform(lo, hi)

    def randint(self, lo, hi):
        return self._random.randint(lo, hi)

    def choice(self, seq):
        return self._random.choice(seq)

    def random(self):
        return self._random.random()

    def raw_stream(self):
        """The underlying uniform stream as a bound ``random()`` method.

        For fast-path replays (``docs/performance.md``) that inline the
        stdlib samplers bit-exactly: drawing from this stream with the
        same algorithm consumes the identical variates in the identical
        order, so fast and reference paths stay bit-for-bit equal.
        """
        return self._random.random

    def getstate(self):
        """The underlying generator state (MT19937 key + position).

        The batch kernel (``repro.sim.batch``) transfers this state
        into its compiled replay and pushes the advanced state back
        through :meth:`setstate`, so a native replay leaves the stream
        exactly where the equivalent Python draws would have.
        """
        return self._random.getstate()

    def setstate(self, state):
        self._random.setstate(state)

    def shuffle(self, seq):
        self._random.shuffle(seq)

    # -- distributions ----------------------------------------------------

    def exponential(self, mean_value):
        """Exponential inter-arrival draw with the given mean."""
        if mean_value <= 0:
            raise ValueError(f"exponential mean must be positive: {mean_value}")
        return self._random.expovariate(1.0 / mean_value)

    def lognormal_around(self, mean_value, rel_sigma):
        """Log-normal draw whose *mean* is ``mean_value`` and whose shape
        parameter is ``rel_sigma`` (0 degenerates to the mean)."""
        if rel_sigma <= 0:
            return mean_value
        sigma = rel_sigma
        mu = math.log(mean_value) - sigma * sigma / 2.0
        return self._random.lognormvariate(mu, sigma)

    def zipf_index(self, n, skew=0.99):
        """Draw an index in [0, n) with Zipfian popularity (used by the
        memcached ETC key-popularity model).  Inverse-CDF over a cached
        cumulative-weight table, O(log n) per draw."""
        if n <= 0:
            raise ValueError("zipf over empty domain")
        if n == 1:
            return 0
        cdf = self._zipf_cdf(n, skew)
        return bisect.bisect_left(cdf, self._random.random())

    def _zipf_cdf(self, n, skew):
        key = (n, skew)
        cdf = self._zipf_tables.get(key)
        if cdf is None:
            weights = [1.0 / (rank ** skew) for rank in range(1, n + 1)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cdf[-1] = 1.0
            self._zipf_tables[key] = cdf
        return cdf

    def bernoulli(self, p):
        """True with probability ``p``."""
        return self._random.random() < p
