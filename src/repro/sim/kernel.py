"""Simulation-kernel selection and fast-path accounting.

Three kernels execute the same simulation (see ``docs/performance.md``):

* ``segment`` (default) — the fast path: machines charge time through
  :meth:`repro.sim.engine.Simulator.charge` (lazy clock, heap skipped
  while no event is due) and replay compiled instruction segments
  (:mod:`repro.cpu.segments`) instead of dispatching the interpreter
  per instruction.
* ``batch`` — everything the segment kernel does, plus the sweep-level
  "compile once, replay many" tier (:mod:`repro.sim.batch`): per-cell
  mutable state in flat stdlib arrays, cross-cell event-heap
  elimination, and a compiled native replay of eligible workload inner
  loops.  Falls back to the segment path structure-by-structure, so
  its per-cell semantics are the segment kernel's, byte for byte.
* ``legacy`` — the original per-instruction path, kept behind this flag
  so the differential test (and any bisection of a determinism bug) can
  run every experiment through both and compare fingerprints.

The kernel is selected per *process* through the ``REPRO_SIM_KERNEL``
environment variable, so ``--jobs N`` pool workers (fork or spawn)
inherit the choice and results stay byte-identical at any job count.

:data:`KERNEL_VERSION` names the engine generation; the result cache
folds it into every key so results computed by a pre-segment engine can
never be served after an engine change (see ``repro.exp.cache``).

This module also hosts the *ambient stats* hook the bench harness uses:
inside :func:`collect_stats`, every :class:`~repro.sim.engine.Simulator`
and :class:`~repro.core.system.Machine` constructed registers itself
with the active collector, which can then report totals (events fired,
instructions retired) without the hot paths paying for any bookkeeping
beyond their own counters.  The collector stack is per-process, exactly
like ``repro.obs.observer``'s ambient capture.
"""

import os
from contextlib import contextmanager

from repro.errors import ConfigError

#: The fast path: batched charging + segment replay (the default).
SEGMENT = "segment"
#: Sweep-level batch tier on top of the segment path (repro.sim.batch).
BATCH = "batch"
#: The original per-instruction path, for differential runs.
LEGACY = "legacy"

KERNELS = (SEGMENT, BATCH, LEGACY)

#: Environment variable that selects the kernel for this process.
ENV_VAR = "REPRO_SIM_KERNEL"

#: Engine generation tag — bump on any change to charging/replay
#: semantics; the result cache keys on it (stale-engine safety).
#: fastpath-2: the batch kernel (flat-array replay + native tier) and
#: the batchable-count compile gate (COMPILE_MIN_INSTRUCTIONS retuned).
KERNEL_VERSION = "fastpath-2"


def validate(name):
    """Normalise and check a kernel name."""
    value = str(name).strip().lower()
    if value not in KERNELS:
        raise ConfigError(
            f"unknown simulation kernel {name!r} "
            f"(choose one of {', '.join(KERNELS)})"
        )
    return value


def active_kernel():
    """The kernel selected for this process (default: ``segment``)."""
    # svtlint: disable=SVT001 — the environment is exactly how the
    # kernel choice must travel: pool workers (fork or spawn) inherit
    # it, so every cell of a --jobs run executes the same kernel and
    # both kernels produce byte-identical results by construction.
    return validate(os.environ.get(ENV_VAR, SEGMENT))


def kernel_tag():
    """Cache-key material: engine generation plus the active kernel."""
    return f"{KERNEL_VERSION}:{active_kernel()}"


@contextmanager
def use_kernel(name):
    """Select a kernel for the duration of the block.

    Implemented through the environment (not a module global) so worker
    processes started inside the block — the ``--jobs`` pool — see the
    same kernel as the parent.
    """
    value = validate(name)
    # svtlint: disable=SVT001 — see active_kernel: the environment is
    # the deliberate, worker-inherited channel for kernel selection;
    # results are byte-identical under either kernel.
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = value  # svtlint: disable=SVT001 — as above
    try:
        yield value
    finally:
        if previous is None:
            # svtlint: disable=SVT001 — as above
            os.environ.pop(ENV_VAR, None)
        else:
            # svtlint: disable=SVT001 — as above
            os.environ[ENV_VAR] = previous


# ---------------------------------------------------------------------------
# Ambient fast-path stats (per-process; used by `repro bench`)
# ---------------------------------------------------------------------------


class KernelStats:
    """Totals over every simulator/machine built inside a collection.

    Holds strong references to the adopted objects and sums their own
    always-on counters on demand, so the simulator hot paths carry no
    collection-specific branches.
    """

    def __init__(self):
        self._simulators = []
        self._machines = []

    def adopt_simulator(self, sim):
        self._simulators.append(sim)

    def adopt_machine(self, machine):
        self._machines.append(machine)

    @property
    def events_fired(self):
        return sum(sim.events_fired for sim in self._simulators)

    @property
    def instructions(self):
        return sum(m.instructions_retired for m in self._machines)

    @property
    def compactions(self):
        return sum(sim.compactions for sim in self._simulators)

    @property
    def simulators(self):
        return len(self._simulators)

    def to_dict(self):
        return {
            "events_fired": self.events_fired,
            "instructions": self.instructions,
            "compactions": self.compactions,
            "simulators": self.simulators,
        }


_COLLECTORS = []


@contextmanager
def collect_stats():
    """Collect fast-path stats from every machine built in the block."""
    stats = KernelStats()
    _COLLECTORS.append(stats)
    try:
        yield stats
    finally:
        _COLLECTORS.pop()


def adopt_simulator(sim):
    """Called by ``Simulator.__init__``; no-op outside a collection."""
    for stats in _COLLECTORS:
        stats.adopt_simulator(sim)


def adopt_machine(machine):
    """Called by ``Machine.__init__``; no-op outside a collection."""
    for stats in _COLLECTORS:
        stats.adopt_machine(machine)
