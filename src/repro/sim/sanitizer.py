"""TSan-style runtime ordering sanitizer for shared sim state.

SVT007 (:mod:`repro.lint.races`) proves the *static* half of the
paper's cross-context discipline; this module checks it *dynamically*.
Behind ``REPRO_SIM_SANITIZE=1``, the shared-state classes
(``HardwareContext``, ``Vmcs``, ``CommandRing``) report every read and
write here, tagged with the current simulated-context label (L0 / L1 /
L2 / svt-thread — maintained by the nested stack and the SMT core's
context switches).  Happens-before edges come from exactly the three
orderings the paper allows:

* **sim-clock advances** — two accesses at different timestamps are
  ordered; the access table resets whenever the observed clock moves;
* **channel pushes/pops** — a ring operation is a synchronization
  point (:meth:`Sanitizer.ordering_event`), clearing the table;
* **context switches** — ``SmtCore._switch_fetch`` and the nested
  stack's reflection windows both bump the ordering epoch and update
  the context label.

Anything left — two accesses to the same ``(owner, field)`` with no
edge between them, from *different* context labels, at least one a
write — is a conflicting unordered access and becomes a
:class:`Report`, carrying the open :mod:`repro.obs` span stack when
tracing is on so the violation is attributed to a specific
exit-handling phase.

Disabled (the default), the instrumentation is a single module-global
``is None`` test per access — the same zero-overhead idiom the
observer layer uses — and Results are byte-identical with the flag on
or off because the sanitizer only ever *observes*.
"""

import os
from dataclasses import dataclass

#: The opt-in environment flag.
ENV_FLAG = "REPRO_SIM_SANITIZE"

#: Reports kept per process; beyond this only the count grows.
MAX_REPORTS = 200

#: The installed :class:`Sanitizer` (or ``None`` — the fast path).
ACTIVE = None

#: Process-wide report log; survives machine rebuilds so a runner can
#: collect per-cell with :func:`drain`.
REPORTS = []

#: Total conflicts seen (including ones dropped past MAX_REPORTS).
_TOTAL = 0


@dataclass(frozen=True)
class Access:
    """One recorded shared-state access."""

    context: str        # simulated context label ("L0", "L2", ...)
    op: str             # "r" or "w"
    site: str           # instrumentation site, e.g. "Vmcs.write"
    time_ns: int        # sim clock at the access
    epoch: int          # ordering epoch at the access
    spans: tuple        # open obs span names, outermost first

    def render(self):
        spans = "/".join(self.spans) if self.spans else "-"
        return (f"{self.context} {self.op}@{self.site} "
                f"[t={self.time_ns}ns epoch={self.epoch} "
                f"spans={spans}]")


@dataclass(frozen=True)
class Report:
    """One conflicting unordered access pair."""

    owner: str
    field: str
    first: Access
    second: Access

    def render(self):
        return (f"svt-sanitize: conflicting unordered access to "
                f"{self.owner}.{self.field}: {self.first.render()} "
                f"vs {self.second.render()}")


class Sanitizer:
    """Happens-before checker over shared-state access streams.

    ``clock`` is a zero-argument callable returning the sim clock in
    ns (``lambda: sim.now``); ``obs`` an optional
    :class:`repro.obs.Observer` consulted for span context.
    """

    def __init__(self, clock, obs=None):
        self._clock = clock
        self.obs = obs
        self.context_label = "L0"
        self._epoch = 0
        self._last_now = -1
        # (owner, field) -> accesses since the last happens-before
        # edge.  Cleared wholesale on clock movement and ordering
        # events, so membership alone means "unordered against".
        self._cells = {}

    # -- happens-before edges --------------------------------------------

    def set_context(self, label):
        """The simulation is now executing as ``label``."""
        self.context_label = label

    def ordering_event(self, kind=""):
        """A sanctioned ordering point: channel op or context switch."""
        self._epoch += 1
        self._cells.clear()

    # -- access recording ------------------------------------------------

    def record(self, owner, field, op, site):
        """Record one access; emit a report on an unordered conflict."""
        now = self._clock()
        if now != self._last_now:
            self._last_now = now
            self._epoch += 1
            self._cells.clear()
        spans = ()
        if self.obs is not None and self.obs.tracing:
            spans = self.obs.spans.open_span_names()
        access = Access(context=self.context_label, op=op, site=site,
                        time_ns=now, epoch=self._epoch, spans=spans)
        key = (owner, field)
        cell = self._cells.get(key)
        if cell is None:
            self._cells[key] = [access]
            return
        for previous in cell:
            if (previous.context != access.context
                    and (previous.op == "w" or op == "w")):
                _emit(Report(owner=owner, field=field,
                             first=previous, second=access))
        for previous in cell:
            if previous.context == access.context and previous.op == op:
                return  # already represented; bound cell growth
        cell.append(access)


def _emit(report):
    global _TOTAL
    _TOTAL += 1
    if len(REPORTS) < MAX_REPORTS:
        REPORTS.append(report)


def enabled():
    """Is ``REPRO_SIM_SANITIZE=1`` set for this process?"""
    # Diagnostic-only ambient read: the flag gates pure observation
    # and cannot alter Results (asserted by the differential test).
    # svtlint: disable=SVT001 — sanitizer opt-in flag, observation only
    return os.environ.get(ENV_FLAG, "") == "1"


def maybe_install(clock, obs=None):
    """Install a fresh :class:`Sanitizer` when the env flag is set.

    Called by ``Machine.__init__``; one machine is live at a time per
    process (cells run machines sequentially), so the newest install
    wins.  Returns the active sanitizer or ``None``.
    """
    global ACTIVE
    ACTIVE = Sanitizer(clock, obs) if enabled() else None
    return ACTIVE


def reports():
    """Reports accumulated in this process (capped at MAX_REPORTS)."""
    return list(REPORTS)


def total():
    """Total conflicts seen, including any past the report cap."""
    return _TOTAL


def drain():
    """Return and clear the accumulated reports (per-cell collection)."""
    global _TOTAL
    out = list(REPORTS)
    REPORTS.clear()
    _TOTAL = 0
    return out
