"""Category-tagged time accounting.

Every nanosecond the machine charges is attributed to a category.  The
categories mirror the breakdown rows of the paper's Table 1, plus extra
buckets used by the I/O and application models.  The Table 1 reproduction
(`repro.analysis.breakdown`) simply reads these totals back.
"""

from collections import defaultdict
from contextlib import contextmanager


class Category:
    """Trace category names (string constants, not an enum, so workload
    models can mint sub-categories like ``"exit:EPT_MISCONFIG"``)."""

    GUEST_WORK = "guest_work"            # part 0: useful L2/L1/L0 work
    SWITCH_L2_L0 = "switch_l2_l0"        # part 1: explicit L2<->L0 switch
    VMCS_TRANSFORM = "vmcs_transform"    # part 2: vmcs02<->vmcs12 transform
    L0_HANDLER = "l0_handler"            # part 3: L0 emulation work
    L0_LAZY_SWITCH = "l0_lazy_switch"    # part 3 (hidden): lazy save/restore
    SWITCH_L0_L1 = "switch_l0_l1"        # part 4: explicit L0<->L1 switch
    L1_HANDLER = "l1_handler"            # part 5: L1 emulation work
    L1_LAZY_SWITCH = "l1_lazy_switch"    # part 5 (hidden): lazy save/restore
    STALL_RESUME = "stall_resume"        # SVt thread stall/resume events
    CHANNEL = "channel"                  # SW SVt command-ring transfer+wake
    CROSS_CONTEXT = "cross_context"      # ctxtld/ctxtst execution
    IO_WIRE = "io_wire"                  # network fabric / media time
    IO_DEVICE = "io_device"              # device-model processing
    INTERRUPT = "interrupt"              # interrupt delivery/injection
    WATCHDOG = "watchdog"                # fault-recovery backoff waits
    IDLE = "idle"                        # waiting with no one running

    TABLE1_PARTS = (
        GUEST_WORK,
        SWITCH_L2_L0,
        VMCS_TRANSFORM,
        L0_HANDLER,
        SWITCH_L0_L1,
        L1_HANDLER,
    )


class Tracer:
    """Accumulates per-category time and (optionally) an event log.

    ``observer`` (a :class:`repro.obs.Observer`, attached by the
    machine when observability is on) receives every charge as a span;
    ``clock`` (a zero-argument callable returning simulated ns) enables
    the :meth:`span` self-time API.  Both default off, keeping the
    disabled hot path identical to the pre-observability code.
    """

    def __init__(self, keep_events=False, clock=None):
        self.totals = defaultdict(int)
        self.counts = defaultdict(int)
        self.keep_events = keep_events
        self.events = []
        self.observer = None
        self.clock = clock
        #: Open :meth:`span` frames: ``[category, start_ns, child_ns]``.
        self._span_stack = []

    def record(self, category, ns, **meta):
        """Attribute ``ns`` nanoseconds to ``category``."""
        if ns < 0:
            raise ValueError(f"negative trace charge {ns} for {category}")
        self.totals[category] += ns
        self.counts[category] += 1
        if self.keep_events:
            self.events.append((category, ns, meta))
        if self.observer is not None:
            self.observer.charge(category, ns, meta or None)

    @contextmanager
    def span(self, category, **meta):
        """Attribute a clocked interval's **self-time** to ``category``.

        Nested spans subtract cleanly: a parent is charged its elapsed
        time minus the *whole* elapsed time of its direct children, so
        every simulated nanosecond inside the outermost span lands in
        exactly one category.  This holds for recursive re-entry of the
        same category too — each frame tracks only its direct children's
        elapsed time, so a re-entered category's inner frame cannot be
        double-counted against both its own total and its ancestors'
        (the historical drift bug: subtracting recursive child time from
        every ancestor frame pushed category totals below the wall
        elapsed time; see ``tests/sim/test_trace.py``).
        """
        if self.clock is None:
            raise ValueError("Tracer.span needs a clock "
                             "(Tracer(clock=...) or tracer.clock = ...)")
        frame = [category, self.clock(), 0]
        self._span_stack.append(frame)
        try:
            yield
        finally:
            # A reset() mid-span discards the open frames; in that case
            # there is nothing left to charge this window against.
            if self._span_stack and self._span_stack[-1] is frame:
                self._span_stack.pop()
                elapsed = self.clock() - frame[1]
                self_ns = elapsed - frame[2]
                if self_ns < 0:
                    raise ValueError(
                        f"span {category!r}: child time {frame[2]} "
                        f"exceeds elapsed {elapsed}"
                    )
                self.record(category, self_ns, **meta)
                if self._span_stack:
                    # Only the *direct* parent absorbs this frame's
                    # whole window; grandparents see it through the
                    # parent's.
                    self._span_stack[-1][2] += elapsed

    def total(self, *categories):
        """Sum of the given categories (all categories when none given)."""
        if not categories:
            return sum(self.totals.values())
        return sum(self.totals.get(c, 0) for c in categories)

    def share(self, category):
        """Fraction of all traced time spent in ``category``."""
        whole = self.total()
        if whole == 0:
            return 0.0
        return self.totals.get(category, 0) / whole

    def merged_with(self, other):
        """Return a new tracer with both tracers' totals summed."""
        merged = Tracer(keep_events=False)
        for src in (self, other):
            for category, ns in src.totals.items():
                merged.totals[category] += ns
            for category, n in src.counts.items():
                merged.counts[category] += n
        return merged

    def reset(self):
        self.totals.clear()
        self.counts.clear()
        self.events.clear()
        self._span_stack.clear()

    def snapshot(self):
        """Plain-dict copy of the totals (useful for diffs in tests)."""
        return dict(self.totals)

    def __repr__(self):
        body = ", ".join(
            f"{cat}={ns}" for cat, ns in sorted(self.totals.items())
        )
        return f"Tracer({body})"
