"""Sweep-level batch kernel: compile once, replay many cells.

``REPRO_SIM_KERNEL=batch`` layers two replay tiers on top of the
segment kernel (whose per-cell semantics it inherits byte for byte —
see ``docs/performance.md``, "Batch kernel"):

* **Flat cell replay** (:func:`replay_cells`) — machine-level: given
  many independent (machine, program) cells whose next span is
  provably event-free, the per-cell mutable state (charge spans,
  retired counts, entry clocks) is laid out in flat stdlib
  :mod:`array` vectors and applied in one tight loop, skipping the
  whole per-cell ``run_program``/``_replay_segment`` prologue.  The
  compile memo (:mod:`repro.cpu.segments`) is shared, so a sweep of
  structurally identical cells compiles exactly once.  Any cell that
  fails the eligibility proof — pending deferred I/O, a pending
  interrupt, an event inside the span, observability attached, a
  multi-node plan — falls back to the ordinary per-cell step path,
  which is byte-identical by contract.

* **Native queue replay** (:func:`queue_replay`) — workload-level: the
  memcached ETC queueing inner loop (the fig8 sweep's dominant cost)
  is replayed by a compile-once C micro-kernel that embeds a bit-exact
  MT19937 (CPython's generator) and links the same libm as
  :mod:`math`, so every draw, every ``log``/``exp`` and the
  left-folded sojourn sum are the identical doubles the pure-Python
  fast path produces.  The kernel is built on first use with the
  system C compiler into a content-hash-named shared object; a
  load-time differential self-check against a pure-Python mirror
  disables the tier on any platform where even one bit differs.
  Callers treat a ``None`` return as "use the fallback path".

Cross-cell **event-heap elimination** is the eligibility proof above:
a cell whose simulator heap is empty (or whose next deadline lies at
or beyond the remaining span) cannot interleave with anything, so its
whole span collapses to one charge — no per-instruction boundary
checks, no per-cell event-heap traffic.

Nothing here may perturb results: every tier either reproduces the
segment kernel's bytes exactly or declines, and the differential tests
(`tests/exp/test_kernel_differential.py`, `tests/sim/test_batch.py`)
hold all three kernels to that bar.
"""

import ctypes
import os
import subprocess
import tempfile
from array import array
from hashlib import sha256
from pathlib import Path

from repro.cpu import segments
from repro.sim.trace import Category

#: Env var: set to ``0`` to disable the native tier (forces the pure
#: Python fallback; the fallback-path tests pin it).
NATIVE_ENV_VAR = "REPRO_BATCH_NATIVE"

#: Env var: overrides the build-cache directory for the native kernel.
CACHE_ENV_VAR = "REPRO_BATCH_CACHE"

#: MT19937 state width: 624 key words plus the cursor.
_MT_WORDS = 625

# ---------------------------------------------------------------------------
# Batch-occupancy counters (surfaced by `repro bench`; see also the
# obs-layer mirror in _count below)
# ---------------------------------------------------------------------------

_COUNTS = {
    "cells_batched": 0,
    "cells_fallback": 0,
    "heap_elisions": 0,
    "native_calls": 0,
    "native_unavailable": 0,
}


def batch_stats():
    """Batch-tier occupancy since process start or the last reset."""
    return dict(_COUNTS)


def reset_batch_stats():
    for key in _COUNTS:
        _COUNTS[key] = 0


def _count(name, observer=None):
    """Bump a batch counter, mirrored into the obs metrics registry
    when an observer is ambient (the counters are deterministic —
    pure functions of the cell set — so the metrics document stays
    byte-identical at any ``--jobs``)."""
    _COUNTS[name] += 1
    if observer is not None:
        observer.count(f"batch_{name}_total")


# ---------------------------------------------------------------------------
# Native queue kernel: C source
# ---------------------------------------------------------------------------

#: The compiled replay of ``workloads.memcached._queueing_run_fast``'s
#: per-request segment, with CPython's MT19937 inlined (genrand_uint32
#: and the 53-bit double conversion exactly as _randommodule.c).  The
#: sojourn total accumulates in generation order — the same left fold
#: as Python's ``sum(list)`` — and the two order statistics a
#: linear-interpolation percentile needs come from an O(n) quickselect
#: (order statistics are value-exact regardless of the selection
#: algorithm; the data is sojourn times, so no NaNs and no adversarial
#: pivot patterns).  Compiled with -ffp-contract=off so no fused
#: multiply-add changes a rounding the interpreter would have
#: performed.
_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>

#define MT_N 624
#define MT_M 397
#define MATRIX_A 0x9908b0dfU
#define UPPER_MASK 0x80000000U
#define LOWER_MASK 0x7fffffffU

static uint32_t genrand(uint32_t *mt, uint32_t *mti_io)
{
    static const uint32_t mag01[2] = {0U, MATRIX_A};
    uint32_t y;
    uint32_t mti = *mti_io;
    if (mti >= MT_N) {
        int kk;
        for (kk = 0; kk < MT_N - MT_M; kk++) {
            y = (mt[kk] & UPPER_MASK) | (mt[kk + 1] & LOWER_MASK);
            mt[kk] = mt[kk + MT_M] ^ (y >> 1) ^ mag01[y & 0x1U];
        }
        for (; kk < MT_N - 1; kk++) {
            y = (mt[kk] & UPPER_MASK) | (mt[kk + 1] & LOWER_MASK);
            mt[kk] = mt[kk + (MT_M - MT_N)] ^ (y >> 1) ^ mag01[y & 0x1U];
        }
        y = (mt[MT_N - 1] & UPPER_MASK) | (mt[0] & LOWER_MASK);
        mt[MT_N - 1] = mt[MT_M - 1] ^ (y >> 1) ^ mag01[y & 0x1U];
        mti = 0;
    }
    y = mt[mti++];
    y ^= (y >> 11);
    y ^= (y << 7) & 0x9d2c5680U;
    y ^= (y << 15) & 0xefc60000U;
    y ^= (y >> 18);
    *mti_io = mti;
    return y;
}

static double mt_random(uint32_t *mt, uint32_t *mti)
{
    uint32_t a = genrand(mt, mti) >> 5;
    uint32_t b = genrand(mt, mti) >> 6;
    return (a * 67108864.0 + b) * (1.0 / 9007199254740992.0);
}

/* Exact kth and (k+1)th smallest of a[0..n-1] (a is clobbered).
   Median-of-3 quickselect; on termination every element left of k is
   <= a[k] and every element right is >= a[k], so the (k+1)th order
   statistic is the minimum of the right part. */
static void select_two(double *a, long n, long k,
                       double *out_lo, double *out_hi)
{
    long lo = 0, hi = n - 1;
    while (lo < hi) {
        long mid = lo + (hi - lo) / 2;
        double p, t;
        long i = lo, j = hi;
        if (a[mid] < a[lo]) { t = a[mid]; a[mid] = a[lo]; a[lo] = t; }
        if (a[hi] < a[lo])  { t = a[hi];  a[hi] = a[lo];  a[lo] = t; }
        if (a[hi] < a[mid]) { t = a[hi];  a[hi] = a[mid]; a[mid] = t; }
        p = a[mid];
        while (i <= j) {
            while (a[i] < p) i++;
            while (a[j] > p) j--;
            if (i <= j) {
                t = a[i]; a[i] = a[j]; a[j] = t;
                i++; j--;
            }
        }
        if (k <= j) hi = j;
        else if (k >= i) lo = i;
        else break;  /* j < k < i: a[k] == p, in final position */
    }
    *out_lo = a[k];
    if (k + 1 < n) {
        double m = a[k + 1];
        long t;
        for (t = k + 2; t < n; t++)
            if (a[t] < m) m = a[t];
        *out_hi = m;
    } else {
        *out_hi = a[k];
    }
}

/* Replay n requests from the MT19937 state (625 words, updated in
   place).  Returns the sojourn total (generation-order left fold);
   out2[0]/out2[1] receive the kth/(k+1)th smallest sojourns for the
   caller's percentile interpolation.  Returns -1.0 on alloc failure
   (the caller falls back; sojourns are all positive so the sentinel
   is unambiguous). */
double qk_etc_run(uint32_t *state, long n, long k,
                  double lambd, double p_get, double sigma,
                  double mu_get, double mu_set, double nv_magic,
                  double *out2)
{
    uint32_t *mt = state;
    uint32_t mti = state[MT_N];
    double server0 = 0.0, server1 = 0.0, clock = 0.0, total = 0.0;
    double *sojourns;
    long i;
    sojourns = (double *)malloc((size_t)n * sizeof(double));
    if (sojourns == NULL) return -1.0;
    for (i = 0; i < n; i++) {
        double u1, u2, z, mu, service, start, fin, s;
        int is_get;
        clock += -log(1.0 - mt_random(mt, &mti)) / lambd;
        is_get = mt_random(mt, &mti) < p_get;
        mt_random(mt, &mti);  /* zipf popularity draw, index unused */
        for (;;) {
            u1 = mt_random(mt, &mti);
            u2 = 1.0 - mt_random(mt, &mti);
            z = nv_magic * (u1 - 0.5) / u2;
            if (z * z / 4.0 <= -log(u2)) break;
        }
        mu = is_get ? mu_get : mu_set;
        service = exp(mu + z * sigma);
        if (server0 <= server1) {
            start = clock > server0 ? clock : server0;
            fin = start + service;
            server0 = fin;
        } else {
            start = clock > server1 ? clock : server1;
            fin = start + service;
            server1 = fin;
        }
        s = fin - clock;
        sojourns[i] = s;
        total += s;
    }
    state[MT_N] = mti;
    select_two(sojourns, n, k, &out2[0], &out2[1]);
    free(sojourns);
    return total;
}
"""


# ---------------------------------------------------------------------------
# Native kernel build + load
# ---------------------------------------------------------------------------

#: ``None`` = not yet probed, ``False`` = unavailable, else the lib.
_native_lib = None


def _cache_dir():
    """Build-cache directory: env override, else ``.batch_cache`` at
    the repo root (gitignored), else the system temp directory."""
    # svtlint: disable=SVT001 — build-cache placement is environment
    # config by design (like REPRO_SIM_KERNEL); the compiled kernel's
    # output is self-checked bit-exact regardless of where it lives.
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return Path(override)
    import repro

    root = Path(repro.__file__).resolve().parents[2] / ".batch_cache"
    try:
        root.mkdir(parents=True, exist_ok=True)
        probe = root / ".writable"
        probe.write_text("")
        probe.unlink()
        return root
    except OSError:
        return Path(tempfile.gettempdir()) / "repro-batch-cache"


def _build_native():
    """Compile the kernel into the cache (content-hash named), atomically.

    Returns the shared-object path or ``None`` when no compiler is
    available or the build fails — every failure mode is a silent
    fallback, never an error surfaced to an experiment.
    """
    from shutil import which

    cc = which("cc") or which("gcc") or which("clang")
    if cc is None:
        return None
    digest = sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"qk_{digest}.so"
    if so_path.exists():
        return so_path
    try:
        cache.mkdir(parents=True, exist_ok=True)
        c_path = cache / f"qk_{digest}.c"
        c_path.write_text(_C_SOURCE)
        tmp_so = cache / f".qk_{digest}.{os.getpid()}.so"
        proc = subprocess.run(
            [cc, "-O2", "-std=c99", "-ffp-contract=off", "-fPIC",
             "-shared", "-o", str(tmp_so), str(c_path), "-lm"],
            capture_output=True,
        )
        if proc.returncode != 0:
            return None
        os.replace(tmp_so, so_path)  # atomic vs concurrent builders
        return so_path
    except OSError:
        return None


def _python_mirror(state, n, lambd, p_get, sigma, mu_get, mu_set,
                   nv_magic):
    """Pure-Python mirror of the C kernel, for the load-time self-check.

    Drives a ``random.Random`` restored from ``state`` through the
    exact inner loop of ``workloads.memcached._queueing_run_fast``
    (the semantic source of truth); returns ``(total, sorted sojourns,
    final state)``.
    """
    import math
    import random as _random_mod

    rng = _random_mod.Random()
    rng.setstate((3, tuple(state), None))
    random = rng.random
    log = math.log
    exp = math.exp
    server0 = 0.0
    server1 = 0.0
    clock = 0.0
    total = 0.0
    sojourns = []
    for _ in range(n):
        clock += -log(1.0 - random()) / lambd
        is_get = random() < p_get
        random()  # zipf popularity draw
        while True:
            u1 = random()
            u2 = 1.0 - random()
            z = nv_magic * (u1 - 0.5) / u2
            if z * z / 4.0 <= -log(u2):
                break
        mu = mu_get if is_get else mu_set
        service = exp(mu + z * sigma)
        if server0 <= server1:
            start = clock if clock > server0 else server0
            server0 = start + service
            sojourns.append(server0 - clock)
        else:
            start = clock if clock > server1 else server1
            server1 = start + service
            sojourns.append(server1 - clock)
        total += sojourns[-1]
    return total, sorted(sojourns), rng.getstate()[1]


def _self_check(lib):
    """Differential replays: the native kernel must reproduce the
    Python inner loop bit for bit (total, order statistics at the
    extremes and the percentile ranks the callers use, and the final
    MT19937 state) or the tier is disabled on this platform (e.g. a
    libm whose log/exp round differently from CPython's)."""
    import math
    import random as _random_mod

    seed_state = _random_mod.Random(20190613).getstate()[1]
    n = 2048
    sigma = 0.22
    params = dict(
        lambd=1.0 / (1e6 / 15.0), p_get=0.97, sigma=sigma,
        mu_get=math.log(30000.0) - sigma * sigma / 2.0,
        mu_set=math.log(52000.0) - sigma * sigma / 2.0,
        nv_magic=4 * math.exp(-0.5) / math.sqrt(2.0),
    )
    ref_total, ref_sorted, ref_state = _python_mirror(
        seed_state, n, params["lambd"], params["p_get"],
        params["sigma"], params["mu_get"], params["mu_set"],
        params["nv_magic"],
    )
    for k in (0, 1, n // 2, int((99 / 100) * (n - 1)), n - 2, n - 1):
        state = array("I", seed_state)
        out2 = array("d", bytes(16))
        total = lib.qk_etc_run(
            (ctypes.c_uint32 * _MT_WORDS).from_buffer(state),
            n, k, params["lambd"], params["p_get"], params["sigma"],
            params["mu_get"], params["mu_set"], params["nv_magic"],
            (ctypes.c_double * 2).from_buffer(out2),
        )
        if (total != ref_total
                or out2[0] != ref_sorted[k]
                or out2[1] != ref_sorted[min(k + 1, n - 1)]
                or tuple(state) != tuple(ref_state)):
            return False
    return True


def native_kernel():
    """The checked native library, or ``None`` (probe once, cache)."""
    global _native_lib
    if _native_lib is not None:
        return _native_lib or None
    # svtlint: disable=SVT001 — tier selection is environment config by
    # design, exactly like REPRO_SIM_KERNEL: pool workers inherit it,
    # and every tier produces byte-identical results by construction.
    if os.environ.get(NATIVE_ENV_VAR, "1") == "0":
        _native_lib = False
        return None
    so_path = _build_native()
    if so_path is None:
        _native_lib = False
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
    except OSError:
        _native_lib = False
        return None
    lib.qk_etc_run.restype = ctypes.c_double
    lib.qk_etc_run.argtypes = [
        ctypes.POINTER(ctypes.c_uint32), ctypes.c_long, ctypes.c_long,
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.POINTER(ctypes.c_double),
    ]
    _native_lib = lib if _self_check(lib) else False
    return _native_lib or None


def reset_native_probe():
    """Forget the probe result (tests flip the env gate around this)."""
    global _native_lib
    _native_lib = None


# ---------------------------------------------------------------------------
# Workload-facing queue replay
# ---------------------------------------------------------------------------


def percentile_sorted(ordered, pct):
    """``repro.sim.stats.percentile`` over an already-sorted sequence —
    the identical interpolation arithmetic, minus the redundant sort."""
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct} out of [0, 100]")
    n = len(ordered)
    if not n:
        raise ValueError("percentile of empty sample set")
    if n == 1:
        return ordered[0]
    rank = (pct / 100) * (n - 1)
    lo = int(rank)
    frac = rank - lo
    if not frac:
        return ordered[lo]
    return ordered[lo] * (1 - frac) + ordered[lo + 1] * frac


def queue_replay(rng, requests, lambd, p_get, sigma, mu_get, mu_set,
                 nv_magic, pct=99):
    """Native replay of the ETC queueing loop; ``None`` = use fallback.

    Transfers ``rng``'s MT19937 state into a flat ``array('I')``
    vector, runs the compiled per-request replay, pushes the advanced
    state back (so the rng sits exactly where the Python loop would
    have left it), and returns ``(sojourn_total, pct_sojourn)`` where
    the percentile uses exactly ``repro.sim.stats.percentile``'s
    linear interpolation over the two order statistics the C kernel
    selects.  Every returned double is bit-identical to the pure-Python
    fast path — guaranteed by the load-time self-check plus the
    MT19937 / libm equivalences documented on :data:`_C_SOURCE`.
    """
    lib = native_kernel()
    if lib is None or requests <= 0:
        _COUNTS["native_unavailable"] += 1
        return None
    rank = (pct / 100) * (requests - 1)
    k = int(rank)
    frac = rank - k
    version, internal, gauss = rng.getstate()
    state = array("I", internal)
    out2 = array("d", bytes(16))
    total = lib.qk_etc_run(
        (ctypes.c_uint32 * _MT_WORDS).from_buffer(state),
        requests, k, lambd, p_get, sigma, mu_get, mu_set, nv_magic,
        (ctypes.c_double * 2).from_buffer(out2),
    )
    if total == -1.0:  # alloc failure inside the kernel: state untouched
        _COUNTS["native_unavailable"] += 1
        return None
    rng.setstate((version, tuple(state), gauss))
    _COUNTS["native_calls"] += 1
    if not frac:
        return total, out2[0]
    return total, out2[0] * (1 - frac) + out2[1] * frac


# ---------------------------------------------------------------------------
# Machine-level flat cell replay
# ---------------------------------------------------------------------------


def _flat_plan(machine, program, level):
    """The compiled single-segment plan, iff the cell is provably
    event-free for its whole span (the eligibility proof in the module
    docstring); ``None`` demands the per-cell fallback path."""
    from repro.sim import kernel as simkernel

    if (machine.kernel != simkernel.BATCH or machine.obs is not None
            or machine.tracer.keep_events):
        return None
    if (segments.batchable_dynamic(program)
            < segments.COMPILE_MIN_INSTRUCTIONS):
        return None
    plan = segments.compile_program(program, machine.mode, level,
                                    machine.costs)
    if plan.single is None:
        return None
    if machine.has_pending_io or machine.interrupts.has_pending(0):
        return None
    remaining = plan.single.total * program.repeat
    next_due = machine.sim.peek_next_time()
    if next_due is not None and next_due - machine.sim.now < remaining:
        return None
    return plan


def replay_cells(cells, level=2):
    """Replay many independent (machine, program) cells in one loop.

    Returns one :class:`~repro.core.system.RunResult` per cell, in
    order, with every machine left in exactly the state its own
    ``run_program(program, level)`` call would have produced — the
    property the hypothesis suite (`tests/sim/test_batch.py`) holds
    this function to, interrupt/fault boundaries included.

    Eligible cells (see :func:`_flat_plan`) collapse to flat
    ``array('q')`` vectors of charge spans and retired counts applied
    in one tight loop; everything else takes the ordinary per-cell
    path.  Cells are independent by the experiment contract, so the
    two populations never interact and any interleaving is sound.
    """
    from repro.core.system import RunResult
    from repro.obs.observer import ambient as obs_ambient

    observer = obs_ambient()
    cells = list(cells)
    results = [None] * len(cells)
    flat_index = array("q")
    flat_machines = []
    flat_charges = array("q")
    flat_counts = array("q")
    for i, (machine, program) in enumerate(cells):
        plan = _flat_plan(machine, program, level)
        if plan is None:
            _count("cells_fallback", observer)
            results[i] = machine.run_program(program, level)
            continue
        _count("cells_batched", observer)
        if machine.sim.peek_next_time() is None:
            # Empty heap: the cross-cell event-heap elimination case —
            # this cell provably never interleaves with anything.
            _count("heap_elisions", observer)
        flat_index.append(i)
        flat_machines.append(machine)
        flat_charges.append(plan.single.total * program.repeat)
        flat_counts.append(plan.count * program.repeat)
    for pos, machine in enumerate(flat_machines):
        ns = flat_charges[pos]
        start = machine.sim.now
        if ns:
            # The same two calls Machine._charge makes — one whole-span
            # charge, exactly what _replay_segment does when the next
            # deadline clears the span (eligibility guaranteed it).
            machine.sim.charge(ns)
            machine.tracer.record(Category.GUEST_WORK, ns)
        machine.instructions_retired += flat_counts[pos]
        results[flat_index[pos]] = RunResult(
            elapsed_ns=ns,
            instructions=flat_counts[pos],
            exits=0,
            start_ns=start,
            end_ns=start + ns,
        )
    return results
