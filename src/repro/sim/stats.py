"""Statistics helpers implementing the paper's measurement methodology.

Paper §6.1: *"The loop is repeated until standard deviation and timing
overheads are below 1% of the mean with 2σ confidence, after ignoring
outliers with 4σ confidence."*  :func:`remove_outliers` and
:func:`repeat_until_stable` implement exactly that protocol so benchmark
code reads like the paper's description.
"""

import math
from dataclasses import dataclass


def mean(samples):
    """Arithmetic mean; raises on an empty sequence."""
    samples = list(samples)
    if not samples:
        raise ValueError("mean of empty sample set")
    return sum(samples) / len(samples)


def stddev(samples):
    """Population standard deviation (0.0 for a single sample)."""
    samples = list(samples)
    if not samples:
        raise ValueError("stddev of empty sample set")
    if len(samples) == 1:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((x - mu) ** 2 for x in samples) / len(samples))


def percentile(samples, pct):
    """Linear-interpolation percentile (same convention as numpy's
    default), ``pct`` in [0, 100]."""
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct} out of [0, 100]")
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("percentile of empty sample set")
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def remove_outliers(samples, sigma=4.0):
    """Drop samples farther than ``sigma`` standard deviations from the
    mean (the paper's 4σ outlier rejection).  Returns a new list; if every
    sample would be rejected the original list is returned unchanged."""
    samples = list(samples)
    if len(samples) < 3:
        return samples
    mu = mean(samples)
    sd = stddev(samples)
    if sd == 0:
        return samples
    kept = [x for x in samples if abs(x - mu) <= sigma * sd]
    return kept if kept else samples


@dataclass(frozen=True)
class Summary:
    """Summary statistics for a sample set."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p99: float

    def rel_std(self):
        """Standard deviation as a fraction of the mean (0 if mean==0)."""
        return self.std / self.mean if self.mean else 0.0


def summarize(samples, outlier_sigma=None):
    """Build a :class:`Summary`, optionally rejecting outliers first."""
    samples = list(samples)
    if outlier_sigma is not None:
        samples = remove_outliers(samples, outlier_sigma)
    return Summary(
        count=len(samples),
        mean=mean(samples),
        std=stddev(samples),
        minimum=min(samples),
        maximum=max(samples),
        p50=percentile(samples, 50),
        p99=percentile(samples, 99),
    )


def repeat_until_stable(sample_fn, rel_tol=0.01, confidence_sigma=2.0,
                        outlier_sigma=4.0, min_samples=8, max_samples=512):
    """Repeat ``sample_fn()`` until the 2σ confidence half-width of the
    mean drops below ``rel_tol`` of the mean (paper §6.1 protocol).

    Returns the :class:`Summary` of the accepted samples.  Determinism is
    the caller's business — ``sample_fn`` should consume a seeded RNG.
    """
    samples = []
    while len(samples) < max_samples:
        samples.append(sample_fn())
        if len(samples) < min_samples:
            continue
        kept = remove_outliers(samples, outlier_sigma)
        mu = mean(kept)
        if mu == 0:
            return summarize(kept)
        half_width = confidence_sigma * stddev(kept) / math.sqrt(len(kept))
        if half_width / abs(mu) <= rel_tol:
            return summarize(kept)
    return summarize(remove_outliers(samples, outlier_sigma))
