"""Command-line interface: reproduce any paper experiment directly.

Every experiment comes from the registry (``repro.exp``), so ``all``,
``list``, the JSON output and the cache cover exactly the registered
set — nothing can be silently dropped.

::

    python -m repro list              # every registered experiment
    python -m repro table1            # Table 1 breakdown
    python -m repro fig6              # cpuid bars
    python -m repro fig8 --seed 11    # memcached sweep
    python -m repro fig7 --json       # structured result on stdout
    python -m repro all --jobs 4      # everything, fanned out over 4 procs
    python -m repro all --json --jobs 4 --no-cache
    python -m repro smoke             # runtime baseline -> results/
    python -m repro lint              # svtlint invariant checker
    python -m repro run cpuid --mode baseline --trace out.json
    python -m repro run cpuid --profile        # cProfile a single cell
    python -m repro table1 --metrics metrics.json
    python -m repro bench --smoke     # perf harness -> BENCH_sim.json
    python -m repro table1 --cost-model arm-flavour
    python -m repro dse --smoke       # replay-based design-space sweep

Results are cached under ``results/cache/`` keyed by (experiment,
params, cost-model fingerprint, code version); ``--no-cache`` forces
recomputation, and any edit to the simulator or cost model invalidates
automatically.
"""

import argparse
import sys
from pathlib import Path

from repro.cpu import costmodels
from repro.exp import registry, runner
from repro.exp.cache import ResultCache, default_cache_dir
from repro.exp.result import canonical_json


def build_parser():
    registry.ensure_loaded()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Using SMT to Accelerate "
                    "Nested Virtualization' (ISCA'19)",
    )
    parser.add_argument("experiment",
                        choices=registry.names() + ["all", "list",
                                                    "smoke", "lint"],
                        help="which table/figure to regenerate, 'all' "
                             "for every registered experiment, 'list' "
                             "to enumerate them, 'smoke' for a fast "
                             "runtime baseline, 'lint' for the svtlint "
                             "invariant checker")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload RNG seed (default 7)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="microbenchmark iterations (default: "
                             "per-experiment)")
    parser.add_argument("--depth", type=int, default=None,
                        help="max nesting depth for 'deep' (default 5)")
    parser.add_argument("--cost-model", default=None, metavar="NAME",
                        choices=costmodels.model_names(),
                        help="price every simulation under a registered "
                             "cost model (default xeon-paper; see "
                             f"{', '.join(costmodels.model_names())})")
    parser.add_argument("--json", action="store_true",
                        help="emit structured results as canonical JSON")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="fan independent cells out over N worker "
                             "processes (default 1; output is "
                             "byte-identical at any N)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and don't write the result cache")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="result cache location (default "
                             "results/cache/)")
    parser.add_argument("--out", type=Path, default=None,
                        help="for 'smoke': output path (default "
                             "results/runtime_smoke.json)")
    parser.add_argument("--metrics", type=Path, default=None,
                        metavar="PATH",
                        help="capture per-cell observability metrics and "
                             "write the merged repro-metrics/1 document "
                             "to PATH (disables the result cache for "
                             "this invocation)")
    return parser


def _cmd_list():
    from repro.analysis.report import format_table

    rows = [
        (experiment.name, experiment.title, experiment.description)
        for experiment in registry.experiments()
    ]
    print(format_table(["Name", "Title", "Description"], rows,
                       title="Registered experiments"))
    return 0


def _cmd_smoke(args):
    doc = runner.runtime_smoke(jobs=args.jobs if args.jobs > 1 else 4)
    out = args.out or default_cache_dir().parent / "runtime_smoke.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(canonical_json(doc))
    totals = doc["totals"]
    print(f"runtime smoke: serial {totals['serial_wall_s']:.2f}s, "
          f"--jobs {doc['jobs']} {totals['parallel_wall_s']:.2f}s "
          f"({totals['speedup']:.2f}x) -> {out}")
    return 0


def _cmd_run(argv):
    """``repro run``: one traced workload on one machine.

    Unlike the experiment path (statistics over many cells), this drives
    a single :class:`~repro.core.system.Machine` with a live observer
    and exports the raw telemetry: a Chrome ``trace_event`` file
    (``--trace``, loadable in Perfetto), a flat metrics dump
    (``--metrics``), and the Table-1 part breakdown recovered *from the
    trace itself* — the cross-check that charge spans partition the
    simulated time exactly as the tracer accounts it.
    """
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="Run one workload with observability on and export "
                    "trace/metrics artifacts",
    )
    parser.add_argument("workload", choices=["cpuid"],
                        help="workload to run (cpuid: the Table 1 / "
                             "Fig. 6 microbenchmark)")
    parser.add_argument("--mode", default="baseline",
                        choices=["baseline", "sw_svt", "hw_svt"],
                        help="execution mode (default baseline)")
    parser.add_argument("--level", type=int, default=2,
                        choices=[0, 1, 2],
                        help="virtualization level to run at (default 2)")
    parser.add_argument("--iterations", type=int, default=50,
                        help="measured iterations (default 50; one "
                             "warm-up iteration is added)")
    parser.add_argument("--cost-model", default=None, metavar="NAME",
                        choices=costmodels.model_names(),
                        help="price the run under a registered cost "
                             "model (default xeon-paper)")
    parser.add_argument("--trace", type=Path, default=None,
                        metavar="PATH",
                        help="write a Chrome trace_event JSON to PATH")
    parser.add_argument("--metrics", type=Path, default=None,
                        metavar="PATH",
                        help="write a repro-metrics/1 JSON dump to PATH")
    parser.add_argument("--no-breakdown", action="store_true",
                        help="skip the per-part breakdown table")
    parser.add_argument("--profile", action="store_true",
                        help="run the cell under cProfile and print the "
                             "top cumulative-time functions (perf PRs "
                             "start from this data)")
    parser.add_argument("--profile-top", type=int, default=20,
                        metavar="N",
                        help="rows of the cProfile report (default 20)")
    parser.add_argument("--profile-out", type=Path, default=None,
                        metavar="PATH",
                        help="also dump raw pstats data to PATH "
                             "(inspect with `python -m pstats`)")
    args = parser.parse_args(argv)

    from repro.core.mode import ExecutionMode
    from repro.core.system import Machine
    from repro.cpu import isa
    from repro.obs import (
        Observer,
        render_breakdown,
        trace_breakdown,
        write_chrome_trace,
        write_metrics,
    )

    mode = ExecutionMode.validate(args.mode)
    observer = Observer()
    machine = Machine(mode=mode, observer=observer,
                      costs=args.cost_model)
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    # One warm-up iteration, same protocol as repro.workloads.cpuid
    # (the first HW SVt resume differs slightly); it is traced too, and
    # the per-op breakdown divides by iterations + 1.
    machine.run_program(isa.Program([isa.cpuid()], repeat=1),
                        level=args.level)
    result = machine.run_program(
        isa.Program([isa.cpuid()], repeat=args.iterations),
        level=args.level,
    )
    if profiler is not None:
        import pstats

        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(args.profile_top)
        if args.profile_out is not None:
            args.profile_out.parent.mkdir(parents=True, exist_ok=True)
            profiler.dump_stats(args.profile_out)
            print(f"pstats dump -> {args.profile_out}")
    operations = args.iterations + 1
    print(f"cpuid mode={mode} L{args.level}: "
          f"{result.ns_per_instruction:.1f} ns/op "
          f"({args.iterations} iterations + 1 warm-up)")

    if args.trace is not None:
        doc = write_chrome_trace(args.trace, observer,
                                 process_name=f"repro-cpuid-{mode}")
        print(f"trace: {len(doc['traceEvents'])} events -> {args.trace}")
    if args.metrics is not None:
        write_metrics(
            args.metrics, [observer.metrics_snapshot()],
            meta={"workload": "cpuid", "mode": str(mode),
                  "level": args.level, "iterations": args.iterations},
        )
        print(f"metrics -> {args.metrics}")
    if not args.no_breakdown:
        rows = trace_breakdown(observer, operations=operations)
        print(render_breakdown(
            rows, title=f"Per-op breakdown from trace ({mode}, "
                        f"L{args.level})"))
    return 0


def _cmd_chaos(argv):
    """``repro chaos``: the fault-injection resilience matrix.

    A thin front-end over the registered ``chaos`` experiment with the
    chaos-specific flag namespace (``--rates``) and an artifact path:
    ``--out`` writes the canonical-JSON result document (the CI
    chaos-smoke job uploads it).  Output is byte-identical at any
    ``--jobs`` — every fault decision derives from ``--seed`` through
    per-site rng streams, never from scheduling.
    """
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Sweep fault rates across execution modes and "
                    "report the resilience matrix "
                    "(injected/recovered/degraded/deadlocked)",
    )
    parser.add_argument("--seed", type=int, default=2019,
                        help="fault-plan seed (default 2019)")
    parser.add_argument("--rates", default=None,
                        help="comma-separated per-event fault rates "
                             "(default '0.0,0.02,0.1,0.3')")
    parser.add_argument("--iterations", type=int, default=None,
                        help="nested cpuid iterations per cell "
                             "(default 30)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1; output is "
                             "byte-identical at any N)")
    parser.add_argument("--smoke", action="store_true",
                        help="fast parameters (CI chaos-smoke job)")
    parser.add_argument("--json", action="store_true",
                        help="emit the result document on stdout")
    parser.add_argument("--out", type=Path, default=None, metavar="PATH",
                        help="write the canonical-JSON resilience "
                             "matrix to PATH")
    args = parser.parse_args(argv)

    registry.ensure_loaded()
    overrides = {"seed": args.seed, "rates": args.rates,
                 "iterations": args.iterations}
    report = runner.run_experiments(["chaos"], overrides=overrides,
                                    jobs=args.jobs, cache=None,
                                    smoke=args.smoke)
    run = report.runs[0]
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(run.result.to_json())
        print(f"resilience matrix -> {args.out}", file=sys.stderr)
    if args.json:
        sys.stdout.write(report.to_json())
        return 0

    from repro.analysis.report import render_result

    print(render_result(run.result))
    unresolved = run.result.scalars_dict.get("unresolved_total", 0)
    if unresolved:
        print(f"chaos: {unresolved} injected fault(s) neither recovered "
              "nor accounted as degraded/deadlocked", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(argv):
    """``repro bench``: the wall-clock perf-regression harness.

    Times registered experiments under the segment, batch and legacy
    kernels (min-of-N wall clock, events/sec, instructions/sec, memo
    and batch-tier traffic), writes the ``repro-bench/2`` document to
    ``BENCH_sim.json`` at the repo root, and compares against a
    committed baseline; ``--check`` turns a regression beyond
    ``--threshold`` — or a violation of the absolute batch-kernel
    speedup floors, in either the fresh document or the committed
    baseline — into a nonzero exit (the CI bench-smoke gate).
    """
    import json

    from repro.exp import bench
    from repro.sim import kernel as simkernel

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time registered experiments under the segment, "
                    "batch and legacy simulation kernels and track "
                    "the perf trajectory in BENCH_sim.json",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="smoke parameters only (CI bench-smoke "
                             "job; default: smoke and full sections)")
    parser.add_argument("--full", action="store_true",
                        help="full parameters only")
    parser.add_argument("--experiments", default=None, metavar="A,B,C",
                        help="comma-separated subset (default: all "
                             "registered experiments)")
    parser.add_argument("--repeats", type=int, default=3, metavar="N",
                        help="timed repetitions per experiment; the "
                             "minimum is reported (default 3)")
    parser.add_argument("--no-legacy", action="store_true",
                        help="skip the legacy-kernel timing (no "
                             "speedup column; faster run)")
    parser.add_argument("--kernel", action="append", default=None,
                        choices=simkernel.KERNELS, metavar="KERNEL",
                        help="time only this kernel (repeatable; "
                             "default: segment, batch and legacy)")
    parser.add_argument("--cost-model", default=None, metavar="NAME",
                        choices=costmodels.model_names(),
                        help="time the experiments under a registered "
                             "cost model (default xeon-paper; also "
                             "exercises model-id cache keys in CI)")
    parser.add_argument("--out", type=Path, default=None, metavar="PATH",
                        help="output document (default BENCH_sim.json "
                             "at the repo root)")
    parser.add_argument("--baseline", type=Path, default=None,
                        metavar="PATH",
                        help="baseline to compare against (default: "
                             "the committed BENCH_sim.json)")
    parser.add_argument("--threshold", type=float,
                        default=bench.DEFAULT_THRESHOLD,
                        help="regression threshold as a fraction "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when any experiment regresses "
                             "beyond the threshold")
    parser.add_argument("--json", action="store_true",
                        help="emit the document on stdout")
    args = parser.parse_args(argv)

    if args.smoke and args.full:
        sections = ("smoke", "full")
    elif args.smoke:
        sections = ("smoke",)
    elif args.full:
        sections = ("full",)
    else:
        sections = ("smoke", "full")
    names = (args.experiments.split(",") if args.experiments else None)

    baseline_path = args.baseline or bench.default_bench_path()
    baseline = None
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError):
        pass

    doc = bench.bench_document(names=names, sections=sections,
                               repeats=args.repeats,
                               kernels=args.kernel,
                               legacy=not args.no_legacy,
                               overrides={
                                   "cost_model": args.cost_model,
                               })

    out = args.out or bench.default_bench_path()
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(canonical_json(doc))

    if args.json:
        sys.stdout.write(canonical_json(doc))
    else:
        print(bench.render(doc))
        print(f"bench -> {out}")

    failed = False
    # Absolute speedup floors: enforced on the fresh document and on
    # the committed baseline (the full-parameter section lives in the
    # baseline for CI smoke runs that only re-time the smoke section).
    floor_docs = [("current", doc)]
    if baseline is not None:
        floor_docs.append(("baseline", baseline))
    for origin, floor_doc in floor_docs:
        for violation in bench.check_floors(floor_doc):
            failed = True
            print(f"FLOOR [{violation['section']}] "
                  f"{violation['experiment']} ({origin}): "
                  f"{violation['bar']} {violation['ratio']:.2f}x "
                  f"< {violation['floor']:.1f}x floor "
                  f"({violation['reference_wall_s']:.4f}s vs "
                  f"{violation['wall_s']:.4f}s)", file=sys.stderr)

    if baseline is not None:
        regressions = bench.compare(doc, baseline,
                                    threshold=args.threshold)
        for reg in regressions:
            print(f"REGRESSION [{reg['section']}] {reg['experiment']} "
                  f"({reg.get('kernel', 'segment')}): "
                  f"{reg['wall_s']:.4f}s vs baseline "
                  f"{reg['baseline_wall_s']:.4f}s "
                  f"({reg['ratio']:.2f}x, threshold "
                  f"{1 + args.threshold:.2f}x)", file=sys.stderr)
        if regressions:
            failed = True
        else:
            print(f"no regressions vs {baseline_path} "
                  f"(threshold {args.threshold:.0%})", file=sys.stderr)
    elif args.check:
        print(f"bench --check: no baseline at {baseline_path}; "
              "nothing to compare", file=sys.stderr)
    if failed and args.check:
        return 1
    return 0


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # Dispatch before parsing: lint has its own flag namespace
        # (--format, --rules, paths) that the experiment parser must
        # not see.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["run"]:
        # Same pre-parse dispatch: 'run' drives one machine directly
        # and has its own flags (--mode, --trace, ...).
        return _cmd_run(argv[1:])
    if argv[:1] == ["chaos"]:
        # Same pattern: chaos adds --rates/--out on top of the
        # registered experiment.
        return _cmd_chaos(argv[1:])
    if argv[:1] == ["bench"]:
        # Same pattern: the perf harness has its own flag namespace.
        return _cmd_bench(argv[1:])
    if argv[:1] == ["fuzz"]:
        # Same pattern: the differential fuzz campaign has its own
        # flag namespace (--seed/--runs/--shrink/--corpus/...).
        from repro.fuzz.cli import main as fuzz_main

        return fuzz_main(argv[1:])
    if argv[:1] == ["dse"]:
        # Same pattern: the design-space driver sweeps cost-model
        # parameters via trace replay (repro.exp.dse).
        from repro.exp.dse import main as dse_main

        return dse_main(argv[1:])
    if argv[:1] == ["serve"]:
        # Same pattern: the long-lived experiment service
        # (repro.serve) has its own flag namespace.
        from repro.serve.cli import main_serve

        return main_serve(argv[1:])
    if argv[:1] == ["loadtest"]:
        # Same pattern: the deterministic serve-tier load test and
        # BENCH_serve.json regression gate.
        from repro.serve.cli import main_loadtest

        return main_loadtest(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        return _cmd_list()
    if args.experiment == "smoke":
        return _cmd_smoke(args)

    names = (registry.names() if args.experiment == "all"
             else [args.experiment])
    overrides = {"seed": args.seed, "iterations": args.iterations,
                 "depth": args.depth, "cost_model": args.cost_model}
    collect_metrics = args.metrics is not None
    # Cached results carry no metrics; force recomputation when asked
    # for a metrics dump so every cell actually runs under capture.
    cache = (None if args.no_cache or collect_metrics
             else ResultCache(args.cache_dir))
    report = runner.run_experiments(names, overrides=overrides,
                                    jobs=args.jobs, cache=cache,
                                    collect_metrics=collect_metrics)

    if collect_metrics:
        args.metrics.parent.mkdir(parents=True, exist_ok=True)
        args.metrics.write_text(canonical_json(report.metrics_document()))
        print(f"metrics -> {args.metrics}", file=sys.stderr)
    if cache is not None:
        print(f"cache: served {len(report.served)}, "
              f"computed {len(report.computed)} "
              f"({cache.root})", file=sys.stderr)
    # Runtime-sanitizer verdict (REPRO_SIM_SANITIZE=1 runs only): the
    # reports ride on stderr and flip the exit code, never the result
    # document — byte-identity with the flag off is the contract.
    exit_code = 0
    from repro.sim import sanitizer as sim_sanitizer

    if sim_sanitizer.enabled():
        for line in report.sanitizer_reports:
            print(line, file=sys.stderr)
        if report.sanitizer_reports:
            print(f"sanitizer: {len(report.sanitizer_reports)} "
                  "conflicting unordered access(es)", file=sys.stderr)
            exit_code = 1
        else:
            print("sanitizer: no conflicting unordered accesses",
                  file=sys.stderr)
    if args.json:
        sys.stdout.write(report.to_json())
        return exit_code

    from repro.analysis.report import render_result

    for run in report.runs:
        if args.experiment == "all":
            cached = " (cached)" if run.cached else ""
            print(f"\n=== {run.name}{cached} "
                  + "=" * max(1, 68 - len(run.name) - len(cached)))
        print(render_result(run.result))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
