"""Command-line interface: reproduce any paper experiment directly.

::

    python -m repro table1            # Table 1 breakdown
    python -m repro fig6              # cpuid bars
    python -m repro fig7              # all six I/O rows
    python -m repro fig8 --seed 11    # memcached sweep
    python -m repro fig9
    python -m repro fig10
    python -m repro sec61             # channel microbenchmarks
    python -m repro deep              # deep-nesting extension
    python -m repro coexist           # SVt/SMT coexistence extension
    python -m repro all               # everything
"""

import argparse
import sys

from repro.analysis.report import format_table
from repro.core.mode import ExecutionMode


def _cmd_table1(args):
    from repro.workloads import cpuid

    rows = cpuid.table1_breakdown(iterations=args.iterations)
    print(format_table(
        ["Part", "Time (us)", "Perc. (%)"],
        [(label, f"{us:.2f}", f"{pct:.2f}") for label, us, pct in rows],
        title="Table 1: nested cpuid breakdown (baseline, "
              "paper total 10.40 us)",
    ))


def _cmd_table3(args):
    from repro.analysis.loc import PAPER, audit

    ours = audit()
    rows = [
        (role, f"+{added}/-{removed}", f"{ours[role]} LoC")
        for role, (added, removed) in PAPER.items()
    ]
    print(format_table(["Codebase", "Paper", "This repo"], rows,
                       title="Table 3: prototype footprint"))


def _cmd_table4(args):
    from repro.config import paper_machine

    print(format_table(["Level", "Description"],
                       paper_machine().describe(),
                       title="Table 4: machine parameters"))


def _cmd_fig6(args):
    from repro.analysis.figures import bar_chart
    from repro.workloads import cpuid

    bars = cpuid.figure6(iterations=args.iterations)
    print(bar_chart(
        [(label, round(us, 2)) for label, us in bars.items()],
        unit=" us",
        title="Figure 6: cpuid execution time "
              "(paper: SW 1.23x, HW 1.94x)",
    ))


def _cmd_fig7(args):
    from repro.workloads import disk, netperf

    modes = ExecutionMode.ALL
    rows = []

    def add(label, values, higher, paper):
        base = values[ExecutionMode.BASELINE]
        if higher:
            sw = values[ExecutionMode.SW_SVT] / base
            hw = values[ExecutionMode.HW_SVT] / base
        else:
            sw = base / values[ExecutionMode.SW_SVT]
            hw = base / values[ExecutionMode.HW_SVT]
        rows.append((label, f"{base:.0f}", f"{sw:.2f}x", f"{hw:.2f}x",
                     paper))

    add("Network latency (us)",
        {m: netperf.run_latency(m, operations=12) for m in modes},
        False, "163 / 1.10 / 2.38")
    add("Network bandwidth (Mbps)",
        {m: netperf.run_bandwidth(m) for m in modes},
        True, "9387 / 1.00 / 1.12")
    add("Disk randrd latency (us)",
        {m: disk.run_latency(m, write=False, operations=10)
         for m in modes},
        False, "126 / 1.30 / 2.18")
    add("Disk randwr latency (us)",
        {m: disk.run_latency(m, write=True, operations=10)
         for m in modes},
        False, "179 / 1.05 / 2.26")
    add("Disk randrd bandwidth (KB/s)",
        {m: disk.run_bandwidth(m, write=False) for m in modes},
        True, "87136 / 1.55 / 2.31")
    add("Disk randwr bandwidth (KB/s)",
        {m: disk.run_bandwidth(m, write=True) for m in modes},
        True, "55769 / 1.18 / 2.60")

    print(format_table(
        ["Metric", "Baseline", "SW SVt", "HW SVt", "Paper"],
        rows, title="Figure 7: I/O subsystems",
    ))


def _cmd_fig8(args):
    from repro.analysis.figures import line_plot
    from repro.workloads import memcached

    baseline = memcached.run(ExecutionMode.BASELINE, seed=args.seed)
    svt = memcached.run(ExecutionMode.SW_SVT, seed=args.seed)
    print(format_table(
        ["kQPS", "base avg", "base p99", "SVt avg", "SVt p99"],
        [
            (f"{b.offered_kqps:.1f}", f"{b.avg_us:.0f}",
             f"{b.p99_us:.0f}", f"{s.avg_us:.0f}", f"{s.p99_us:.0f}")
            for b, s in zip(baseline.points, svt.points)
        ],
        title="Figure 8: memcached latency (us) vs load, SLA 500 us",
    ))
    print()
    print(line_plot(
        {
            "baseline p99": [(p.offered_kqps, p.p99_us)
                             for p in baseline.points],
            "SVt p99": [(p.offered_kqps, p.p99_us)
                        for p in svt.points],
        },
        y_ceiling=1000, x_label="kQPS", y_label=" us",
        title="p99 latency vs offered load (clamped at 1000 us)",
    ))
    p99, avg = memcached.headline_improvements(baseline, svt)
    print(f"p99 within SLA: {p99:.2f}x (paper 2.20x); avg: {avg:.2f}x "
          "(paper 1.43x)")


def _cmd_fig9(args):
    from repro.workloads import tpcc

    base = tpcc.run(ExecutionMode.BASELINE)
    svt = tpcc.run(ExecutionMode.SW_SVT)
    print(format_table(
        ["System", "ktpm", "Speedup"],
        [("Baseline", f"{base.ktpm:.2f}", "1.00x"),
         ("SVt", f"{svt.ktpm:.2f}", f"{svt.ktpm / base.ktpm:.2f}x")],
        title="Figure 9: TPC-C (paper: 6.37 ktpm, 1.18x)",
    ))


def _cmd_fig10(args):
    from repro.workloads import video

    grid = video.figure10(seed=args.seed)
    print(format_table(
        ["Rate", "Baseline drops", "SVt drops", "Paper (base/SVt)"],
        [
            (f"{fps} FPS",
             str(grid[fps][ExecutionMode.BASELINE].dropped),
             str(grid[fps][ExecutionMode.SW_SVT].dropped),
             f"{video.PAPER[fps]['baseline']}/{video.PAPER[fps]['svt']}")
            for fps in (24, 60, 120)
        ],
        title="Figure 10: dropped frames over 5 min",
    ))


def _cmd_sec61(args):
    from repro.workloads import channels

    sweep = channels.sweep()
    print("Sec. 6.1 observations:")
    for name, holds in sweep.observations.items():
        print(f"  {name:<28s} {'OK' if holds else 'FAIL'}")
    baseline_us, impacts = channels.cpuid_with_mechanisms()
    print(f"\nnested cpuid, baseline {baseline_us:.2f} us:")
    for impact in impacts:
        print(f"  {impact.mechanism:<8s} {impact.cpuid_us:6.2f} us "
              f"({impact.speedup_vs_baseline:.2f}x)")


def _cmd_deep(args):
    from repro.virt.deep import DeepNestingModel

    model = DeepNestingModel()
    print(format_table(
        ["Trap from", "baseline (us)", "SVt (us)", "speedup"],
        [
            (f"L{d}", f"{b:.2f}", f"{s:.2f}", f"{x:.2f}x")
            for d, b, s, x in model.table(max_depth=args.depth)
        ],
        title="Deep nesting extension (aux/reflection = 2)",
    ))


def _cmd_coexist(args):
    from repro.core.coexist import CoexistConfig, crossover_trap_rate

    config = CoexistConfig()
    print(f"SVt overtakes SMT above {crossover_trap_rate(config):,.0f} "
          f"nested traps/s (SMT yield {config.smt_yield:.2f}x)")


def _cmd_l3(args):
    from repro.core.system import Machine
    from repro.cpu import isa
    from repro.virt.hypervisor import MSR_TSC_DEADLINE
    from repro.virt.l3 import install_third_level

    rows = []
    for mode in ExecutionMode.ALL:
        stack = install_third_level(Machine(mode=mode))
        cpuid_ns, _ = stack.run_program(
            isa.Program([isa.cpuid()], repeat=4))
        timer_ns, _ = stack.run_program(
            isa.Program([isa.wrmsr(MSR_TSC_DEADLINE, 10**9)], repeat=4))
        rows.append((mode, f"{cpuid_ns / 4000:.2f}",
                     f"{timer_ns / 4000:.2f}"))
    print(format_table(
        ["Mode", "L3 cpuid (us)", "L3 timer write (us)"],
        rows,
        title="Functional third level (privileged L2 ops recurse as "
              "depth-2 exits)",
    ))


def _cmd_related(args):
    from repro.core.related_work import speedup_table

    print(format_table(
        ["Technique", "op (us)", "Speedup", "Caveats"],
        [(name, f"{us:.1f}", f"{speedup:.2f}x", caveats)
         for name, us, speedup, caveats in speedup_table()],
        title="Sec. 7 alternatives on one nested I/O operation",
    ))


_COMMANDS = {
    "table1": _cmd_table1,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "sec61": _cmd_sec61,
    "deep": _cmd_deep,
    "l3": _cmd_l3,
    "coexist": _cmd_coexist,
    "related": _cmd_related,
}


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce experiments from 'Using SMT to Accelerate "
                    "Nested Virtualization' (ISCA'19)",
    )
    parser.add_argument("experiment",
                        choices=sorted(_COMMANDS) + ["all"],
                        help="which table/figure to regenerate")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload RNG seed (default 7)")
    parser.add_argument("--iterations", type=int, default=50,
                        help="microbenchmark iterations (default 50)")
    parser.add_argument("--depth", type=int, default=5,
                        help="max nesting depth for 'deep' (default 5)")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        for name in ("table1", "table4", "fig6", "fig7", "fig8", "fig9",
                     "fig10", "sec61", "deep", "coexist"):
            print(f"\n=== {name} " + "=" * (70 - len(name)))
            _COMMANDS[name](args)
        return 0
    _COMMANDS[args.experiment](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
