"""Machine and VM topology configuration (paper Table 4).

The paper's testbed::

    L0   2x Intel E5-2630v3 (2.4 GHz, 8 cores, 2-SMT),
         2x64 GB RAM, Intel X540-AT2 (10 Gb)
    L1   6 vCPUs (1 reserved), 50 GB RAM,
         virtio-net-pci+vhost, virtio disk @ ramfs
    L2   3 vCPUs (1 reserved), 35 GB RAM,
         virtio-net-pci+vhost, virtio disk @ ramfs

:func:`paper_machine` reconstructs exactly this configuration; the classes
are general so tests and ablations can build other shapes.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class HostConfig:
    """Physical host parameters (paper Table 4, row L0)."""

    sockets: int = 2
    cores_per_socket: int = 8
    smt_per_core: int = 2
    freq_ghz: float = 2.4
    ram_gb: int = 128
    nic_model: str = "Intel X540-AT2"
    nic_gbps: float = 10.0
    cpu_model: str = "Intel E5-2630v3"

    def __post_init__(self):
        if self.sockets < 1 or self.cores_per_socket < 1:
            raise ConfigError("host needs at least one socket and core")
        if self.smt_per_core < 1:
            raise ConfigError("smt_per_core must be >= 1")
        if self.freq_ghz <= 0 or self.nic_gbps <= 0:
            raise ConfigError("frequencies and link rates must be positive")

    @property
    def total_cores(self):
        return self.sockets * self.cores_per_socket

    @property
    def total_hw_threads(self):
        return self.total_cores * self.smt_per_core

    @property
    def numa_nodes(self):
        return self.sockets

    def cycles_to_ns(self, cycles):
        """Convert core cycles to nanoseconds at the configured frequency."""
        return cycles / self.freq_ghz


@dataclass(frozen=True)
class VMConfig:
    """One virtualization level's VM shape (paper Table 4, rows L1/L2)."""

    level: int
    vcpus: int
    reserved_vcpus: int = 0
    ram_gb: int = 0
    net_device: str = "virtio-net-pci+vhost"
    disk_device: str = "virtio disk @ ramfs"

    def __post_init__(self):
        if self.level < 1:
            raise ConfigError("VM levels start at 1 (L0 is the host)")
        if self.vcpus < 1:
            raise ConfigError("a VM needs at least one vCPU")
        if not 0 <= self.reserved_vcpus < self.vcpus:
            raise ConfigError(
                "reserved vCPUs must leave at least one usable vCPU"
            )

    @property
    def usable_vcpus(self):
        """vCPUs available to experiments (paper reserves one per level
        for system processes moved there via cgroups)."""
        return self.vcpus - self.reserved_vcpus


@dataclass(frozen=True)
class MachineConfig:
    """Full nested-virtualization stack configuration."""

    host: HostConfig = field(default_factory=HostConfig)
    vms: tuple = ()

    def __post_init__(self):
        levels = [vm.level for vm in self.vms]
        if levels != sorted(levels) or len(set(levels)) != len(levels):
            raise ConfigError("VM levels must be strictly increasing")
        if levels and levels != list(range(1, len(levels) + 1)):
            raise ConfigError("VM levels must be contiguous starting at L1")

    @property
    def nesting_depth(self):
        """Number of virtualization levels below the host (2 = nested)."""
        return len(self.vms)

    def vm(self, level):
        for candidate in self.vms:
            if candidate.level == level:
                return candidate
        raise ConfigError(f"no VM configured at L{level}")

    def describe(self):
        """Rows equivalent to paper Table 4, as (level, description)."""
        host = self.host
        rows = [(
            "L0",
            f"{host.sockets}x{host.cpu_model} ({host.freq_ghz}GHz, "
            f"{host.cores_per_socket} cores, {host.smt_per_core}-SMT), "
            f"{host.sockets}x{host.ram_gb // host.sockets}GB RAM, "
            f"{host.nic_model} ({host.nic_gbps:g}Gb)",
        )]
        for vm in self.vms:
            rows.append((
                f"L{vm.level}",
                f"{vm.vcpus} vCPUs ({vm.reserved_vcpus} reserved), "
                f"{vm.ram_gb}GB RAM, {vm.net_device}, {vm.disk_device}",
            ))
        return rows


def paper_machine():
    """The exact testbed of paper Table 4."""
    return MachineConfig(
        host=HostConfig(),
        vms=(
            VMConfig(level=1, vcpus=6, reserved_vcpus=1, ram_gb=50),
            VMConfig(level=2, vcpus=3, reserved_vcpus=1, ram_gb=35),
        ),
    )
