"""Findings: what a lint rule reports.

A :class:`Finding` pins one rule violation to a file, line and column.
Findings are frozen dataclasses so rule code cannot mutate them after
the fact, sort in stable ``(path, line, col, rule)`` order so output is
deterministic regardless of rule execution order, and serialize to the
``--format json`` document.

JSON schema (versioned; see docs/static-analysis.md):

* ``svtlint/1`` — ``{schema, count, findings: [{path, line, col,
  rule, message}]}``.
* ``svtlint/2`` (current) — adds an optional ``stats`` object:
  ``{rules: {RULE: {findings, suppressions, packages: {PKG:
  {findings, suppressions}}}}, totals: {findings, suppressions}}``.
  ``stats`` is present whenever the document comes from a full
  :func:`~repro.lint.engine.lint_tree` run (the CLI always produces
  it); *suppressions* counts directives that actually silenced a
  finding, so it mirrors what SVT009 considers live.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, cast

from repro.lint.source import module_name_for

#: Version tag of the ``--format json`` document.
JSON_SCHEMA = "svtlint/2"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the text output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def package_of(module: str) -> str:
    """The reporting package for a module: its first two components."""
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else module


def compute_stats(
        findings: list[Finding],
        suppressions: Mapping[str, set[tuple[int, str]]],
        modules: Mapping[str, str],
) -> dict[str, object]:
    """Findings and live suppressions per rule per package."""
    per_rule: dict[str, dict[str, dict[str, int]]] = {}

    def bucket(rule: str, package: str) -> dict[str, int]:
        packages = per_rule.setdefault(rule, {})
        return packages.setdefault(package,
                                   {"findings": 0, "suppressions": 0})

    def package_for(path: str) -> str:
        module = modules.get(path) or module_name_for(Path(path))
        return package_of(module)

    for finding in findings:
        bucket(finding.rule, package_for(finding.path))["findings"] += 1
    total_suppressions = 0
    for path in sorted(suppressions):
        package = package_for(path)
        for _line, rule in sorted(suppressions[path]):
            bucket(rule, package)["suppressions"] += 1
            total_suppressions += 1

    rules: dict[str, object] = {}
    for rule in sorted(per_rule):
        packages = per_rule[rule]
        rules[rule] = {
            "findings": sum(p["findings"] for p in packages.values()),
            "suppressions": sum(p["suppressions"]
                                for p in packages.values()),
            "packages": {name: dict(packages[name])
                         for name in sorted(packages)},
        }
    return {
        "rules": rules,
        "totals": {
            "findings": len(findings),
            "suppressions": total_suppressions,
        },
    }


def render_stats_table(stats: Mapping[str, object]) -> str:
    """The ``--stats`` text table."""
    lines = [f"{'rule':<8} {'package':<24} {'findings':>8} "
             f"{'suppressions':>12}"]
    rules = cast("dict[str, Any]", stats["rules"])
    for rule in sorted(rules):
        packages = cast("dict[str, Any]", rules[rule]["packages"])
        for package in sorted(packages):
            counts = packages[package]
            lines.append(
                f"{rule:<8} {package:<24} "
                f"{counts['findings']:>8} "
                f"{counts['suppressions']:>12}")
    totals = cast("dict[str, Any]", stats["totals"])
    lines.append(f"{'total':<8} {'':<24} "
                 f"{totals['findings']:>8} "
                 f"{totals['suppressions']:>12}")
    return "\n".join(lines)


def findings_document(
        findings: list[Finding],
        stats: Optional[dict[str, object]] = None,
) -> dict[str, object]:
    """The ``--format json`` document for a batch of findings."""
    document: dict[str, object] = {
        "schema": JSON_SCHEMA,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
    if stats is not None:
        document["stats"] = stats
    return document
