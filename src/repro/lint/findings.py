"""Findings: what a lint rule reports.

A :class:`Finding` pins one rule violation to a file, line and column.
Findings are frozen dataclasses so rule code cannot mutate them after
the fact, sort in stable ``(path, line, col, rule)`` order so output is
deterministic regardless of rule execution order, and serialize to the
``--format json`` document.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Version tag of the ``--format json`` document.
JSON_SCHEMA = "svtlint/1"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` — the text output line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def findings_document(findings: list[Finding]) -> dict[str, object]:
    """The ``--format json`` document for a batch of findings."""
    return {
        "schema": JSON_SCHEMA,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in sorted(findings)],
    }
