"""Parsed source files: AST, comments, and suppression index.

Rules never re-read or re-tokenize a file — :class:`SourceFile` parses
once and exposes everything rule visitors need:

* ``tree`` — the parsed AST (with a lazy child->parent map for rules
  that must find the enclosing statement of an expression node).
* ``comments`` — ``{line: comment text}`` from ``tokenize`` (the AST
  drops comments, but SVT002's ``# paper:`` citations and the
  suppression syntax live in them).
* ``suppressed(line, rule)`` — the inline opt-out:
  ``# svtlint: disable=SVT001`` (or a comma list, or a bare ``disable``
  for every rule) on the offending line, or on a comment-only line
  directly above it.
* ``module`` — dotted module name derived from the path (rules scope
  themselves by package, e.g. SVT001 applies under ``repro.exp``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

_SUPPRESS_RE = re.compile(
    r"svtlint:\s*disable(?:=(?P<rules>SVT\d{3}(?:\s*,\s*SVT\d{3})*))?",
)

#: Sentinel rule set meaning "every rule".
ALL_RULES = frozenset({"*"})


@dataclass(frozen=True, order=True)
class SuppressionDirective:
    """One inline ``# svtlint: disable`` comment.

    ``line`` is the comment's own line; ``target`` is the code line the
    directive covers (the same line for trailing comments, the next
    code line for comment-only lines).  ``rules`` is the explicit rule
    set or the :data:`ALL_RULES` sentinel for a bare ``disable``.  The
    stale-suppression pass (SVT009) matches directives against the
    suppressed-hit index the engine collects while rules run.
    """

    line: int
    target: int
    rules: frozenset[str]


def module_name_for(path: Path) -> str:
    """Dotted module name for a source path.

    Uses the last ``repro`` component in the path so both the installed
    tree (``src/repro/exp/runner.py`` -> ``repro.exp.runner``) and test
    fixtures staged under a synthetic ``repro/`` directory resolve to
    package-scoped names.  Files outside any ``repro`` tree fall back to
    their bare stem, which no package-scoped rule matches.
    """
    parts = list(path.resolve().parts)
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = parts[start:]
    else:
        dotted = [parts[-1]]
    dotted[-1] = Path(dotted[-1]).stem
    if dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def justification_text(comment: str) -> str:
    """The free text following the ``disable`` directive in a comment."""
    match = _SUPPRESS_RE.search(comment)
    if match is None:
        return ""
    return comment[match.end():].strip(" \t#:;,.!—–-")


def suppression_justified(source: "SourceFile", line: int,
                          min_length: int = 8) -> bool:
    """Does the suppression directive covering ``line`` explain itself?

    Rules whose suppressions must carry a justification (SVT005,
    SVT006) share this scan.  The directive lives either in a trailing
    comment on the line or in the comment-only block directly above;
    continuation comment lines in that block count toward the
    justification.
    """
    comment = source.comments.get(line, "")
    if "disable" in comment:
        return len(justification_text(comment)) >= min_length
    # Walk the contiguous comment/blank block above the statement.
    block: list[str] = []
    prev = line - 1
    while prev > 0 and (prev in source.comment_only_lines
                        or source.line_is_blank(prev)):
        text = source.comments.get(prev, "")
        block.append(text)
        if _SUPPRESS_RE.search(text):
            break
        prev -= 1
    for index, text in enumerate(block):
        if _SUPPRESS_RE.search(text) is None:
            continue
        # Directive text plus any continuation lines below it (block
        # is bottom-up, so earlier entries are *later* lines).
        parts = [justification_text(text)]
        parts.extend(t.lstrip("# \t") for t in block[:index])
        return len(" ".join(parts).strip()) >= min_length
    return False


class SourceFile:
    """One parsed Python file plus its comment/suppression index."""

    def __init__(self, path: Path, text: Optional[str] = None,
                 module: Optional[str] = None) -> None:
        self.path = Path(path)
        self.text = self.path.read_text() if text is None else text
        self.module = module or module_name_for(self.path)
        self.tree = ast.parse(self.text, filename=str(self.path))
        self.comments: dict[int, str] = {}
        self.comment_only_lines: set[int] = set()
        self._scan_tokens()
        self.directives: tuple[SuppressionDirective, ...] = ()
        self._suppressions = self._build_suppressions()
        self._parents: Optional[dict[int, ast.AST]] = None

    # -- tokens ----------------------------------------------------------

    def _scan_tokens(self) -> None:
        tokens = tokenize.generate_tokens(
            io.StringIO(self.text).readline
        )
        code_lines: set[int] = set()
        for token in tokens:
            if token.type == tokenize.COMMENT:
                self.comments[token.start[0]] = token.string
            elif token.type not in (
                tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                tokenize.DEDENT, tokenize.ENDMARKER,
            ):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
        self.comment_only_lines = {
            line for line in self.comments if line not in code_lines
        }

    def line_is_blank(self, line: int) -> bool:
        lines = self.text.splitlines()
        if not 1 <= line <= len(lines):
            return False
        return not lines[line - 1].strip()

    # -- suppressions ----------------------------------------------------

    def _build_suppressions(self) -> dict[int, frozenset[str]]:
        table: dict[int, frozenset[str]] = {}
        directive_lines: dict[int, frozenset[str]] = {}
        for line, comment in self.comments.items():
            match = _SUPPRESS_RE.search(comment)
            if not match:
                continue
            names = match.group("rules")
            rules = (frozenset(r.strip() for r in names.split(","))
                     if names else ALL_RULES)
            table[line] = table.get(line, frozenset()) | rules
            directive_lines[line] = rules
        # A suppression on a comment-only line covers the next code line.
        targets: dict[int, int] = {}
        for line in sorted(self.comment_only_lines):
            if line not in table:
                continue
            target = line + 1
            while (target in self.comment_only_lines
                   or self.line_is_blank(target)):
                target += 1
            targets[line] = target
            table[target] = table.get(target, frozenset()) | table[line]
        self.directives = tuple(sorted(
            SuppressionDirective(line=line,
                                 target=targets.get(line, line),
                                 rules=rules)
            for line, rules in directive_lines.items()
        ))
        return table

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self._suppressions.get(line)
        return bool(rules) and (rule in rules or rules == ALL_RULES)

    # -- parents ---------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The AST parent of ``node`` (``None`` for the module)."""
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[id(child)] = outer
        return self._parents.get(id(node))

    def enclosing_statement(self, node: ast.AST) -> ast.stmt:
        """The nearest statement ancestor (or ``node`` itself)."""
        current: Optional[ast.AST] = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parent(current)
        if current is None:
            raise ValueError(f"no enclosing statement for {node!r}")
        return current
