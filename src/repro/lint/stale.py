"""SVT009 — stale-suppression detection (meta-diagnostic).

A ``# svtlint: disable`` comment is a standing exception to an
invariant; once the code it excused is gone, the comment is a trap —
it silently swallows the *next* violation introduced on that line.
The engine records every suppression that actually silenced a finding
while the other rules run (:class:`~repro.lint.engine.LintContext`
suppressed hits, plus the project pass); any directive with no hit is
reported as stale.

Semantics worth knowing (see ``docs/static-analysis.md``):

* SVT009 findings are **not** themselves suppressible — opt out with
  ``repro lint --no-stale`` instead.  A suppressible stale check
  would be satisfiable by its own directive.
* An explicit directive (``disable=SVT005``) is only judged when
  every rule it names actually ran; a bare ``disable`` is only judged
  on a complete run (no ``--rules`` filter).  ``select_rules`` wires
  ``complete`` accordingly, so partial runs never mass-report stale.
* Justified SVT005/SVT006 suppressions count as hits even though the
  rules return early without reporting — they call
  ``ctx.note_suppressed`` for exactly this reason.
"""

from __future__ import annotations

from repro.lint.engine import Rule


class StaleSuppressionRule(Rule):
    """SVT009: disable directives that silence nothing are stale."""

    rule_id = "SVT009"
    title = "stale suppression"
    meta_stale = True

    #: ``False`` when the run used an explicit ``--rules`` filter —
    #: bare ``disable`` directives are skipped then, since any rule
    #: left out could be the one they suppress.
    complete = True
