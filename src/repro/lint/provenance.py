"""SVT002 — every timing constant must cite the paper.

The whole simulation is calibrated against the paper's published
numbers; a timing constant with no provenance is unreviewable and
silently decays as the model evolves.  In ``repro/cpu/costs.py`` and
``repro/analysis/hw_model.py`` every numeric constant site —

* class- or module-level assignments (the ``CostModel`` fields),
* numeric values inside dict literals (the per-exit-reason handler
  tables),
* numeric parameter defaults (``interrupt_wake_share=0.85``),
* numeric keyword arguments in calls (the ``CostModel().derived(...)``
  variant constructors),

— must carry a ``# paper:`` comment naming a table, figure, section
(``§``), algorithm or appendix.  A citation counts when it sits on the
literal's own line, on a comment line directly above the literal (inside
a dict), on the statement's first line, or in the comment block
immediately above the statement (one citation may cover a whole dict).

The registered variant models under ``repro/cpu/costmodels/`` are not
all paper-calibrated: a constant there may instead carry a
``# synthetic:`` comment with a non-empty rationale (*why* the variant
deviates), so invented numbers are still reviewable — but the paper
modules themselves accept only ``# paper:``.
"""

from __future__ import annotations

import ast
import re
from typing import Optional, Union

from repro.lint.engine import LintContext, Rule
from repro.lint.source import SourceFile

MODULES = ("repro.cpu.costs", "repro.analysis.hw_model")

#: Modules (by prefix) where ``# synthetic: <rationale>`` also counts:
#: the registered variant cost models, and the shared backoff policy
#: whose schedule constants are engineering choices, not measurements.
SYNTHETIC_PREFIXES = ("repro.cpu.costmodels", "repro.faults.backoff")

#: Backwards-compatible alias (PR 6 name, single-prefix era).
SYNTHETIC_PREFIX = SYNTHETIC_PREFIXES[0]

_PAPER_RE = re.compile(r"#\s*paper:", re.I)
_SYNTH_RE = re.compile(r"#\s*synthetic:", re.I)
#: A synthetic citation must say *why* the number deviates.
_SYNTH_RATIONALE_RE = re.compile(r"#\s*synthetic:\s*[^\s#]", re.I)
#: The citation must actually name an anchor in the paper.
_ANCHOR_RE = re.compile(
    r"#\s*paper:[^#]*?("
    r"table\s*\d|fig(ure)?s?\.?\s*\d|§\s*[\dA-Z]|sect?(ion)?\.?\s*[\dA-Z]"
    r"|alg(orithm)?\.?\s*\d|appendix\s*\w)",
    re.I,
)

_NumericNode = Union[ast.Constant, ast.UnaryOp]


def _numeric_literal(node: ast.AST) -> Optional[_NumericNode]:
    """The node itself when it is an int/float literal (incl. ``-x``)."""
    if (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool)):
        return node
    if (isinstance(node, ast.UnaryOp)
            and isinstance(node.op, ast.USub)
            and _numeric_literal(node.operand) is not None):
        return node
    return None


class ProvenanceRule(Rule):
    """SVT002: numeric timing constants carry ``# paper:`` citations."""

    rule_id = "SVT002"
    title = "cost-model provenance"

    def applies(self, source: SourceFile) -> bool:
        return (source.module in MODULES
                or source.module.startswith(SYNTHETIC_PREFIXES))

    # -- citation lookup -------------------------------------------------

    @staticmethod
    def _synthetic_ok(source: SourceFile) -> bool:
        return source.module.startswith(SYNTHETIC_PREFIXES)

    def _cited(self, source: SourceFile, line: int) -> Optional[bool]:
        """True: anchored citation; False: malformed; None: absent."""
        comment = source.comments.get(line)
        if comment is None:
            return None
        if _PAPER_RE.search(comment):
            return bool(_ANCHOR_RE.search(comment))
        if self._synthetic_ok(source) and _SYNTH_RE.search(comment):
            return bool(_SYNTH_RATIONALE_RE.search(comment))
        return None

    def _block_cited(self, source: SourceFile,
                     below: int) -> Optional[bool]:
        """Citation status of the comment/blank run above ``below``."""
        line = below - 1
        status: Optional[bool] = None
        while line >= 1 and (line in source.comment_only_lines
                             or source.line_is_blank(line)):
            cited = self._cited(source, line)
            if cited:
                return True
            if cited is False:
                status = False
            line -= 1
        return status

    def _check(self, literal: _NumericNode, ctx: LintContext) -> None:
        source = ctx.source
        stmt = source.enclosing_statement(literal)
        line = literal.lineno
        statuses = [
            self._cited(source, line),            # on the literal line
            self._block_cited(source, line),      # comments above it
            self._cited(source, stmt.lineno),     # on the stmt header
            self._block_cited(source, stmt.lineno),  # above the stmt
        ]
        if True in statuses:
            return
        value = ast.get_source_segment(source.text, literal) or "?"
        if False in statuses:
            ctx.report(self, literal,
                       f"citation for constant {value} must name a "
                       "table/figure/section (e.g. '# paper: Table 1')"
                       + (" or give a '# synthetic:' rationale"
                          if self._synthetic_ok(source) else ""))
        elif self._synthetic_ok(source):
            ctx.report(self, literal,
                       f"timing constant {value} has no '# paper:' or "
                       "'# synthetic:' citation")
        else:
            ctx.report(self, literal,
                       f"timing constant {value} has no '# paper:' "
                       "citation")

    # -- constant sites --------------------------------------------------

    def visit_Assign(self, node: ast.Assign, ctx: LintContext) -> None:
        if ctx.at_class_or_module_level():
            literal = _numeric_literal(node.value)
            if literal is not None:
                self._check(literal, ctx)

    def visit_AnnAssign(self, node: ast.AnnAssign,
                        ctx: LintContext) -> None:
        if ctx.at_class_or_module_level() and node.value is not None:
            literal = _numeric_literal(node.value)
            if literal is not None:
                self._check(literal, ctx)

    def visit_Dict(self, node: ast.Dict, ctx: LintContext) -> None:
        for value in node.values:
            literal = _numeric_literal(value)
            if literal is not None:
                self._check(literal, ctx)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        # The variant constructors (`CostModel().derived("arm-flavour",
        # switch_l2_l0=560, ...)`) pass their constants as keyword
        # arguments; positional numerics stay out of scope (loop bounds,
        # rounding digits and similar incidental literals).
        for keyword in node.keywords:
            literal = _numeric_literal(keyword.value)
            if literal is not None:
                self._check(literal, ctx)

    def visit_arguments(self, node: ast.arguments,
                        ctx: LintContext) -> None:
        defaults = list(node.defaults) + [
            default for default in node.kw_defaults
            if default is not None
        ]
        for default in defaults:
            literal = _numeric_literal(default)
            if literal is not None:
                self._check(literal, ctx)
