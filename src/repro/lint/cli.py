"""``python -m repro lint`` — run the invariant checker.

::

    python -m repro lint                    # whole repro package
    python -m repro lint src tests          # explicit paths
    python -m repro lint --format json      # machine-readable findings
    python -m repro lint --rules SVT001,SVT003
    python -m repro lint --stats            # per-rule/package summary
    python -m repro lint --no-stale         # skip SVT009 meta-pass
    python -m repro lint --no-cache         # bypass .svtlint_cache/
    python -m repro lint --list-rules

Exit codes (CI gates on them): **0** clean, **1** at least one finding,
**2** usage error.  Parse failures in linted files surface as
``SVT000`` findings rather than crashes, so one run always reports
every problem.

Per-file results are memoized under ``.svtlint_cache/`` (see
:mod:`repro.lint.cache`); the whole-program passes (SVT007/SVT008)
invalidate whenever any file in the batch changes.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.exp.result import canonical_json
from repro.lint.bounded import BoundedLoopRule
from repro.lint.cache import DEFAULT_CACHE_DIR, LintCache
from repro.lint.determinism import DeterminismRule
from repro.lint.engine import Rule, lint_tree
from repro.lint.fastpath import FastPathRule
from repro.lint.findings import (compute_stats, findings_document,
                                 render_stats_table)
from repro.lint.frozen import FrozenResultRule
from repro.lint.poolsafety import PoolSafetyRule
from repro.lint.provenance import ProvenanceRule
from repro.lint.races import SimStateRaceRule
from repro.lint.stale import StaleSuppressionRule
from repro.lint.taint import DeterminismTaintRule

#: Every shipped rule, in rule-id order.
DEFAULT_RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    ProvenanceRule,
    PoolSafetyRule,
    FrozenResultRule,
    BoundedLoopRule,
    FastPathRule,
    SimStateRaceRule,
    DeterminismTaintRule,
    StaleSuppressionRule,
)


def default_paths() -> list[Path]:
    """The installed ``repro`` package source tree."""
    import repro

    return [Path(repro.__file__).resolve().parent]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker for the experiment "
                    "runtime (determinism, cost-model provenance, "
                    "process-pool safety, frozen results, sim-state "
                    "races, determinism taint)",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: "
                             "the repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="findings as lines or as a JSON document")
    parser.add_argument("--rules", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--stats", action="store_true",
                        help="print a findings/suppressions summary "
                             "per rule per package")
    parser.add_argument("--no-stale", action="store_true",
                        help="skip the SVT009 stale-suppression pass")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the incremental lint cache")
    parser.add_argument("--cache-dir", type=Path,
                        default=DEFAULT_CACHE_DIR, metavar="DIR",
                        help="incremental cache directory (default: "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    return parser


def select_rules(spec: Optional[str],
                 stale: bool = True) -> list[Rule]:
    """Instantiate the requested rules (all by default).

    With an explicit ``--rules`` list the SVT009 instance is marked
    incomplete, so bare ``disable`` directives are never judged stale
    on a partial run.
    """
    if not spec:
        rules = [cls() for cls in DEFAULT_RULES]
    else:
        by_id = {cls.rule_id: cls for cls in DEFAULT_RULES}
        rules = []
        for rule_id in (part.strip() for part in spec.split(",")):
            if rule_id not in by_id:
                known = ", ".join(sorted(by_id))
                raise ValueError(
                    f"repro lint: unknown rule {rule_id!r} "
                    f"(known: {known})"
                )
            rules.append(by_id[rule_id]())
        for rule in rules:
            if rule.meta_stale:
                rule.complete = False  # type: ignore[attr-defined]
    if not stale:
        rules = [rule for rule in rules if not rule.meta_stale]
    return rules


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for cls in DEFAULT_RULES:
            doc = (cls.__doc__ or "").strip().splitlines()[0]
            doc = doc.removeprefix(f"{cls.rule_id}: ")
            print(f"{cls.rule_id}  {cls.title}: {doc}")
        return 0
    try:
        rules = select_rules(args.rules, stale=not args.no_stale)
    except ValueError as err:
        print(err, file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths] or default_paths()
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else LintCache(args.cache_dir)
    report = lint_tree(paths, rules, cache=cache)
    findings = report.findings
    stats = compute_stats(findings, report.suppressions,
                          report.modules)
    if args.format == "json":
        sys.stdout.write(canonical_json(
            findings_document(findings, stats=stats)))
    else:
        for finding in findings:
            print(finding.render())
        if args.stats:
            print(render_stats_table(stats))
        if findings:
            print(f"{len(findings)} finding"
                  f"{'s' if len(findings) != 1 else ''}",
                  file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
