"""Forward taint propagation over the project graph.

SVT008 asks a whole-program question: *can a nondeterministic value
reach a Result field, a cache fingerprint, or a serialized artifact?*
This module provides the machinery; the rule supplies the sinks.

The analysis is deliberately simple and deterministic:

* **intra-procedural** — statements are interpreted in source order
  with a variable -> taint-set environment; the body is evaluated
  twice so loop-carried taint stabilizes, and sinks only fire on the
  second pass;
* **flow-through** — a call's result inherits the union of its
  arguments' taints (``str(t)`` of a tainted ``t`` is tainted), with
  two sanctioned laundering points: ``sorted()`` clears *set-order*
  taint, and any call whose receiver names the seeded RNG (``rng``,
  ``self.rng``, ``DeterministicRng(...)``) is clean by construction;
* **inter-procedural** — per-function *returns-tainted* summaries are
  iterated to a fixpoint over the call graph, applied only at calls
  the graph resolves precisely (bare names through the import map and
  ``self.method``), so CHA over-approximation cannot smear taint
  across unrelated classes.

Taint kinds are short strings (``"time.perf_counter"``,
``"os.environ"``, ``"set-order"``, ...) carried with the line that
introduced them, so findings can say both *what* leaked and *where it
came from*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.lint.graph import (FunctionInfo, ProjectGraph,
                              _terminal_name)

#: Wall-clock reads on the ``time`` module.
TIME_FORBIDDEN = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "localtime", "gmtime", "ctime",
    "asctime",
})
#: Wall-clock constructors on ``datetime`` / ``date``.
DATETIME_FORBIDDEN = frozenset({"now", "utcnow", "today",
                                "fromtimestamp"})
#: ``random`` module members that are fine (seedable classes).
RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})
#: Modules whose every call yields entropy.
ENTROPY_MODULES = frozenset({"secrets", "uuid"})

#: The taint kind cleared by ``sorted()``.
SET_ORDER = "set-order"

SinkCallback = Callable[
    [ast.Call, "list[frozenset[Taint]]", "dict[str, frozenset[Taint]]"],
    None,
]


@dataclass(frozen=True, order=True)
class Taint:
    """One nondeterminism source flowing through the function."""

    kind: str
    line: int


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def call_source_kind(node: ast.Call) -> Optional[str]:
    """The taint kind a call introduces, if it is an entropy source."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "id":
            return "id()"
        if func.id == "getenv":
            return "os.environ"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name):
        if base.id == "os":
            if func.attr == "urandom":
                return "os.urandom"
            if func.attr in ("getenv", "getenvb"):
                return "os.environ"
        elif base.id == "time" and func.attr in TIME_FORBIDDEN:
            return f"time.{func.attr}"
        elif (base.id in ("datetime", "date")
                and func.attr in DATETIME_FORBIDDEN):
            return f"{base.id}.{func.attr}"
        elif (base.id == "random"
                and func.attr not in RANDOM_ALLOWED):
            return f"random.{func.attr}"
        elif base.id in ENTROPY_MODULES:
            return f"{base.id}.{func.attr}"
        elif base.id == "environ" and func.attr in ("get", "pop"):
            return "os.environ"
    # os.environ.get(...) — one attribute deeper.
    if (isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "os" and base.attr == "environ"):
        return "os.environ"
    if (isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "datetime"
            and func.attr in DATETIME_FORBIDDEN):
        return "datetime." + func.attr
    return None


def _is_environ_read(node: ast.AST) -> bool:
    """Bare ``os.environ`` attribute access (subscripts, membership)."""
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "os" and node.attr == "environ")


def _rng_laundered(node: ast.Call) -> bool:
    """Calls on the seeded RNG are clean by construction.

    ``derive_stream`` is ``repro.fuzz``'s labelled-fork constructor —
    a pure function of ``(seed, label)`` wrapping ``DeterministicRng``
    — so its streams launder exactly like ``sim.rng`` itself.
    """
    func = node.func
    if isinstance(func, ast.Name):
        return ("rng" in func.id.lower()
                or func.id in ("DeterministicRng", "derive_stream"))
    if isinstance(func, ast.Attribute):
        receiver = _terminal_name(func.value)
        return ("rng" in receiver.lower()
                or "rng" in func.attr.lower()
                or func.attr in ("DeterministicRng", "derive_stream"))
    return False


class TaintEvaluator:
    """Interpret one function body, tracking taint per local name."""

    def __init__(self, graph: ProjectGraph, info: FunctionInfo,
                 summaries: dict[str, frozenset[str]]) -> None:
        self.graph = graph
        self.info = info
        self.summaries = summaries
        self.env: dict[str, frozenset[Taint]] = {}
        self.set_vars: set[str] = set()
        self.returns: set[Taint] = set()

    # -- driver ----------------------------------------------------------

    def run(self, on_call: Optional[SinkCallback] = None,
            ) -> frozenset[str]:
        """Two passes over the body; sinks fire on the second only."""
        body = list(self.info.node.body)
        self._exec_block(body, on_call=None)
        self.returns.clear()
        self._exec_block(body, on_call=on_call)
        return frozenset(t.kind for t in self.returns)

    # -- statements ------------------------------------------------------

    def _exec_block(self, stmts: Iterable[ast.stmt],
                    on_call: Optional[SinkCallback]) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, on_call)

    def _exec_stmt(self, stmt: ast.stmt,
                   on_call: Optional[SinkCallback]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are their own graph entries
        if isinstance(stmt, ast.Assign):
            taints = self._eval(stmt.value, on_call)
            for target in stmt.targets:
                self._bind(target, taints, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target,
                           self._eval(stmt.value, on_call), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taints = self._eval(stmt.value, on_call)
            if isinstance(stmt.target, ast.Name):
                merged = self.env.get(stmt.target.id,
                                      frozenset()) | taints
                self.env[stmt.target.id] = frozenset(merged)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns.update(self._eval(stmt.value, on_call))
        elif isinstance(stmt, ast.For):
            iter_taints = self._eval(stmt.iter, on_call)
            if _is_set_expr(stmt.iter) or (
                    isinstance(stmt.iter, ast.Name)
                    and stmt.iter.id in self.set_vars):
                iter_taints = iter_taints | {
                    Taint(SET_ORDER, stmt.iter.lineno)}
            self._bind(stmt.target, iter_taints, stmt.iter)
            self._exec_block(stmt.body, on_call)
            self._exec_block(stmt.orelse, on_call)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, on_call)
            self._exec_block(stmt.body, on_call)
            self._exec_block(stmt.orelse, on_call)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, on_call)
            self._exec_block(stmt.body, on_call)
            self._exec_block(stmt.orelse, on_call)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                taints = self._eval(item.context_expr, on_call)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints,
                               item.context_expr)
            self._exec_block(stmt.body, on_call)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, on_call)
            for handler in stmt.handlers:
                self._exec_block(handler.body, on_call)
            self._exec_block(stmt.orelse, on_call)
            self._exec_block(stmt.finalbody, on_call)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, on_call)

    def _bind(self, target: ast.expr, taints: frozenset[Taint],
              value: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taints, value)
            return
        if isinstance(target, ast.Name):
            self.env[target.id] = taints
            if _is_set_expr(value):
                self.set_vars.add(target.id)
            else:
                self.set_vars.discard(target.id)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taints, value)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # A store *into* a container/object taints the container:
            # ``doc["host"] = os.environ[...]`` makes ``doc`` dirty, so
            # a later ``canonical_json(doc)`` is a tainted sink.  Join
            # (never replace) — other entries may already be dirty.
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name) and taints:
                self.env[base.id] = (
                    self.env.get(base.id, frozenset()) | taints)

    # -- expressions -----------------------------------------------------

    def _eval(self, node: ast.expr,
              on_call: Optional[SinkCallback]) -> frozenset[Taint]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            return self._eval_call(node, on_call)
        if _is_environ_read(node):
            return frozenset({Taint("os.environ", node.lineno)})
        if isinstance(node, ast.Attribute):
            return self._eval(node.value, on_call)
        if isinstance(node, ast.Subscript):
            return (self._eval(node.value, on_call)
                    | self._eval(node.slice, on_call))
        if isinstance(node, ast.IfExp):
            self._eval(node.test, on_call)
            return (self._eval(node.body, on_call)
                    | self._eval(node.orelse, on_call))
        if isinstance(node, (ast.Lambda,)):
            return frozenset()
        out: set[Taint] = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out.update(self._eval(child, on_call))
            elif isinstance(child, (ast.comprehension, ast.keyword)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        out.update(self._eval(sub, on_call))
        return frozenset(out)

    def _eval_call(self, node: ast.Call,
                   on_call: Optional[SinkCallback]) -> frozenset[Taint]:
        arg_taints = [self._eval(arg, on_call) for arg in node.args]
        kw_taints = {kw.arg or "**": self._eval(kw.value, on_call)
                     for kw in node.keywords}
        if on_call is not None:
            on_call(node, arg_taints, kw_taints)
        kind = call_source_kind(node)
        if kind is not None:
            return frozenset({Taint(kind, node.lineno)})
        if _rng_laundered(node):
            return frozenset()
        merged: set[Taint] = set()
        for taints in arg_taints:
            merged.update(taints)
        for taints in kw_taints.values():
            merged.update(taints)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "sorted":
                merged = {t for t in merged if t.kind != SET_ORDER}
            elif (func.id in ("list", "tuple", "iter", "enumerate",
                              "reversed")
                    and node.args and (
                        _is_set_expr(node.args[0])
                        or (isinstance(node.args[0], ast.Name)
                            and node.args[0].id in self.set_vars))):
                merged.add(Taint(SET_ORDER, node.lineno))
        # Receiver taint flows through method calls.
        if isinstance(func, ast.Attribute):
            merged.update(self._eval(func.value, on_call))
            if (func.attr == "join" and node.args
                    and _is_set_expr(node.args[0])):
                merged.add(Taint(SET_ORDER, node.lineno))
        # Precisely-resolved callees contribute their return summary.
        for callee in self._precise_callees(node):
            for kind_name in sorted(self.summaries.get(callee,
                                                       frozenset())):
                merged.add(Taint(kind_name, node.lineno))
        return frozenset(merged)

    def _precise_callees(self, node: ast.Call) -> list[str]:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.graph.resolve_name(self.info.module,
                                               func.id)
            if resolved is not None and resolved in self.graph.functions:
                return [resolved]
            return []
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and self.info.cls is not None):
            owner = self.graph.classes.get(self.info.cls)
            if owner is not None and func.attr in owner.methods:
                return [owner.methods[func.attr]]
        return []


class ProjectTaint:
    """Fixpoint of returns-tainted summaries over the whole batch."""

    #: Safety valve — the lattice is finite so this never binds in
    #: practice, but a bound keeps pathological inputs linear.
    MAX_PASSES = 10

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        self.summaries: dict[str, frozenset[str]] = {}
        self._compute()

    def _compute(self) -> None:
        for _ in range(self.MAX_PASSES):
            changed = False
            for qualname in sorted(self.graph.functions):
                info = self.graph.functions[qualname]
                returns = TaintEvaluator(
                    self.graph, info, self.summaries).run()
                if returns != self.summaries.get(qualname, frozenset()):
                    self.summaries[qualname] = returns
                    changed = True
            if not changed:
                return

    def evaluate(self, info: FunctionInfo,
                 on_call: SinkCallback) -> None:
        """Re-run one function with sinks armed."""
        TaintEvaluator(self.graph, info, self.summaries).run(on_call)
