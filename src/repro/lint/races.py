"""SVT007 — sim-state race detector (lockset/ownership approximation).

The paper's core invariant (§4): L0/L1/L2 share physical core state —
PRF windows, VMCS shadows, command rings — and may only touch it
through operations ordered by the simulated clock (charges, channel
push/pop, context switches).  In the simulator those shared objects
live in ``repro.cpu.context``, ``repro.cpu.prf``, ``repro.virt.vmcs``
and ``repro.core.channel``; this rule flags writes to their attributes
from code that more than one simulated context can reach *without* an
engine/channel/switch ordering call on the way.

The approximation, in whole-program terms (see
:mod:`repro.lint.graph`):

* **shared state** — every class defined in a ``SHARED_MODULES``
  module; its field set is everything assigned through ``self`` plus
  annotated class attributes.  A *write access* is either a direct
  attribute assignment whose receiver names a shared instance
  (``vmcs02.ept = ...``; receivers are matched by the per-module
  token patterns in ``SHARED_MODULES``) or a call to one of the
  class's mutator methods through such a receiver
  (``context.write(...)``).
* **ownership/lockset** — instead of locks, the simulator orders
  accesses by the sim clock.  A function holds the "lock" when it is
  defined in an ordering module (the engine, switch, channel, SMT
  core — their methods *are* the ordering primitives) or its body
  calls an ordering API (``ORDERING_CALLS``); flow-insensitive by
  design, so hoisting the charge above the write still counts.
* **multi-context reachability** — context roots are module prefixes
  (guest run loop, hypervisor exit paths, device completions, the
  software SVT thread) plus every callback handed to ``sim.at`` /
  ``sim.after`` (the event context).  A write access in a function
  reachable from two or more labels without holding the lock is a
  finding.

False positives are expected at the margin of any lockset
approximation — that is what justified ``# svtlint: disable=SVT007``
rationales are for (docs/static-analysis.md).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.engine import ProjectContext, ProjectRule
from repro.lint.graph import (ClassInfo, FunctionInfo, ProjectGraph,
                              _terminal_name)

#: Shared-state module -> receiver-name tokens that mark an instance.
SHARED_MODULES: dict[str, tuple[str, ...]] = {
    "repro.cpu.context": ("context", "ctx"),
    "repro.cpu.prf": ("prf", "registers", "rename"),
    "repro.virt.vmcs": ("vmcs",),
    "repro.core.channel": ("ring", "channel", "chan"),
    # Serve tier: the admission gate is mutated from every connection
    # handler; all traffic must go through its locked try_push/release.
    "repro.serve.admission": ("gate", "admission"),
    # Batch kernel: a flat replay block carries many cells' clocks and
    # cursors in one structure, so a write from an unordered path
    # corrupts every cell in the block, not just one machine.
    "repro.sim.batch": ("block", "cellblock"),
}

#: Modules whose functions *are* the ordering primitives.
ORDERING_MODULES: tuple[str, ...] = (
    "repro.sim.engine", "repro.core.switch", "repro.core.channel",
    "repro.cpu.smt",
    # The supervisor serialises worker dispatch: its methods own the
    # ready-queue handoff the same way the channel owns ring slots.
    "repro.serve.pool",
)

#: Calls that order an access against the sim clock: time charges,
#: event scheduling, channel operations, and context-switch APIs.
ORDERING_CALLS: frozenset[str] = frozenset({
    "charge", "advance", "at", "after", "park", "unpark",
    "run_until_idle",
    "try_push", "push", "pop", "peek",
    "take_request", "take_response",
    "send_trap", "send_resume", "try_send_trap", "try_send_resume",
    "svt_trap", "svt_resume", "force_fetch", "load_svt_fields",
    "cross_read", "cross_write",
    "enter_l1", "leave_l1", "exit_l2_to_l0", "resume_l2",
    "_switch_fetch", "_charge", "_hop",
    "release", "join_or_lead", "resolve_key",
})

#: Context roots: label -> module prefixes whose functions may run
#: under that simulated context.
CONTEXT_ROOTS: dict[str, tuple[str, ...]] = {
    "guest": ("repro.core.system", "repro.workloads"),
    "hypervisor": ("repro.virt",),
    "device": ("repro.io",),
    "svt-thread": ("repro.core.sw_prototype",),
    # Serve tier: connection handlers (the event loop) and supervisor
    # executor threads both reach the admission gate and coalescer.
    "serve-client": ("repro.serve.http", "repro.serve.service"),
    "serve-worker": ("repro.serve.pool",),
}

#: Attribute names whose calls schedule event callbacks.
EVENT_SCHEDULERS: frozenset[str] = frozenset({"at", "after"})

#: Construction/boot-phase functions: they run to completion before
#: the simulation starts interleaving contexts, so their writes (and,
#: caller-transitively, the helpers only they call) are ordered by
#: construction — the paper's race concern is steady-state exits, not
#: machine bring-up.
SETUP_FUNCTIONS: frozenset[str] = frozenset({"__init__", "__post_init__",
                                             "boot", "reset"})


class SimStateRaceRule(ProjectRule):
    """SVT007: shared sim state written off the engine's ordering."""

    rule_id = "SVT007"
    title = "sim-state race"

    shared_modules = SHARED_MODULES
    ordering_modules = ORDERING_MODULES
    ordering_calls = ORDERING_CALLS
    context_roots = CONTEXT_ROOTS

    def check_project(self, graph: ProjectGraph,
                      ctx: ProjectContext) -> None:
        shared = self._shared_classes(graph)
        if not shared:
            return
        labels = self._labels(graph)
        protected = self._protected_set(graph)
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            function_labels = labels.get(qualname, frozenset())
            if len(function_labels) < 2:
                continue
            if qualname in protected:
                continue
            for node, cls, fieldname in self._write_accesses(
                    info, shared):
                contexts = ", ".join(sorted(function_labels))
                ctx.report(
                    self, info.source, node,
                    f"write to shared {cls.name}.{fieldname} in "
                    f"'{info.name}' is reachable from contexts "
                    f"({contexts}) with no engine/channel/switch "
                    "ordering call on the path; charge sim time or "
                    "route through the switch/channel APIs (or "
                    "justify: '# svtlint: disable=SVT007 — ...')",
                )

    # -- shared-state discovery ------------------------------------------

    def _shared_classes(self, graph: ProjectGraph) -> list[ClassInfo]:
        return [info for qualname in sorted(graph.classes)
                for info in [graph.classes[qualname]]
                if info.module in self.shared_modules]

    def _patterns_for(self, cls: ClassInfo) -> tuple[str, ...]:
        return self.shared_modules[cls.module]

    def _receiver_matches(self, cls: ClassInfo,
                          receiver: ast.AST) -> bool:
        name = _terminal_name(receiver).lower()
        if not name or name == "self":
            return False
        return any(token in name for token in self._patterns_for(cls))

    # -- ordering / lockset ----------------------------------------------

    def _protected_set(self, graph: ProjectGraph) -> set[str]:
        """Functions holding the ordering "lock", caller-transitively.

        Directly protected functions order themselves (module or body
        call, :meth:`_holds_ordering`).  A function whose *every*
        caller in the batch is protected inherits protection — the
        ordering API was passed through on the way in (the VMCS
        transform helpers, called only inside the charged reflection
        window, are the canonical case).  Functions with no callers
        (roots) never inherit.
        """
        protected = {qualname for qualname in graph.functions
                     if self._holds_ordering(
                         graph.functions[qualname])}
        callers: dict[str, set[str]] = {}
        for caller, callees in graph.calls.items():
            for callee in callees:
                callers.setdefault(callee, set()).add(caller)
        changed = True
        while changed:
            changed = False
            for qualname in sorted(graph.functions):
                if qualname in protected:
                    continue
                inbound = callers.get(qualname, set())
                if inbound and inbound <= protected:
                    protected.add(qualname)
                    changed = True
        return protected

    def _holds_ordering(self, info: FunctionInfo) -> bool:
        if info.name in SETUP_FUNCTIONS:
            return True
        if any(info.module == m or info.module.startswith(m + ".")
               for m in self.ordering_modules):
            return True
        if info.cls is not None:
            # Methods of a shared class order its own fields: callers
            # are charged at the call site, not inside the accessor.
            cls_module = info.module
            if cls_module in self.shared_modules:
                return True
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = ""
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in self.ordering_calls:
                return True
        return False

    # -- access extraction -----------------------------------------------

    def _write_accesses(
            self, info: FunctionInfo, shared: list[ClassInfo],
    ) -> list[tuple[ast.AST, ClassInfo, str]]:
        out: list[tuple[ast.AST, ClassInfo, str]] = []
        for node in ast.walk(info.node):
            target: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    out.extend(self._match_store(tgt, shared))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                target = node.target
            elif isinstance(node, ast.Call):
                out.extend(self._match_mutator_call(node, shared))
            if target is not None:
                out.extend(self._match_store(target, shared))
        return out

    def _match_store(
            self, target: ast.expr, shared: list[ClassInfo],
    ) -> list[tuple[ast.AST, ClassInfo, str]]:
        if isinstance(target, (ast.Tuple, ast.List)):
            out: list[tuple[ast.AST, ClassInfo, str]] = []
            for element in target.elts:
                out.extend(self._match_store(element, shared))
            return out
        if not isinstance(target, ast.Attribute):
            return []
        return [(target, cls, target.attr) for cls in shared
                if target.attr in cls.fields
                and self._receiver_matches(cls, target.value)]

    def _match_mutator_call(
            self, node: ast.Call, shared: list[ClassInfo],
    ) -> list[tuple[ast.AST, ClassInfo, str]]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return []
        return [(node, cls, func.attr) for cls in shared
                if func.attr in cls.mutators
                and self._receiver_matches(cls, func.value)]

    # -- reachability ----------------------------------------------------

    def _labels(self, graph: ProjectGraph,
                ) -> dict[str, frozenset[str]]:
        labels = {q: set(s) for q, s in graph.context_labels(
            self.context_roots).items()}
        event_roots = self._event_callbacks(graph)
        for qualname in graph.reachable_from(sorted(event_roots)):
            labels.setdefault(qualname, set()).add("event")
        return {q: frozenset(s) for q, s in labels.items()}

    @staticmethod
    def _event_callbacks(graph: ProjectGraph) -> set[str]:
        roots: set[str] = set()
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in EVENT_SCHEDULERS):
                    continue
                for arg in list(node.args) + [kw.value for kw in
                                              node.keywords]:
                    ref = graph._resolve_reference(info, arg)
                    if ref is not None:
                        roots.add(ref)
        return roots
