"""SVT006 — per-instruction loops must charge time, not drain events.

The fast-path engine (``docs/performance.md``) makes
:meth:`~repro.sim.engine.Simulator.charge` the cheap way to account
simulated time: it only touches the event heap when a deadline is
actually due, so a hot loop charging small costs runs at memory speed.
:meth:`~repro.sim.engine.Simulator.advance` is the heavyweight sibling
— every call drains the heap and refreshes the deadline cache — and a
workload/core/virt loop calling it per instruction silently forfeits
the batched-time fast path (and, before the cache existed, was the
dominant cost in every instruction-heavy cell).

The rule flags every ``<sim>.advance(...)`` call that sits lexically
inside a ``for``/``while`` loop in the modelling packages
(``repro.workloads``, ``repro.core``, ``repro.cpu``, ``repro.virt``,
plus the batch kernel's replay module ``repro.sim.batch``).
The receiver must look like a simulator (its attribute/name chain
mentions ``sim``); calls outside loops — setup, single-shot scheduling
— stay legal.  A loop that genuinely needs drain-per-step semantics
must say why: a bare ``# svtlint: disable=SVT006`` is itself a finding
— the suppression comment must carry a justification after the
directive, e.g.::

    # svtlint: disable=SVT006 — drain required: each step observes
    # the queue emptied by the previous advance.
    sim.advance(step_ns)
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, package_scoped
from repro.lint.source import SourceFile, suppression_justified

PACKAGES = ("repro.workloads", "repro.core", "repro.cpu", "repro.virt",
            # The engine package stays exempt (its advance *is* the
            # primitive), but the batch kernel's replay loops are
            # modelling code and must charge like any workload.
            "repro.sim.batch")

#: Minimum justification length (after stripping punctuation) for a
#: ``disable=SVT006`` comment to count as explained.
MIN_JUSTIFICATION = 8

_LOOP_TYPES = (ast.For, ast.AsyncFor, ast.While)


def _receiver_chain(node: ast.expr) -> list[str]:
    """Dotted parts of an attribute chain, e.g. ``self.machine.sim``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    return parts


def _looks_like_simulator(receiver: ast.expr) -> bool:
    return any("sim" in part.lower() for part in _receiver_chain(receiver))


class FastPathRule(Rule):
    """SVT006: sim.advance in a hot loop bypasses the charge fast path."""

    rule_id = "SVT006"
    title = "advance in loop"

    def __init__(self) -> None:
        self._loop_spans: list[tuple[int, int]] = []

    def applies(self, source: SourceFile) -> bool:
        return package_scoped(source, PACKAGES)

    def begin(self, ctx: LintContext) -> None:
        # The shared walker keeps no loop stack, so precompute the line
        # span of every loop body once per file.
        self._loop_spans = [
            (node.lineno, node.end_lineno or node.lineno)
            for node in ast.walk(ctx.source.tree)
            if isinstance(node, _LOOP_TYPES)
        ]

    def _in_loop(self, line: int) -> bool:
        return any(start <= line <= end
                   for start, end in self._loop_spans)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "advance"
                and _looks_like_simulator(func.value)):
            return
        line = node.lineno
        if not self._in_loop(line):
            return
        if ctx.source.suppressed(line, self.rule_id):
            # The directive is live either way (it silences the loop
            # finding); record the hit so SVT009 never calls it stale.
            ctx.note_suppressed(line, self.rule_id)
            if suppression_justified(ctx.source, line,
                                     MIN_JUSTIFICATION):
                return
            ctx.report(
                self, node,
                "sim.advance in a loop suppressed without "
                "justification; explain why drain-per-step is needed "
                "after the directive (e.g. '# svtlint: disable=SVT006 "
                "— drain required: ...')",
                force=True,
            )
            return
        ctx.report(
            self, node,
            "per-instruction loop calls sim.advance, which drains the "
            "event heap every step and bypasses the batched-time fast "
            "path; charge time via sim.charge(ns) instead, or add a "
            "justified '# svtlint: disable=SVT006 — ...' comment",
        )
