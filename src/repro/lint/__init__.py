"""svtlint — AST-based invariant checker for the experiment runtime.

The runtime (``repro.exp``) promises byte-identical output at any
``--jobs`` count and fingerprint-keyed caching; this package encodes the
invariants behind those promises as machine-checked rules:

* **SVT001** :mod:`repro.lint.determinism` — no nondeterminism
  (unseeded randomness, wall-clock, environment, ``id()``, set order)
  under ``repro.exp`` / ``repro.sim`` / ``repro.workloads``.
* **SVT002** :mod:`repro.lint.provenance` — every numeric timing
  constant in the cost model cites the paper (``# paper: Table 1``).
* **SVT003** :mod:`repro.lint.poolsafety` — experiment cells don't
  write module globals or close over unpicklable state.
* **SVT004** :mod:`repro.lint.frozen` — nothing mutates a frozen
  ``Result`` after construction.
* **SVT005** :mod:`repro.lint.bounded` — ``while`` loops under
  ``repro.core`` carry a watchdog/cycle-budget identifier (or a
  *justified* inline suppression; a bare disable is itself a finding).
* **SVT006** :mod:`repro.lint.fastpath` — per-instruction loops in the
  modelling packages charge time via ``sim.charge`` instead of the
  heap-draining ``sim.advance`` (justified suppressions as in SVT005).

Run via ``python -m repro lint`` (see :mod:`repro.lint.cli`), ``make
lint``, or programmatically through :func:`lint_paths`.  Suppress a
deliberate exception inline with ``# svtlint: disable=SVT001`` (see
``docs/static-analysis.md``).
"""

from repro.lint.bounded import BoundedLoopRule
from repro.lint.cli import DEFAULT_RULES, main
from repro.lint.determinism import DeterminismRule
from repro.lint.engine import (
    Rule,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.fastpath import FastPathRule
from repro.lint.findings import Finding, findings_document
from repro.lint.frozen import FrozenResultRule
from repro.lint.poolsafety import PoolSafetyRule
from repro.lint.provenance import ProvenanceRule
from repro.lint.source import SourceFile, module_name_for

__all__ = [
    "BoundedLoopRule",
    "DEFAULT_RULES",
    "DeterminismRule",
    "FastPathRule",
    "Finding",
    "FrozenResultRule",
    "PoolSafetyRule",
    "ProvenanceRule",
    "Rule",
    "SourceFile",
    "findings_document",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "module_name_for",
]
