"""svtlint — AST-based invariant checker for the experiment runtime.

The runtime (``repro.exp``) promises byte-identical output at any
``--jobs`` count and fingerprint-keyed caching; this package encodes the
invariants behind those promises as machine-checked rules:

* **SVT001** :mod:`repro.lint.determinism` — no nondeterminism
  (unseeded randomness, wall-clock, environment, ``id()``, set order)
  under ``repro.exp`` / ``repro.sim`` / ``repro.workloads``.
* **SVT002** :mod:`repro.lint.provenance` — every numeric timing
  constant in the cost model cites the paper (``# paper: Table 1``).
* **SVT003** :mod:`repro.lint.poolsafety` — experiment cells don't
  write module globals or close over unpicklable state.
* **SVT004** :mod:`repro.lint.frozen` — nothing mutates a frozen
  ``Result`` after construction.
* **SVT005** :mod:`repro.lint.bounded` — ``while`` loops under
  ``repro.core`` carry a watchdog/cycle-budget identifier (or a
  *justified* inline suppression; a bare disable is itself a finding).
* **SVT006** :mod:`repro.lint.fastpath` — per-instruction loops in the
  modelling packages charge time via ``sim.charge`` instead of the
  heap-draining ``sim.advance`` (justified suppressions as in SVT005).
* **SVT007** :mod:`repro.lint.races` — whole-program sim-state race
  detector: shared core state (``cpu.context``/``cpu.prf``/
  ``virt.vmcs``/``core.channel``) must not be written from code
  reachable from more than one simulated context without an
  engine/channel/switch ordering call (lockset approximation over
  :mod:`repro.lint.graph`).
* **SVT008** :mod:`repro.lint.taint` — whole-program determinism
  taint: entropy (wall clock, ``os.urandom``, env, ``id()``, set
  order) must not flow into ``Result`` fields, cache fingerprints or
  serialized artifacts (:mod:`repro.lint.dataflow`; ``sim.rng`` is
  clean).
* **SVT009** :mod:`repro.lint.stale` — meta-diagnostic: ``disable``
  directives that no longer silence any finding are stale
  (``--no-stale`` opts out).

Run via ``python -m repro lint`` (see :mod:`repro.lint.cli`), ``make
lint``, or programmatically through :func:`lint_paths` /
:func:`lint_tree`.  Per-file results are memoized in
``.svtlint_cache/`` (:mod:`repro.lint.cache`).  Suppress a deliberate
exception inline with ``# svtlint: disable=SVT001`` (see
``docs/static-analysis.md``).
"""

from repro.lint.bounded import BoundedLoopRule
from repro.lint.cache import LintCache, ruleset_fingerprint
from repro.lint.cli import DEFAULT_RULES, main
from repro.lint.determinism import DeterminismRule
from repro.lint.engine import (
    LintReport,
    ProjectRule,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    lint_tree,
)
from repro.lint.fastpath import FastPathRule
from repro.lint.findings import (
    Finding,
    compute_stats,
    findings_document,
    render_stats_table,
)
from repro.lint.frozen import FrozenResultRule
from repro.lint.graph import ProjectGraph
from repro.lint.poolsafety import PoolSafetyRule
from repro.lint.provenance import ProvenanceRule
from repro.lint.races import SimStateRaceRule
from repro.lint.source import SourceFile, module_name_for
from repro.lint.stale import StaleSuppressionRule
from repro.lint.taint import DeterminismTaintRule

__all__ = [
    "BoundedLoopRule",
    "DEFAULT_RULES",
    "DeterminismRule",
    "DeterminismTaintRule",
    "FastPathRule",
    "Finding",
    "FrozenResultRule",
    "LintCache",
    "LintReport",
    "PoolSafetyRule",
    "ProjectGraph",
    "ProjectRule",
    "ProvenanceRule",
    "Rule",
    "SimStateRaceRule",
    "SourceFile",
    "StaleSuppressionRule",
    "compute_stats",
    "findings_document",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "main",
    "module_name_for",
    "render_stats_table",
    "ruleset_fingerprint",
]
