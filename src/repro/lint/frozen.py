"""SVT004 — ``Result`` objects are frozen; nothing mutates them.

Results flow from worker processes into the cache and the canonical
JSON document; the byte-identity and cache-correctness guarantees rest
on a result never changing after construction.  The dataclasses are
declared ``frozen=True``, but ``object.__setattr__`` (the documented
footgun, used legitimately inside ``__post_init__``) bypasses that at
runtime — so the rule closes the loophole statically.

Flagged everywhere under ``repro``:

* ``object.__setattr__(...)`` / ``setattr(...)`` outside constructor
  methods (``__init__``/``__post_init__``/``__new__``/``__setattr__``);
* attribute assignment (plain, augmented, or annotated) on a name bound
  earlier in the same function to a ``Result``/``Table``/``Row``/
  ``Series`` constructor or ``.merge(...)`` call;
* attribute assignment through a ``.result`` attribute access
  (``run.result.x = ...``).
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, package_scoped
from repro.lint.source import SourceFile

PACKAGES = ("repro",)

_CONSTRUCTOR_METHODS = {"__init__", "__post_init__", "__new__",
                        "__setattr__"}
_RESULT_TYPES = {"Result", "Table", "Row", "Series"}
_FACTORY_METHODS = {"create", "from_dict", "from_json", "merge"}


def _binds_result(value: ast.AST) -> bool:
    """Is this expression a Result-family constructor/factory call?"""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in _RESULT_TYPES
    if isinstance(func, ast.Attribute):
        if (isinstance(func.value, ast.Name)
                and func.value.id in _RESULT_TYPES
                and func.attr in _FACTORY_METHODS):
            return True
        return func.attr == "merge"
    return False


class FrozenResultRule(Rule):
    """SVT004: no attribute assignment on Result instances."""

    rule_id = "SVT004"
    title = "frozen-result mutation"

    def __init__(self) -> None:
        #: id(function node) -> names bound to Result-family values.
        self._bindings: dict[int, set[str]] = {}

    def applies(self, source: SourceFile) -> bool:
        return package_scoped(source, PACKAGES)

    def _bound_names(self, ctx: LintContext) -> set[str]:
        functions = ctx.enclosing_functions()
        if not functions:
            return self._bindings.setdefault(0, set())
        return self._bindings.setdefault(id(functions[-1]), set())

    # -- setattr escapes -------------------------------------------------

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        func = node.func
        is_object_setattr = (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        )
        is_builtin_setattr = (isinstance(func, ast.Name)
                              and func.id == "setattr")
        if not (is_object_setattr or is_builtin_setattr):
            return
        if ctx.enclosing_function_name() in _CONSTRUCTOR_METHODS:
            return
        what = ("object.__setattr__" if is_object_setattr
                else "setattr")
        ctx.report(self, node,
                   f"{what}() outside a constructor defeats frozen "
                   "dataclasses; build a new instance instead "
                   "(dataclasses.replace)")

    # -- tracked attribute stores ----------------------------------------

    def _check_target(self, target: ast.AST, ctx: LintContext) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if (isinstance(base, ast.Name)
                and base.id in self._bound_names(ctx)):
            ctx.report(self, target,
                       f"attribute assignment on {base.id!r}, a frozen "
                       "Result; use dataclasses.replace to derive a "
                       "new one")
        elif isinstance(base, ast.Attribute) and base.attr == "result":
            ctx.report(self, target,
                       "attribute assignment through '.result'; "
                       "Result instances are frozen")

    def visit_Assign(self, node: ast.Assign, ctx: LintContext) -> None:
        for target in node.targets:
            self._check_target(target, ctx)
        if _binds_result(node.value):
            names = self._bound_names(ctx)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)

    def visit_AnnAssign(self, node: ast.AnnAssign,
                        ctx: LintContext) -> None:
        self._check_target(node.target, ctx)
        if (node.value is not None and _binds_result(node.value)
                and isinstance(node.target, ast.Name)):
            self._bound_names(ctx).add(node.target.id)

    def visit_AugAssign(self, node: ast.AugAssign,
                        ctx: LintContext) -> None:
        self._check_target(node.target, ctx)
