"""SVT003 — experiment cells must be process-pool safe.

Cells fan out over a ``ProcessPoolExecutor``: each runs in a forked (or
spawned) worker whose module globals are a *copy*.  A cell that writes a
module global appears to work serially and under fork, then silently
loses the write in parallel runs — the classic hidden-state race the
runner's byte-identical guarantee cannot survive.  Payloads and cell
descriptors also cross the pool boundary by pickling, which lambdas and
other closures cannot do.

Flagged under ``repro.exp``:

* ``global`` / ``nonlocal`` declarations anywhere (a module-global
  write is the only reason to declare one);
* inside cell-path functions (``cells``/``run_cell``/``merge`` methods
  and the ``_execute_cell`` worker entry): mutation of a module-level
  binding — subscript/attribute stores, augmented assigns, and mutating
  method calls (``append``, ``update``, ``setdefault``, ...);
* ``lambda`` inside ``cells``/``run_cell`` — cell descriptors and
  payloads must be plain picklable data.
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, package_scoped
from repro.lint.source import SourceFile

PACKAGES = ("repro.exp",)

_CELL_METHODS = ("cells", "run_cell", "merge")
_WORKER_FUNCTIONS = ("_execute_cell",)
_MUTATORS = {
    "append", "add", "update", "extend", "insert", "setdefault",
    "pop", "popitem", "clear", "remove", "discard", "sort", "reverse",
    "__setitem__",
}


def _base_name(node: ast.AST) -> str:
    """The leftmost ``Name`` of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else ""


class PoolSafetyRule(Rule):
    """SVT003: no shared mutable state across the pool boundary."""

    rule_id = "SVT003"
    title = "process-pool safety"

    def __init__(self) -> None:
        self._module_names: set[str] = set()

    def applies(self, source: SourceFile) -> bool:
        return package_scoped(source, PACKAGES)

    def begin(self, ctx: LintContext) -> None:
        for stmt in ctx.source.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self._module_names.add(stmt.name)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    name = alias.asname or alias.name.split(".")[0]
                    self._module_names.add(name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            self._module_names.add(node.id)

    # -- scope test ------------------------------------------------------

    def _in_cell_path(self, ctx: LintContext) -> bool:
        if ctx.in_method_of_class(_CELL_METHODS):
            return True
        functions = ctx.enclosing_functions()
        return bool(functions) and functions[0].name in _WORKER_FUNCTIONS

    # -- declarations ----------------------------------------------------

    def visit_Global(self, node: ast.Global, ctx: LintContext) -> None:
        ctx.report(self, node,
                   f"global {', '.join(node.names)}: module-global "
                   "writes are lost in process-pool workers")

    def visit_Nonlocal(self, node: ast.Nonlocal,
                       ctx: LintContext) -> None:
        ctx.report(self, node,
                   f"nonlocal {', '.join(node.names)}: closure state "
                   "does not survive the process-pool boundary")

    # -- mutation of module-level bindings -------------------------------

    def _check_store(self, target: ast.AST, ctx: LintContext) -> None:
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        name = _base_name(target)
        if name in self._module_names:
            ctx.report(self, target,
                       f"cell code mutates module-level {name!r}; "
                       "workers mutate a copy, so the write is lost "
                       "under --jobs > 1")

    def visit_Assign(self, node: ast.Assign, ctx: LintContext) -> None:
        if self._in_cell_path(ctx):
            for target in node.targets:
                self._check_store(target, ctx)

    def visit_AugAssign(self, node: ast.AugAssign,
                        ctx: LintContext) -> None:
        if self._in_cell_path(ctx):
            self._check_store(node.target, ctx)

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        if not self._in_cell_path(ctx):
            return
        func = node.func
        if (isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and _base_name(func.value) in self._module_names):
            ctx.report(self, node,
                       f"cell code calls {_base_name(func.value)}."
                       f"{func.attr}() on a module-level object; "
                       "workers mutate a copy, so the write is lost "
                       "under --jobs > 1")

    # -- picklability ----------------------------------------------------

    def visit_Lambda(self, node: ast.Lambda, ctx: LintContext) -> None:
        if ctx.in_method_of_class(("cells", "run_cell")):
            ctx.report(self, node,
                       "lambda in a cell function: cell descriptors "
                       "and payloads must be plain picklable data")
