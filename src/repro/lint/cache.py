"""Incremental lint cache under ``.svtlint_cache/``.

``make lint`` runs on every push; most pushes touch a handful of
files.  The cache memoizes, per file, everything the per-file pass
produces (findings, suppression hits, the directive table — i.e. a
:class:`~repro.lint.engine.FileRecord`) keyed by

* the file's **content hash** (and its path, so identical content at
  two paths cannot alias),
* the **rule-set fingerprint** — a hash over the ``repro.lint``
  package's own sources plus the active rule ids, so editing any rule
  (or this module) invalidates everything.

Whole-program passes cannot be memoized per file: SVT007's
reachability depends on every edge in the batch.  Their results are
cached under a **tree hash** (every file's path + content hash, in
batch order) and invalidate when *any* file changes — the documented
"graph change invalidates project passes" contract.

Entries are standalone JSON files (``f-<key>.json`` /
``p-<key>.json``); a corrupt, unreadable or version-skewed entry is
treated as a miss and rewritten.  A fully warm run therefore only
reads and hashes sources — it never parses.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Optional

from repro.lint.engine import FileRecord, Rule
from repro.lint.findings import Finding
from repro.lint.source import ALL_RULES, SuppressionDirective

#: Bump when the entry layout changes; old entries become misses.
CACHE_VERSION = "svtlint-cache/1"

#: Default cache directory, relative to the invocation cwd.
DEFAULT_CACHE_DIR = Path(".svtlint_cache")


@lru_cache(maxsize=1)
def _package_fingerprint() -> str:
    """Hash of the ``repro.lint`` package's own sources."""
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


def ruleset_fingerprint(rule_types: Iterable[type[Rule]]) -> str:
    """Hash of the lint package sources + the active rule ids."""
    digest = hashlib.sha256()
    digest.update(_package_fingerprint().encode())
    for cls in sorted(rule_types, key=lambda c: (c.rule_id,
                                                 c.__name__)):
        digest.update(f"{cls.rule_id}:{cls.__name__}".encode())
    return digest.hexdigest()


def _content_hash(path: str, text: str) -> str:
    digest = hashlib.sha256()
    digest.update(path.encode())
    digest.update(b"\x00")
    digest.update(text.encode())
    return digest.hexdigest()


def _finding_to_list(finding: Finding) -> list[object]:
    return [finding.path, finding.line, finding.col, finding.rule,
            finding.message]


def _finding_from_list(raw: list[object]) -> Finding:
    path, line, col, rule, message = raw
    return Finding(path=str(path), line=int(line), col=int(col),  # type: ignore[call-overload]
                   rule=str(rule), message=str(message))


def _directive_to_list(directive: SuppressionDirective) -> list[object]:
    rules = (["*"] if directive.rules == ALL_RULES
             else sorted(directive.rules))
    return [directive.line, directive.target, rules]


def _directive_from_list(raw: list[object]) -> SuppressionDirective:
    line, target, rules = raw
    rule_set = (ALL_RULES if rules == ["*"]
                else frozenset(str(r) for r in rules))  # type: ignore[union-attr]
    return SuppressionDirective(line=int(line), target=int(target),  # type: ignore[call-overload]
                                rules=rule_set)


class LintCache:
    """Content-addressed memo of per-file and project lint results."""

    def __init__(self, directory: Path = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0
        #: path -> content hash, remembered across get/put calls this
        #: run so the project tree hash never re-reads a file.
        self._seen: dict[str, str] = {}

    # -- storage ---------------------------------------------------------

    def _entry_path(self, prefix: str, key: str) -> Path:
        return self.directory / f"{prefix}-{key[:40]}.json"

    def _load(self, prefix: str, key: str) -> Optional[dict[str, object]]:
        entry = self._entry_path(prefix, key)
        try:
            payload = json.loads(entry.read_text())
        except (OSError, ValueError):
            return None
        if (not isinstance(payload, dict)
                or payload.get("version") != CACHE_VERSION):
            return None
        return payload

    def _store(self, prefix: str, key: str,
               payload: dict[str, object]) -> None:
        payload["version"] = CACHE_VERSION
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = self._entry_path(prefix, key)
        tmp = entry.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, entry)

    # -- per-file pass ---------------------------------------------------

    def _file_key(self, path: str, text: str,
                  rule_types: Iterable[type[Rule]]) -> str:
        content = _content_hash(path, text)
        self._seen[path] = content
        fingerprint = ruleset_fingerprint(rule_types)
        return hashlib.sha256(
            f"{content}:{fingerprint}".encode()).hexdigest()

    def get_file(self, path: Path, text: str,
                 rule_types: list[type[Rule]],
                 ) -> Optional[FileRecord]:
        payload = self._load("f", self._file_key(str(path), text,
                                                 rule_types))
        if payload is None:
            self.misses += 1
            return None
        try:
            record = FileRecord(
                path=str(payload["path"]),
                module=str(payload["module"]),
                parse_ok=bool(payload["parse_ok"]),
                findings=[_finding_from_list(f)  # type: ignore[arg-type]
                          for f in payload["findings"]],
                hits={(int(line), str(rule))  # type: ignore[union-attr]
                      for line, rule in payload["hits"]},
                directives=tuple(
                    _directive_from_list(d)  # type: ignore[arg-type]
                    for d in payload["directives"]),
            )
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        if record.path != str(path):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put_file(self, text: str, rule_types: list[type[Rule]],
                 record: FileRecord) -> None:
        self._store("f", self._file_key(record.path, text, rule_types), {
            "path": record.path,
            "module": record.module,
            "parse_ok": record.parse_ok,
            "findings": [_finding_to_list(f) for f in record.findings],
            "hits": sorted([line, rule] for line, rule in record.hits),
            "directives": [_directive_to_list(d)
                           for d in record.directives],
        })

    # -- project pass ----------------------------------------------------

    def _project_key(self, records: list[FileRecord],
                     rules: list[Rule]) -> str:
        digest = hashlib.sha256()
        digest.update(ruleset_fingerprint(
            [type(r) for r in rules]).encode())
        for record in records:
            content = self._seen.get(record.path, "")
            digest.update(f"{record.path}:{content}\n".encode())
        return digest.hexdigest()

    def get_project(
            self, records: list[FileRecord], rules: list[Rule],
    ) -> Optional[tuple[list[Finding], dict[str, set[tuple[int, str]]]]]:
        payload = self._load("p", self._project_key(records, rules))
        if payload is None:
            return None
        try:
            findings = [_finding_from_list(f)  # type: ignore[arg-type]
                        for f in payload["findings"]]
            hits = {
                str(path): {(int(line), str(rule))
                            for line, rule in path_hits}
                for path, path_hits in
                payload["hits"].items()  # type: ignore[union-attr]
            }
        except (KeyError, TypeError, ValueError):
            return None
        return findings, hits

    def put_project(
            self, records: list[FileRecord], rules: list[Rule],
            value: tuple[list[Finding], dict[str, set[tuple[int, str]]]],
    ) -> None:
        findings, hits = value
        self._store("p", self._project_key(records, rules), {
            "findings": [_finding_to_list(f) for f in findings],
            "hits": {path: sorted([line, rule]
                                  for line, rule in path_hits)
                     for path, path_hits in hits.items()},
        })
