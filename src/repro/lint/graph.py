"""Project-wide symbol table, import map and call graph.

The per-file rules (SVT001–SVT006) see one file at a time; the race
and taint rules (SVT007/SVT008) need to reason about the whole batch:
*which function can be reached from which simulated context*, and
*where does a value produced here flow*.  :class:`ProjectGraph` is the
shared substrate both build on:

* a **symbol table** — every module, class (with its instance-field
  set and method map) and function, keyed by dotted qualname
  (``repro.cpu.smt.SmtCore._switch_fetch``);
* an **import map** — per module, local alias -> imported target,
  resolved against the batch so cross-module calls link up;
* a **call graph** — direct calls resolve through the import map and
  ``self``; attribute calls fall back to class-hierarchy-analysis by
  method name (every class in the batch defining that method), which
  over-approximates but never misses an edge.  Function *references*
  passed as call arguments (event callbacks handed to ``sim.at`` /
  ``sim.after``) also become edges, so code scheduled onto the event
  loop stays reachable;
* **reachability** — BFS over the call graph from configurable
  context roots (module prefixes), yielding the set of context labels
  under which each function may run.

Everything is a deterministic function of the parsed sources: sorted
iteration everywhere, no hashing of live objects — the lint cache
fingerprints the batch by content, so graph construction must be
reproducible byte-for-byte.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.lint.source import SourceFile

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class FunctionInfo:
    """One function or method in the batch."""

    qualname: str
    module: str
    name: str
    cls: Optional[str]  # owning class qualname, if a method
    node: FunctionNode
    source: SourceFile


@dataclass
class ClassInfo:
    """One class: its instance fields and method map."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    source: SourceFile
    #: Instance attributes assigned anywhere in the class body
    #: (``self.x = ...`` in any method, plus annotated class fields).
    fields: set[str] = field(default_factory=set)
    #: method name -> function qualname.
    methods: dict[str, str] = field(default_factory=dict)
    #: Methods that write at least one of ``fields`` through ``self``.
    mutators: set[str] = field(default_factory=set)


def _terminal_name(expr: ast.AST) -> str:
    """The rightmost identifier of a receiver expression.

    ``vmcs02`` for ``self.vmcs02``, ``ring`` for ``ring``, ``""`` for
    anything without a terminal name (calls, subscripts, literals).
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


class ProjectGraph:
    """Symbol table + import map + call graph over one lint batch."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.sources: dict[str, SourceFile] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: module -> {local alias: dotted target}.  Targets are either
        #: module names (``import a.b as c``) or ``module.symbol``
        #: (``from a.b import c``); only resolved lazily against the
        #: batch, so external imports stay inert.
        self.imports: dict[str, dict[str, str]] = {}
        #: caller qualname -> sorted callee qualnames.
        self.calls: dict[str, list[str]] = {}
        #: method name -> sorted function qualnames (CHA index).
        self.methods_by_name: dict[str, list[str]] = {}
        #: module -> names defined at module top level.
        self._module_defs: dict[str, dict[str, str]] = {}

        for source in sorted(sources, key=lambda s: s.module):
            if source.module in self.sources:
                continue
            self.sources[source.module] = source
            self._collect_module(source)
        self._link_calls()

    # -- construction ----------------------------------------------------

    def _collect_module(self, source: SourceFile) -> None:
        module = source.module
        self.imports[module] = {}
        self._module_defs[module] = {}
        for stmt in ast.walk(source.tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = (alias.name if alias.asname
                              else alias.name.split(".")[0])
                    self.imports[module][local] = target
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module is None or stmt.level:
                    continue  # relative imports are not used in-tree
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    self.imports[module][local] = (
                        f"{stmt.module}.{alias.name}")
        self._collect_scope(source, source.tree, prefix=module,
                            cls=None)

    def _collect_scope(self, source: SourceFile, node: ast.AST,
                       prefix: str, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                info = FunctionInfo(
                    qualname=qualname, module=source.module,
                    name=child.name, cls=cls, node=child,
                    source=source)
                self.functions[qualname] = info
                if cls is None and prefix == source.module:
                    self._module_defs[source.module][child.name] = \
                        qualname
                if cls is not None:
                    owner = self.classes[cls]
                    owner.methods.setdefault(child.name, qualname)
                self._collect_scope(source, child, prefix=qualname,
                                    cls=cls)
            elif isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}"
                self.classes[qualname] = ClassInfo(
                    qualname=qualname, module=source.module,
                    name=child.name, node=child, source=source)
                if prefix == source.module:
                    self._module_defs[source.module][child.name] = \
                        qualname
                self._collect_scope(source, child, prefix=qualname,
                                    cls=qualname)
            else:
                self._collect_scope(source, child, prefix=prefix,
                                    cls=cls)

    def _link_calls(self) -> None:
        # Field/mutator discovery first, so CHA has complete indexes.
        for info in self.classes.values():
            self._collect_fields(info)
        for qualname in sorted(self.functions):
            name = self.functions[qualname].name
            self.methods_by_name.setdefault(name, []).append(qualname)
        for name in self.methods_by_name:
            self.methods_by_name[name].sort()
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            callees: set[str] = set()
            for node in self._own_nodes(info.node):
                if isinstance(node, ast.Call):
                    callees.update(self._resolve_call(info, node))
                    for arg in list(node.args) + [
                            kw.value for kw in node.keywords]:
                        ref = self._resolve_reference(info, arg)
                        if ref is not None:
                            callees.add(ref)
            callees.discard(qualname)
            self.calls[qualname] = sorted(callees)

    def _collect_fields(self, info: ClassInfo) -> None:
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                info.fields.add(stmt.target.id)
        for method_name, qualname in info.methods.items():
            func = self.functions[qualname]
            for node in ast.walk(func.node):
                target: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        self._note_self_write(info, method_name, tgt)
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                if target is not None:
                    self._note_self_write(info, method_name, target)

    @staticmethod
    def _note_self_write(info: ClassInfo, method: str,
                         target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                ProjectGraph._note_self_write(info, method, element)
            return
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            info.fields.add(target.attr)
            info.mutators.add(method)

    def _own_nodes(self, func: FunctionNode) -> Iterable[ast.AST]:
        """Walk a function body without descending into nested defs."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- resolution ------------------------------------------------------

    def resolve_name(self, module: str, name: str) -> Optional[str]:
        """A bare name in ``module`` -> qualname in the batch, if any."""
        defs = self._module_defs.get(module, {})
        if name in defs:
            return defs[name]
        target = self.imports.get(module, {}).get(name)
        if target is None:
            return None
        if target in self.functions or target in self.classes:
            return target
        return None

    def _constructor_of(self, class_qualname: str) -> Optional[str]:
        cls = self.classes.get(class_qualname)
        if cls is None:
            return None
        return cls.methods.get("__init__")

    def _resolve_call(self, caller: FunctionInfo,
                      node: ast.Call) -> set[str]:
        func = node.func
        out: set[str] = set()
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(caller.module, func.id)
            if resolved is None:
                return out
            if resolved in self.classes:
                ctor = self._constructor_of(resolved)
                if ctor is not None:
                    out.add(ctor)
            else:
                out.add(resolved)
            return out
        if not isinstance(func, ast.Attribute):
            return out
        base = func.value
        # self.method() — resolve within the owning class first.
        if (isinstance(base, ast.Name) and base.id == "self"
                and caller.cls is not None):
            owner = self.classes.get(caller.cls)
            if owner is not None and func.attr in owner.methods:
                out.add(owner.methods[func.attr])
                return out
        # module.function() through the import map.
        if isinstance(base, ast.Name):
            target = self.imports.get(caller.module, {}).get(base.id)
            if target is not None:
                dotted = f"{target}.{func.attr}"
                if dotted in self.functions:
                    out.add(dotted)
                    return out
                if dotted in self.classes:
                    ctor = self._constructor_of(dotted)
                    if ctor is not None:
                        out.add(ctor)
                    return out
        # obj.method() — CHA over every class defining the name.
        out.update(self.methods_by_name.get(func.attr, ()))
        return out

    def _resolve_reference(self, caller: FunctionInfo,
                           arg: ast.expr) -> Optional[str]:
        """A function passed by reference (callback) -> its qualname."""
        if isinstance(arg, ast.Name):
            resolved = self.resolve_name(caller.module, arg.id)
            if resolved in self.functions:
                return resolved
            return None
        if (isinstance(arg, ast.Attribute)
                and isinstance(arg.value, ast.Name)
                and arg.value.id == "self" and caller.cls is not None):
            owner = self.classes.get(caller.cls)
            if owner is not None and arg.attr in owner.methods:
                return owner.methods[arg.attr]
        return None

    # -- queries ---------------------------------------------------------

    def functions_in(self, prefixes: Iterable[str]) -> list[str]:
        """Qualnames of functions whose module matches a prefix."""
        prefix_list = tuple(prefixes)
        return sorted(
            qualname for qualname, info in self.functions.items()
            if any(info.module == p or info.module.startswith(p + ".")
                   for p in prefix_list))

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Every function reachable (inclusive) from ``roots``."""
        seen: set[str] = set()
        frontier = [r for r in roots if r in self.functions]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(c for c in self.calls.get(current, ())
                            if c not in seen)
        return seen

    def context_labels(
            self, roots: Mapping[str, Sequence[str]],
    ) -> dict[str, frozenset[str]]:
        """Label every function with the context roots that reach it.

        ``roots`` maps a context label to module prefixes; the result
        maps each function qualname to the (possibly empty) set of
        labels whose root functions reach it.
        """
        labels: dict[str, set[str]] = {q: set() for q in self.functions}
        for label in sorted(roots):
            for qualname in self.reachable_from(
                    self.functions_in(roots[label])):
                labels[qualname].add(label)
        return {q: frozenset(s) for q, s in labels.items()}
