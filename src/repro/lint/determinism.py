"""SVT001 — nondeterminism in experiment/simulator/workload code.

The experiment runtime promises byte-identical output at any ``--jobs``
count and caches results under content-derived keys.  Both guarantees
die silently the moment a cell consults anything outside its declared
parameters: the process-global ``random`` module (differently seeded in
every pool worker), wall-clock reads, environment variables, CPython
allocation addresses (``id()``), or set iteration order (hash-seed
dependent for str keys).

Flagged under ``repro.exp``, ``repro.fuzz``, ``repro.obs``,
``repro.sim`` and ``repro.workloads``:

* module-level ``random.*`` calls and ``from random import ...`` of
  anything but the seedable ``Random``/``SystemRandom`` classes — use a
  :class:`repro.sim.rng.DeterministicRng` seeded from cell params;
* wall-clock reads: ``time.time``/``time_ns``/``perf_counter``/
  ``monotonic``/``localtime``/``gmtime``/``ctime``, ``datetime.now``/
  ``utcnow``/``today``/``fromtimestamp`` (suppress the diagnostic uses
  that provably stay out of result documents);
* ``os.environ`` / ``os.getenv`` reads — results must be functions of
  declared parameters only;
* any ``id()`` call — allocation order leaks into output;
* iterating a set (``for``/comprehension) or materializing one in an
  order-sensitive consumer (``list``/``tuple``/``enumerate``/``iter``/
  ``reversed``/``str.join``) without ``sorted()``.
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, package_scoped
from repro.lint.source import SourceFile

PACKAGES = ("repro.exp", "repro.fuzz", "repro.obs", "repro.sim",
            "repro.workloads")

_RANDOM_ALLOWED = {"Random", "SystemRandom"}
_TIME_FORBIDDEN = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "localtime", "gmtime", "ctime",
    "asctime",
}
_DATETIME_FORBIDDEN = {"now", "utcnow", "today", "fromtimestamp"}
#: Consumers whose output depends on the order of the iterable.
_ORDER_SENSITIVE = {"list", "tuple", "enumerate", "iter", "reversed"}


def _is_unordered(node: ast.AST) -> bool:
    """Does this expression produce a set (iteration order unstable)?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class DeterminismRule(Rule):
    """SVT001: no wall clock, global RNG, env or set-order in results."""

    rule_id = "SVT001"
    title = "nondeterminism"

    def applies(self, source: SourceFile) -> bool:
        return package_scoped(source, PACKAGES)

    # -- imports ---------------------------------------------------------

    def visit_ImportFrom(self, node: ast.ImportFrom,
                         ctx: LintContext) -> None:
        if node.module == "random":
            bad = [alias.name for alias in node.names
                   if alias.name not in _RANDOM_ALLOWED]
            if bad:
                ctx.report(self, node,
                           f"importing {', '.join(bad)} from the "
                           "process-global random module; use a seeded "
                           "repro.sim.rng.DeterministicRng")
        elif node.module == "os":
            bad = [alias.name for alias in node.names
                   if alias.name in ("environ", "getenv", "getenvb")]
            if bad:
                ctx.report(self, node,
                           f"importing {', '.join(bad)}: environment "
                           "reads make results depend on ambient state")
        elif node.module == "time":
            bad = [alias.name for alias in node.names
                   if alias.name in _TIME_FORBIDDEN]
            if bad:
                ctx.report(self, node,
                           f"importing {', '.join(bad)}: wall-clock "
                           "reads are nondeterministic")

    # -- calls -----------------------------------------------------------

    def visit_Call(self, node: ast.Call, ctx: LintContext) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                ctx.report(self, node,
                           "id() exposes CPython allocation order; key "
                           "by a stable identifier instead")
            elif (func.id in _ORDER_SENSITIVE and node.args
                    and _is_unordered(node.args[0])):
                ctx.report(self, node,
                           f"{func.id}() over a set depends on hash "
                           "order; wrap the set in sorted()")
            return
        if not isinstance(func, ast.Attribute):
            return
        if (func.attr == "join" and node.args
                and _is_unordered(node.args[0])):
            ctx.report(self, node,
                       "join() over a set depends on hash order; wrap "
                       "the set in sorted()")
        base = func.value
        if not isinstance(base, ast.Name):
            # datetime.datetime.now(...) — one level deeper.
            if (isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "datetime"
                    and func.attr in _DATETIME_FORBIDDEN):
                ctx.report(self, node,
                           f"datetime.{base.attr}.{func.attr}() is a "
                           "wall-clock read")
            return
        if base.id == "random" and func.attr not in _RANDOM_ALLOWED:
            ctx.report(self, node,
                       f"unseeded module-level random.{func.attr}(); "
                       "use a seeded repro.sim.rng.DeterministicRng")
        elif base.id == "time" and func.attr in _TIME_FORBIDDEN:
            ctx.report(self, node,
                       f"time.{func.attr}() is a wall-clock read; "
                       "results must not depend on it")
        elif (base.id in ("datetime", "date")
                and func.attr in _DATETIME_FORBIDDEN):
            ctx.report(self, node,
                       f"{base.id}.{func.attr}() is a wall-clock read")
        elif base.id == "os" and func.attr in ("getenv", "getenvb"):
            ctx.report(self, node,
                       f"os.{func.attr}() reads ambient environment "
                       "state")

    # -- attribute reads -------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute,
                        ctx: LintContext) -> None:
        if (isinstance(node.value, ast.Name)
                and node.value.id == "os" and node.attr == "environ"):
            ctx.report(self, node,
                       "os.environ reads ambient environment state")

    # -- set iteration ---------------------------------------------------

    def visit_For(self, node: ast.For, ctx: LintContext) -> None:
        if _is_unordered(node.iter):
            ctx.report(self, node.iter,
                       "iterating a set depends on hash order; use "
                       "sorted()")

    def visit_comprehension(self, node: ast.comprehension,
                            ctx: LintContext) -> None:
        if _is_unordered(node.iter):
            ctx.report(self, node.iter,
                       "comprehension over a set depends on hash "
                       "order; use sorted()")
