"""SVT008 — determinism taint: entropy must not reach artifacts.

The runtime's byte-identity promise (docs/static-analysis.md) is a
*dataflow* property: it does not matter that ``time.perf_counter()``
exists in the tree (the bench harness measures wall clock on
purpose) — it matters whether such a value can *flow into* anything
the runtime treats as reproducible output.  SVT001 flags the sources
per file; this rule follows the values through the whole program
(:mod:`repro.lint.dataflow`) and fires only at the sinks:

* **Result fields** — arguments of any ``*Result`` constructor;
* **cache fingerprints** — arguments of any ``*fingerprint*`` call
  and of ``store``/``key``/``put`` methods on cache-named receivers;
* **serialized artifacts** — arguments of ``canonical_json`` (every
  BENCH/DSE/chaos artifact funnels through it).

Tainted: ``os.urandom``, ``time.*`` wall-clock reads, ``id()``,
environment reads, module-level ``random.*``, ``uuid``/``secrets``,
and set/dict-order-dependent materialization.  Clean: anything
derived from the seeded ``sim.rng`` (``DeterministicRng``), and
``sorted()`` launders set-order taint.  Returns-tainted summaries
propagate through precisely-resolved calls, so a helper that returns
``time.time()`` taints its callers.
"""

from __future__ import annotations

import ast

from repro.lint.dataflow import ProjectTaint, Taint
from repro.lint.engine import ProjectContext, ProjectRule
from repro.lint.graph import FunctionInfo, ProjectGraph, _terminal_name

#: Method names that write into a cache when the receiver is a cache.
CACHE_METHODS = frozenset({"store", "key", "put"})


def _sink_kind(node: ast.Call) -> str:
    """Classify a call as a sink; empty string when it is not one."""
    func = node.func
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name.endswith("Result"):
        return "Result constructor"
    if "fingerprint" in name.lower():
        return "cache fingerprint"
    if name == "canonical_json":
        return "serialized artifact"
    if (isinstance(func, ast.Attribute) and name in CACHE_METHODS
            and "cache" in _terminal_name(func.value).lower()):
        return "cache entry"
    return ""


def _describe(taints: frozenset[Taint]) -> str:
    return ", ".join(f"{t.kind} (line {t.line})"
                     for t in sorted(taints))


class DeterminismTaintRule(ProjectRule):
    """SVT008: tainted values must not flow into Results or caches."""

    rule_id = "SVT008"
    title = "determinism taint"

    def check_project(self, graph: ProjectGraph,
                      ctx: ProjectContext) -> None:
        taint = ProjectTaint(graph)
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            self._check_function(info, taint, ctx)

    def _check_function(self, info: FunctionInfo, taint: ProjectTaint,
                        ctx: ProjectContext) -> None:
        def on_call(node: ast.Call,
                    arg_taints: list[frozenset[Taint]],
                    kw_taints: dict[str, frozenset[Taint]],
                    ) -> None:
            sink = _sink_kind(node)
            if not sink:
                return
            merged: set[Taint] = set()
            for taints in arg_taints:
                merged.update(taints)
            for taints in kw_taints.values():
                merged.update(taints)
            if not merged:
                return
            ctx.report(
                self, info.source, node,
                f"value tainted by {_describe(frozenset(merged))} "
                f"flows into a {sink} in '{info.name}'; derive it "
                "from declared parameters or sim.rng, or justify "
                "('# svtlint: disable=SVT008 — ...')",
            )

        taint.evaluate(info, on_call)
