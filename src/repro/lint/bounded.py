"""SVT005 — unbounded ``while`` loops in the core protocol code.

The chaos layer (``docs/robustness.md``) guarantees that every blocking
wait in ``repro.core`` either recovers, degrades, or raises a structured
:class:`~repro.errors.DeadlockError` — never hangs.  That guarantee is
only as strong as the loops underneath it: a retry/drain loop with no
watchdog, cycle budget, or deadline can spin forever the moment a fault
plan (or a bug) starves its exit condition.  The serve tier
(``repro.serve``, docs/serving.md) makes the same promise to its
clients — per-request deadlines and capped crash retries — so it is
held to the same rule.

The rule flags every ``while`` statement under a ``PACKAGES`` tree whose
test *and* body mention no budget-ish identifier (``watchdog``,
``budget``, ``deadline``, ``limit``, ``strike``, ``timeout``, ...; see
``BUDGET_TOKENS``).  Loops that are structurally bounded for a subtler
reason (e.g. every iteration pops a finite ring and the empty ring
raises) must say so: a bare ``# svtlint: disable=SVT005`` is itself a
finding — the suppression comment must carry a justification after the
directive, e.g.::

    # svtlint: disable=SVT005 — bounded: each iteration pops one
    # entry; an empty ring raises ChannelError.
    while True:
        ...
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, Rule, package_scoped
from repro.lint.source import SourceFile, suppression_justified

PACKAGES = ("repro.core", "repro.serve")

#: Substrings whose presence in an identifier marks the loop as guarded
#: by some finite resource (case-insensitive).
BUDGET_TOKENS = (
    "watchdog", "budget", "deadline", "limit", "strike", "timeout",
    "retr", "remain", "attempt", "drain", "spin", "countdown",
    "fuel", "max_", "_max", "exhaust",
)

#: Minimum justification length (after stripping punctuation) for a
#: ``disable=SVT005`` comment to count as explained.
MIN_JUSTIFICATION = 8


def _identifiers(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(sub.name)
    return names


def _mentions_budget(node: ast.AST) -> bool:
    return any(token in name.lower()
               for name in _identifiers(node)
               for token in BUDGET_TOKENS)


class BoundedLoopRule(Rule):
    """SVT005: while loops in repro.core need a cycle budget or watchdog."""

    rule_id = "SVT005"
    title = "unbounded loop"

    def applies(self, source: SourceFile) -> bool:
        return package_scoped(source, PACKAGES)

    def visit_While(self, node: ast.While, ctx: LintContext) -> None:
        if _mentions_budget(node.test):
            return
        if any(_mentions_budget(stmt) for stmt in node.body):
            return
        line = node.lineno
        if ctx.source.suppressed(line, self.rule_id):
            # The directive is live either way (it silences the loop
            # finding); record the hit so SVT009 never calls it stale.
            ctx.note_suppressed(line, self.rule_id)
            if suppression_justified(ctx.source, line,
                                     MIN_JUSTIFICATION):
                return
            ctx.report(
                self, node,
                "unbounded while loop suppressed without justification; "
                "explain the bound after the directive (e.g. "
                "'# svtlint: disable=SVT005 — bounded: ...')",
                force=True,
            )
            return
        ctx.report(
            self, node,
            "while loop with no watchdog/cycle-budget identifier in its "
            "test or body can hang under fault injection; bound it or "
            "add a justified '# svtlint: disable=SVT005 — ...' comment",
        )
