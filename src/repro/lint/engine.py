"""The shared AST walk that drives every rule.

One file is parsed once and walked once; each rule is a visitor object
dispatched per node (``visit_Call``, ``visit_For``, ...), so adding a
rule never adds another pass over the tree.  The walker maintains the
lexical scope stack (module / class / function nesting) that the
pool-safety and frozen-result rules need, and applies the suppression
index before findings escape a file.

Exit-code contract (shared with the CLI): findings are the *only*
success-path output; a file that fails to parse yields a single
``SVT000`` finding rather than aborting the batch, so CI always sees
every problem in one run.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.lint.findings import Finding
from repro.lint.source import SourceFile

ScopeNode = Union[ast.Module, ast.ClassDef, ast.FunctionDef,
                  ast.AsyncFunctionDef, ast.Lambda]

_SCOPE_TYPES = (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef,
                ast.Lambda)


class LintContext:
    """What a rule sees while visiting one file."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.scopes: list[ScopeNode] = []
        self._findings: list[Finding] = []

    # -- reporting -------------------------------------------------------

    def report(self, rule: "Rule", node: ast.AST, message: str,
               force: bool = False) -> None:
        """Record a finding unless an inline suppression covers it.

        ``force=True`` bypasses the suppression index — for findings
        *about* a suppression (e.g. SVT005's unjustified-disable check,
        which must not be silenced by the very comment it questions).
        """
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if not force and self.source.suppressed(line, rule.rule_id):
            return
        self._findings.append(Finding(
            path=str(self.source.path),
            line=line,
            col=col,
            rule=rule.rule_id,
            message=message,
        ))

    @property
    def findings(self) -> list[Finding]:
        return list(self._findings)

    # -- scope helpers ---------------------------------------------------

    def enclosing_functions(self) -> list[ast.FunctionDef]:
        """Innermost-last stack of enclosing named functions."""
        return [scope for scope in self.scopes
                if isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]

    def enclosing_function_name(self) -> str:
        functions = self.enclosing_functions()
        return functions[-1].name if functions else ""

    def in_method_of_class(self, method_names: Iterable[str]) -> bool:
        """True when visiting inside ``class C: def <name>``."""
        wanted = set(method_names)
        for index, scope in enumerate(self.scopes):
            if (isinstance(scope, (ast.FunctionDef,
                                   ast.AsyncFunctionDef))
                    and scope.name in wanted and index > 0
                    and isinstance(self.scopes[index - 1],
                                   ast.ClassDef)):
                return True
        return False

    def at_class_or_module_level(self) -> bool:
        """No enclosing function — class bodies and module toplevel."""
        return not self.enclosing_functions()


class Rule:
    """Base class: a rule id, a scope predicate, and node visitors."""

    rule_id = "SVT000"
    title = "internal"

    def applies(self, source: SourceFile) -> bool:
        return True

    def begin(self, ctx: LintContext) -> None:
        """Called once per file before the walk (precompute state)."""

    def finish(self, ctx: LintContext) -> None:
        """Called once per file after the walk."""


def _in_packages(module: str, packages: Iterable[str]) -> bool:
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in packages)


def package_scoped(source: SourceFile,
                   packages: Iterable[str]) -> bool:
    """Shared scope predicate: module lives under one of ``packages``."""
    return _in_packages(source.module, packages)


def _walk(node: ast.AST, ctx: LintContext,
          rules: list[tuple[Rule, dict[str, Callable[..., None]]]],
          ) -> None:
    kind = type(node).__name__
    for rule, visitors in rules:
        visitor = visitors.get(kind)
        if visitor is not None:
            visitor(node, ctx)
    is_scope = isinstance(node, _SCOPE_TYPES)
    if is_scope:
        ctx.scopes.append(node)  # type: ignore[arg-type]
    for child in ast.iter_child_nodes(node):
        _walk(child, ctx, rules)
    if is_scope:
        ctx.scopes.pop()


def lint_source(source: SourceFile,
                rules: Iterable[Rule]) -> list[Finding]:
    """Run every applicable rule over one parsed file."""
    active = [rule for rule in rules if rule.applies(source)]
    if not active:
        return []
    ctx = LintContext(source)
    table = []
    for rule in active:
        visitors = {
            name[len("visit_"):]: getattr(rule, name)
            for name in dir(rule) if name.startswith("visit_")
        }
        table.append((rule, visitors))
        rule.begin(ctx)
    _walk(source.tree, ctx, table)
    for rule in active:
        rule.finish(ctx)
    return sorted(ctx.findings)


def lint_file(path: Path, rules: Iterable[Rule],
              module: Optional[str] = None) -> list[Finding]:
    """Lint one file; a parse failure becomes an SVT000 finding."""
    try:
        source = SourceFile(path, module=module)
    except SyntaxError as err:
        return [Finding(path=str(path), line=err.lineno or 1,
                        col=(err.offset or 0) + 1, rule="SVT000",
                        message=f"syntax error: {err.msg}")]
    return lint_source(source, rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    seen: set[Path] = set()
    expanded: list[Path] = []
    for path in paths:
        path = Path(path)
        candidates = (sorted(path.rglob("*.py")) if path.is_dir()
                      else [path])
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                expanded.append(candidate)
    return iter(sorted(expanded))


def lint_paths(paths: Iterable[Path],
               rules: Iterable[Rule]) -> list[Finding]:
    """Lint every ``*.py`` under ``paths`` with fresh rule instances."""
    findings: list[Finding] = []
    rule_types = [type(rule) for rule in rules]
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, [cls() for cls in rule_types]))
    return sorted(findings)
