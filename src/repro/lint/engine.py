"""The shared AST walk that drives every rule.

One file is parsed once and walked once; each per-file rule is a
visitor object dispatched per node (``visit_Call``, ``visit_For``,
...), so adding a rule never adds another pass over the tree.  The
walker maintains the lexical scope stack (module / class / function
nesting) that the pool-safety and frozen-result rules need, and
applies the suppression index before findings escape a file.

Whole-program rules (:class:`ProjectRule`) opt out of the per-file
walk: after every file is parsed, the engine builds one
:class:`repro.lint.graph.ProjectGraph` over the batch and hands it to
``check_project`` together with a :class:`ProjectContext` reporter
that routes findings back through each file's suppression index.
:func:`lint_tree` orchestrates both passes (plus the SVT009
stale-suppression meta-pass and the incremental cache) and returns a
:class:`LintReport`; :func:`lint_paths` remains the thin
findings-only wrapper older callers use.

Exit-code contract (shared with the CLI): findings are the *only*
success-path output; a file that fails to parse yields a single
``SVT000`` finding rather than aborting the batch, so CI always sees
every problem in one run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Callable, Iterable, Iterator,
                    Optional, Union)

from repro.lint.findings import Finding
from repro.lint.source import ALL_RULES, SourceFile, SuppressionDirective

if TYPE_CHECKING:  # pragma: no cover — import-cycle breakers only
    from repro.lint.cache import LintCache
    from repro.lint.graph import ProjectGraph

ScopeNode = Union[ast.Module, ast.ClassDef, ast.FunctionDef,
                  ast.AsyncFunctionDef, ast.Lambda]

_SCOPE_TYPES = (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef,
                ast.Lambda)


class LintContext:
    """What a rule sees while visiting one file."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.scopes: list[ScopeNode] = []
        self._findings: list[Finding] = []
        self.suppressed_hits: set[tuple[int, str]] = set()

    # -- reporting -------------------------------------------------------

    def report(self, rule: "Rule", node: ast.AST, message: str,
               force: bool = False) -> None:
        """Record a finding unless an inline suppression covers it.

        ``force=True`` bypasses the suppression index — for findings
        *about* a suppression (e.g. SVT005's unjustified-disable check,
        which must not be silenced by the very comment it questions).
        """
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if not force and self.source.suppressed(line, rule.rule_id):
            self.suppressed_hits.add((line, rule.rule_id))
            return
        self._findings.append(Finding(
            path=str(self.source.path),
            line=line,
            col=col,
            rule=rule.rule_id,
            message=message,
        ))

    def note_suppressed(self, line: int, rule_id: str) -> None:
        """Record a suppression hit without going through ``report``.

        Rules that consult ``source.suppressed`` themselves (the
        justified-suppression dance in SVT005/SVT006) call this so the
        stale-suppression pass knows the directive is live.
        """
        self.suppressed_hits.add((line, rule_id))

    @property
    def findings(self) -> list[Finding]:
        return list(self._findings)

    # -- scope helpers ---------------------------------------------------

    def enclosing_functions(self) -> list[ast.FunctionDef]:
        """Innermost-last stack of enclosing named functions."""
        return [scope for scope in self.scopes
                if isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef))]

    def enclosing_function_name(self) -> str:
        functions = self.enclosing_functions()
        return functions[-1].name if functions else ""

    def in_method_of_class(self, method_names: Iterable[str]) -> bool:
        """True when visiting inside ``class C: def <name>``."""
        wanted = set(method_names)
        for index, scope in enumerate(self.scopes):
            if (isinstance(scope, (ast.FunctionDef,
                                   ast.AsyncFunctionDef))
                    and scope.name in wanted and index > 0
                    and isinstance(self.scopes[index - 1],
                                   ast.ClassDef)):
                return True
        return False

    def at_class_or_module_level(self) -> bool:
        """No enclosing function — class bodies and module toplevel."""
        return not self.enclosing_functions()


class Rule:
    """Base class: a rule id, a scope predicate, and node visitors."""

    rule_id = "SVT000"
    title = "internal"
    #: Whole-program rules set this; the engine skips the per-file walk
    #: for them and calls ``check_project`` instead.
    project = False
    #: The SVT009 stale-suppression meta-pass sets this; it runs last,
    #: over the suppressed-hit index the other rules produced.
    meta_stale = False

    def applies(self, source: SourceFile) -> bool:
        return True

    def begin(self, ctx: LintContext) -> None:
        """Called once per file before the walk (precompute state)."""

    def finish(self, ctx: LintContext) -> None:
        """Called once per file after the walk."""


class ProjectContext:
    """Reporter for whole-program rules.

    Routes each finding through the owning file's suppression index
    (same semantics as :meth:`LintContext.report`) and records
    suppressed hits per path so SVT009 and ``--stats`` see them.
    """

    def __init__(self, sources: dict[str, SourceFile]) -> None:
        self._sources = sources
        self.findings: list[Finding] = []
        self.hits: dict[str, set[tuple[int, str]]] = {}

    def report(self, rule: Rule, source: SourceFile, node: ast.AST,
               message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        path = str(source.path)
        if source.suppressed(line, rule.rule_id):
            self.hits.setdefault(path, set()).add((line, rule.rule_id))
            return
        self.findings.append(Finding(
            path=path, line=line, col=col, rule=rule.rule_id,
            message=message,
        ))


class ProjectRule(Rule):
    """A rule that analyzes the whole batch at once.

    Subclasses implement ``check_project``; ``graph`` is built once per
    :func:`lint_tree` run over every file that parsed.
    """

    project = True

    def check_project(self, graph: "ProjectGraph",
                      ctx: ProjectContext) -> None:
        raise NotImplementedError


def _in_packages(module: str, packages: Iterable[str]) -> bool:
    return any(module == pkg or module.startswith(pkg + ".")
               for pkg in packages)


def package_scoped(source: SourceFile,
                   packages: Iterable[str]) -> bool:
    """Shared scope predicate: module lives under one of ``packages``."""
    return _in_packages(source.module, packages)


def _walk(node: ast.AST, ctx: LintContext,
          rules: list[tuple[Rule, dict[str, Callable[..., None]]]],
          ) -> None:
    kind = type(node).__name__
    for rule, visitors in rules:
        visitor = visitors.get(kind)
        if visitor is not None:
            visitor(node, ctx)
    is_scope = isinstance(node, _SCOPE_TYPES)
    if is_scope:
        ctx.scopes.append(node)  # type: ignore[arg-type]
    for child in ast.iter_child_nodes(node):
        _walk(child, ctx, rules)
    if is_scope:
        ctx.scopes.pop()


def _run_file_rules(source: SourceFile,
                    rules: Iterable[Rule]) -> LintContext:
    """Run every applicable per-file rule; return the filled context."""
    ctx = LintContext(source)
    active = [rule for rule in rules
              if not rule.project and not rule.meta_stale
              and rule.applies(source)]
    if not active:
        return ctx
    table = []
    for rule in active:
        visitors = {
            name[len("visit_"):]: getattr(rule, name)
            for name in dir(rule) if name.startswith("visit_")
        }
        table.append((rule, visitors))
        rule.begin(ctx)
    _walk(source.tree, ctx, table)
    for rule in active:
        rule.finish(ctx)
    return ctx


def lint_source(source: SourceFile,
                rules: Iterable[Rule]) -> list[Finding]:
    """Run every applicable per-file rule over one parsed file."""
    return sorted(_run_file_rules(source, rules).findings)


def lint_file(path: Path, rules: Iterable[Rule],
              module: Optional[str] = None) -> list[Finding]:
    """Lint one file; a parse failure becomes an SVT000 finding."""
    try:
        source = SourceFile(path, module=module)
    except SyntaxError as err:
        return [Finding(path=str(path), line=err.lineno or 1,
                        col=(err.offset or 0) + 1, rule="SVT000",
                        message=f"syntax error: {err.msg}")]
    return lint_source(source, rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated file list.

    Directories are walked with ``rglob`` and deduplicated on resolved
    paths, so a symlink cycle (or the same file reachable through two
    links) contributes each real file exactly once.
    """
    seen: set[Path] = set()
    expanded: list[Path] = []
    for path in paths:
        path = Path(path)
        candidates = (sorted(path.rglob("*.py")) if path.is_dir()
                      else [path])
        for candidate in candidates:
            try:
                resolved = candidate.resolve()
            except OSError:  # unresolvable link loop member
                continue
            if resolved not in seen:
                seen.add(resolved)
                expanded.append(candidate)
    return iter(sorted(expanded))


@dataclass
class FileRecord:
    """Everything the per-file pass learned about one file.

    Cache-friendly: holds no AST, only findings, suppression hits and
    the directive table — enough for the stale pass and ``--stats``
    to run without re-parsing an unchanged file.
    """

    path: str
    module: str
    parse_ok: bool
    findings: list[Finding] = field(default_factory=list)
    hits: set[tuple[int, str]] = field(default_factory=set)
    directives: tuple[SuppressionDirective, ...] = ()


@dataclass
class LintReport:
    """The full result of a :func:`lint_tree` run."""

    findings: list[Finding]
    #: path -> suppression hits (line, rule) that silenced a finding.
    suppressions: dict[str, set[tuple[int, str]]]
    #: path -> dotted module name (for per-package stats).
    modules: dict[str, str]


def _lint_one(path: Path, text: str,
              rule_types: list[type[Rule]],
              ) -> tuple[FileRecord, Optional[SourceFile]]:
    try:
        source = SourceFile(path, text=text)
    except SyntaxError as err:
        record = FileRecord(
            path=str(path), module="", parse_ok=False,
            findings=[Finding(path=str(path), line=err.lineno or 1,
                              col=(err.offset or 0) + 1, rule="SVT000",
                              message=f"syntax error: {err.msg}")],
        )
        return record, None
    ctx = _run_file_rules(source, [cls() for cls in rule_types])
    record = FileRecord(
        path=str(path), module=source.module, parse_ok=True,
        findings=sorted(ctx.findings), hits=set(ctx.suppressed_hits),
        directives=source.directives,
    )
    return record, source


def _stale_findings(records: list[FileRecord],
                    hits: dict[str, set[tuple[int, str]]],
                    active_ids: frozenset[str],
                    complete: bool,
                    stale_rule_id: str) -> list[Finding]:
    """SVT009: directives that silenced nothing this run are stale.

    An explicit directive is only judged when every rule it names ran
    (``rules <= active_ids``); a bare ``disable`` is only judged on a
    ``complete`` run (no ``--rules`` filter), since any skipped rule
    could be the one it suppresses.
    """
    findings: list[Finding] = []
    for record in records:
        if not record.parse_ok:
            continue
        path_hits = hits.get(record.path, set())
        for directive in record.directives:
            if directive.rules == ALL_RULES:
                if not complete:
                    continue
                covered = any(line == directive.target
                              for line, _ in path_hits)
            else:
                if not directive.rules <= active_ids:
                    continue
                covered = any((directive.target, rule) in path_hits
                              for rule in directive.rules)
            if covered:
                continue
            named = ("every rule" if directive.rules == ALL_RULES
                     else ", ".join(sorted(directive.rules)))
            findings.append(Finding(
                path=record.path, line=directive.line, col=1,
                rule=stale_rule_id,
                message=f"stale suppression: the disable directive for "
                        f"{named} no longer silences any finding; "
                        "remove it",
            ))
    return findings


def lint_tree(paths: Iterable[Path], rules: Iterable[Rule],
              cache: Optional["LintCache"] = None) -> LintReport:
    """Lint every ``*.py`` under ``paths`` — the full pipeline.

    Per-file rules run first (memoized by ``cache`` when given), then
    whole-program rules over a :class:`~repro.lint.graph.ProjectGraph`
    of the batch, then the SVT009 stale-suppression pass over the
    merged suppressed-hit index.
    """
    rule_list = list(rules)
    file_types = [type(r) for r in rule_list
                  if not r.project and not r.meta_stale]
    project_rules = [r for r in rule_list if r.project]
    stale_rules = [r for r in rule_list if r.meta_stale]

    records: list[FileRecord] = []
    texts: dict[str, str] = {}
    sources: dict[str, SourceFile] = {}
    for path in iter_python_files(paths):
        text = path.read_text()
        texts[str(path)] = text
        record = (cache.get_file(path, text, file_types)
                  if cache is not None else None)
        if record is None:
            record, source = _lint_one(path, text, file_types)
            if source is not None:
                sources[record.path] = source
            if cache is not None:
                cache.put_file(text, file_types, record)
        records.append(record)

    findings: list[Finding] = []
    hits: dict[str, set[tuple[int, str]]] = {}
    for record in records:
        findings.extend(record.findings)
        if record.hits:
            hits.setdefault(record.path, set()).update(record.hits)

    if project_rules:
        project = (cache.get_project(records, project_rules)
                   if cache is not None else None)
        if project is None:
            from repro.lint.graph import ProjectGraph

            for record in records:
                if record.parse_ok and record.path not in sources:
                    sources[record.path] = SourceFile(
                        Path(record.path), text=texts[record.path])
            parsed = [sources[r.path] for r in records if r.parse_ok]
            graph = ProjectGraph(parsed)
            pctx = ProjectContext(sources)
            for rule in project_rules:
                rule.check_project(graph, pctx)
            project = (sorted(pctx.findings), pctx.hits)
            if cache is not None:
                cache.put_project(records, project_rules, project)
        project_findings, project_hits = project
        findings.extend(project_findings)
        for path, path_hits in project_hits.items():
            hits.setdefault(path, set()).update(path_hits)

    if stale_rules:
        stale = stale_rules[0]
        # The stale rule's own id counts as "ran" so that a
        # ``disable=SVT009`` directive — which can never silence
        # anything, since stale findings bypass the suppression
        # index — is itself judged and reported stale.
        active_ids = frozenset(r.rule_id for r in rule_list)
        findings.extend(_stale_findings(
            records, hits, active_ids,
            complete=getattr(stale, "complete", True),
            stale_rule_id=stale.rule_id))

    modules = {r.path: r.module for r in records if r.parse_ok}
    return LintReport(findings=sorted(findings), suppressions=hits,
                      modules=modules)


def lint_paths(paths: Iterable[Path],
               rules: Iterable[Rule]) -> list[Finding]:
    """Lint every ``*.py`` under ``paths``; findings only."""
    return lint_tree(paths, rules).findings
