"""``python -m repro fuzz`` — the differential fuzz campaign.

::

    python -m repro fuzz --seed 2019 --runs 25       # a campaign
    python -m repro fuzz --jobs 4 --json             # parallel, JSON doc
    python -m repro fuzz --bug drop-redirect         # calibrate oracles
    python -m repro fuzz --corpus tests/fuzz/corpus  # replay the corpus
    python -m repro fuzz --save-failures DIR         # keep shrunk cases

Exit codes: **0** healthy (no unexpected oracle violation; with
``--expect-violation``, at least one violation found and shrunk
reproducibly), **1** an oracle fired (or an expected one did not),
**2** usage error.

The JSON document (``--json``/``--out``) is byte-identical for a given
flag set regardless of ``--jobs`` or invocation count — the campaign
determinism contract that CI's ``fuzz-smoke`` job compares with
``cmp``.
"""

import argparse
import sys
from pathlib import Path

from repro.exp.result import canonical_json
from repro.fuzz import bugs, driver, shrink
from repro.fuzz.case import CaseSchemaError, load_case, save_case
from repro.fuzz.harness import evaluate_case


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="seed-deterministic differential fuzzing of the "
                    "nested-virtualization simulator (three execution "
                    "modes x two simulation kernels per case)",
    )
    parser.add_argument("--seed", type=int, default=2019,
                        help="campaign seed (default: 2019)")
    parser.add_argument("--runs", type=int, default=25,
                        help="generated cases per campaign "
                             "(default: 25)")
    parser.add_argument("--ops", type=int, default=40,
                        help="ops per generated case (default: 40)")
    parser.add_argument("--budget", type=int,
                        default=shrink.DEFAULT_BUDGET,
                        help="max differential evaluations per shrink "
                             f"(default: {shrink.DEFAULT_BUDGET})")
    parser.add_argument("--shrink", dest="shrink", action="store_true",
                        default=True,
                        help="delta-debug failures to minimal cases "
                             "(default)")
    parser.add_argument("--no-shrink", dest="shrink",
                        action="store_false",
                        help="report failures without shrinking")
    parser.add_argument("--cost-model", default=None,
                        help="registered cost model to run under")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1)")
    parser.add_argument("--bug", default=None, choices=bugs.names(),
                        help="arm a known-bad fixture machine "
                             "(oracle calibration)")
    parser.add_argument("--expect-violation", action="store_true",
                        help="invert the gate: fail unless at least "
                             "one violation is found and shrinks "
                             "reproducibly (used with --bug)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on any oracle violation (default "
                             "already does; kept for symmetry with "
                             "other subcommands)")
    parser.add_argument("--json", action="store_true",
                        help="write the campaign document to stdout")
    parser.add_argument("--out", type=Path, default=None,
                        help="also write the campaign document here")
    parser.add_argument("--save-failures", type=Path, default=None,
                        metavar="DIR",
                        help="save each shrunk counterexample as a "
                             "fuzzcase/1 JSON file under DIR")
    parser.add_argument("--corpus", type=Path, default=None,
                        metavar="DIR",
                        help="replay every committed fuzzcase/1 file "
                             "under DIR instead of generating cases")
    return parser


def _progress(entry):
    status = "FAIL" if entry["failed"] else "ok"
    oracles = ",".join(entry["oracles"]) or "-"
    print(f"  run {entry['index']:>3} seed {entry['seed']:>10} "
          f"{status:<4} {oracles}", file=sys.stderr)


def _replay_corpus(directory, cost_model):
    """Replay committed counterexamples.

    A case recorded with a ``bug`` must reproduce its recorded oracle
    with the bug armed *and* stay green on a stock machine; a clean
    case must simply stay green.  Returns (entries, failures).
    """
    entries = []
    failures = 0
    paths = sorted(directory.glob("*.json"))
    if not paths:
        print(f"repro fuzz: no corpus files under {directory}",
              file=sys.stderr)
    for path in paths:
        try:
            case = load_case(path)
        except CaseSchemaError as err:
            entries.append({"file": path.name, "status": "skipped",
                            "detail": str(err)})
            continue
        report = evaluate_case(case, cost_model=cost_model)
        problems = []
        if case.oracle:
            if case.oracle not in report.violated_oracles():
                problems.append(
                    f"recorded oracle {case.oracle!r} did not fire "
                    f"(got: {report.violated_oracles() or 'none'})")
            if case.bug:
                stock = evaluate_case(
                    case, bug="", cost_model=cost_model)
                if stock.failed:
                    problems.append(
                        "case fails even without its bug armed: "
                        + ", ".join(stock.violated_oracles()))
        elif report.failed:
            problems.append("clean case now violates: "
                            + ", ".join(report.violated_oracles()))
        entries.append({
            "file": path.name,
            "status": "fail" if problems else "ok",
            "detail": "; ".join(problems),
            "oracles": report.violated_oracles(),
        })
        failures += bool(problems)
    return entries, failures


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.runs < 1 or args.ops < 1 or args.jobs < 1:
        print("repro fuzz: --runs/--ops/--jobs must be positive",
              file=sys.stderr)
        return 2

    if args.corpus is not None:
        if not args.corpus.is_dir():
            print(f"repro fuzz: no corpus directory {args.corpus}",
                  file=sys.stderr)
            return 2
        entries, failures = _replay_corpus(args.corpus,
                                           args.cost_model)
        doc = {"schema": "repro-fuzz-corpus/1", "entries": entries,
               "failures": failures}
        if args.json:
            sys.stdout.write(canonical_json(doc))
        else:
            for entry in entries:
                line = f"{entry['file']}: {entry['status']}"
                if entry.get("detail"):
                    line += f" ({entry['detail']})"
                print(line)
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(canonical_json(doc))
        return 1 if failures else 0

    progress = None if args.json else _progress
    doc = driver.run_campaign(
        seed=args.seed, runs=args.runs, n_ops=args.ops, bug=args.bug,
        cost_model=args.cost_model, shrink=args.shrink,
        budget=args.budget, jobs=args.jobs, progress=progress,
    )
    if args.json:
        sys.stdout.write(canonical_json(doc))
    else:
        summary = doc["summary"]
        print(f"fuzz seed={args.seed} runs={summary['runs']} "
              f"failed={summary['failed']} "
              f"faulted={summary['faulted']} "
              f"oracles={summary['violations_by_oracle'] or '{}'}")
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(canonical_json(doc))
    if args.save_failures is not None:
        for case in driver.failing_cases(doc):
            name = (f"seed{case.seed}-{len(case.ops)}ops-"
                    f"{case.oracle or 'violation'}.json")
            saved = save_case(args.save_failures / name, case)
            print(f"saved {saved}", file=sys.stderr)

    summary = doc["summary"]
    if args.expect_violation:
        if summary["failed"] == 0:
            print("repro fuzz: expected at least one oracle "
                  "violation, found none", file=sys.stderr)
            return 1
        if args.shrink and summary["shrunk_reproducible"] == 0:
            print("repro fuzz: violations found but none shrank "
                  "reproducibly", file=sys.stderr)
            return 1
        return 0
    return 1 if summary["failed"] else 0


if __name__ == "__main__":
    sys.exit(main())
