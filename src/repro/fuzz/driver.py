"""The fuzz campaign driver.

A campaign is a pure function of ``(seed, runs, ops, bug, cost_model,
shrink budget)``: per-run case seeds are labelled forks of the campaign
seed, each case evaluates differentially (six machines plus the replay
probe), failures shrink, and the results assemble **in run order** into
a ``repro-fuzz/1`` document that contains no wall-clock time, worker
count, or any other environment echo — so the same campaign is
byte-identical across invocations and ``--jobs`` values.

``--jobs N`` fans runs out over a process pool; :func:`run_one` is
module-level so it pickles, and ``executor.map`` preserves submission
order, so parallelism cannot reorder (or otherwise perturb) the
document.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.fuzz import shrink as shrinker
from repro.fuzz.case import FuzzCase
from repro.fuzz.gen import derive_stream, generate_case
from repro.fuzz.harness import evaluate_case

#: Campaign result schema.
DOC_SCHEMA = "repro-fuzz/1"


def case_seed(campaign_seed, index):
    """The case seed for run ``index`` — a labelled fork, so inserting
    a run never reshuffles the others."""
    return derive_stream(campaign_seed, f"run:{index}").randint(
        0, 2**31 - 1)


def run_one(spec):
    """Evaluate (and, on failure, shrink) one campaign run.

    ``spec`` is a plain tuple so a process pool can pickle it:
    ``(campaign_seed, index, n_ops, bug, cost_model, do_shrink,
    budget)``.  Returns one JSON-ready campaign entry.
    """
    campaign_seed, index, n_ops, bug, cost_model, do_shrink, budget = spec
    seed = case_seed(campaign_seed, index)
    case = generate_case(seed, n_ops=n_ops, bug=bug)
    report = evaluate_case(case, cost_model=cost_model)
    entry = {
        "index": index,
        "seed": seed,
        "ops": len(case.ops),
        "faulted": case.fault_plan is not None,
        "failed": report.failed,
        "oracles": report.violated_oracles(),
        "violations": [v.to_dict() for v in report.violations],
    }
    if report.failed and do_shrink:
        oracle = report.violated_oracles()[0]
        shrunk, evals, reproducible = shrinker.shrink_case(
            case, oracle, budget=budget, cost_model=cost_model)
        entry["shrunk"] = {
            "case": shrunk.to_dict(),
            "ops": len(shrunk.ops),
            "evals": evals,
            "reproducible": reproducible,
        }
    return entry


def run_campaign(seed, runs, n_ops=40, bug=None, cost_model=None,
                 shrink=True, budget=shrinker.DEFAULT_BUDGET, jobs=1,
                 progress=None):
    """Run a whole campaign; returns the ``repro-fuzz/1`` document."""
    specs = [(seed, index, n_ops, bug, cost_model, shrink, budget)
             for index in range(runs)]
    if jobs > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            entries = []
            for entry in pool.map(run_one, specs):
                entries.append(entry)
                if progress is not None:
                    progress(entry)
    else:
        entries = []
        for spec in specs:
            entry = run_one(spec)
            entries.append(entry)
            if progress is not None:
                progress(entry)
    failed = [entry for entry in entries if entry["failed"]]
    by_oracle = {}
    for entry in failed:
        for oracle in entry["oracles"]:
            by_oracle[oracle] = by_oracle.get(oracle, 0) + 1
    return {
        "schema": DOC_SCHEMA,
        "seed": seed,
        "runs": runs,
        "ops_per_run": n_ops,
        "bug": bug,
        "cost_model": cost_model,
        "entries": entries,
        "summary": {
            "runs": len(entries),
            "failed": len(failed),
            "faulted": sum(1 for e in entries if e["faulted"]),
            "violations_by_oracle": dict(sorted(by_oracle.items())),
            "shrunk_reproducible": sum(
                1 for e in failed
                if e.get("shrunk", {}).get("reproducible")),
        },
    }


def failing_cases(doc):
    """Extract the shrunk counterexamples from a campaign document as
    :class:`FuzzCase` objects (for ``--save-failures``)."""
    out = []
    for entry in doc["entries"]:
        shrunk = entry.get("shrunk")
        if shrunk is not None:
            out.append(FuzzCase.from_dict(shrunk["case"]))
    return out
