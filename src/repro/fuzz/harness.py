"""Differential execution of one fuzz case across six machines.

One :class:`~repro.fuzz.case.FuzzCase` runs on a fresh
:class:`~repro.core.system.Machine` for every (mode, kernel) pair —
BASELINE / SW_SVT / HW_SVT under both the segment and legacy simulation
kernels — always with the runtime ordering sanitizer armed.  Each run
produces a :class:`MachineOutcome`; :func:`evaluate_case` bundles the
six outcomes with the oracle verdicts (:mod:`repro.fuzz.oracles`) into
one JSON-ready :class:`CaseReport`.

Instruction ops are batched into :class:`~repro.cpu.isa.Program`
streams (so loop ops cross the segment-compilation threshold and the
fast path is genuinely exercised); meta ops flush the batch and poke
the machine directly — interrupt-window stress, SEV-Step-style
single-stepping, simulated-time gaps, and ctxtld/ctxtst bursts in HW
SVt mode.
"""

import os
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core import cross_context
from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import costmodels, isa
from repro.cpu.interrupts import Vectors
from repro.cpu.registers import RegNames
from repro.errors import (CrossContextFault, DeadlockError, ReproError)
from repro.exp.result import canonical_json
from repro.fuzz import bugs
from repro.fuzz.ops import Kind, to_instructions
from repro.sim import kernel as simkernel
from repro.sim import sanitizer
from repro.virt.vmcs import FieldRegistry

#: Every (mode, kernel) combination a case runs under.
MODES = (ExecutionMode.BASELINE, ExecutionMode.SW_SVT,
         ExecutionMode.HW_SVT)
KERNELS = (simkernel.SEGMENT, simkernel.LEGACY)

#: VMCS fields that legitimately differ across modes.
SVT_FIELDS = frozenset(
    name for name, fld in FieldRegistry.FIELDS.items()
    if fld.category == "svt"
)

#: VMCS fields the *mode* oracle additionally ignores: the guest-state
#: and exit-information areas record the machine's position at the
#: **last** VM exit, and with an armed timer interleaving a program the
#: identity of that last exit is a function of mode-specific costs.
#: The live architectural state those areas snapshot is compared in
#: full through the vCPUs; the kernel-identity oracle still compares
#: the areas byte-for-byte.
MODE_VARIANT_FIELDS = SVT_FIELDS | frozenset(
    name for name, fld in FieldRegistry.FIELDS.items()
    if fld.category in ("guest", "exit")
)

#: Horizon handed to the fault injector's spurious-interrupt scheduler.
SPURIOUS_HORIZON_NS = 200_000

#: Event budget for the post-program drain.
DRAIN_MAX_EVENTS = 200_000


@contextmanager
def sanitized():
    """Arm ``REPRO_SIM_SANITIZE`` for the block (restoring the previous
    setting), so every fuzz machine runs under the ordering sanitizer.

    Implemented through the environment exactly like
    :func:`repro.sim.kernel.use_kernel`: the flag is how
    ``Machine.__init__`` discovers the sanitizer, and pool workers
    inherit it.
    """
    # svtlint: disable=SVT001 — the env flag is the sanitizer's
    # documented installation channel; it gates pure observation and
    # never reaches a result byte (the flag-flip differential proves
    # it).
    previous = os.environ.get(sanitizer.ENV_FLAG)
    os.environ[  # svtlint: disable=SVT001 — as above
        sanitizer.ENV_FLAG] = "1"
    try:
        yield
    finally:
        if previous is None:
            # svtlint: disable=SVT001 — as above
            os.environ.pop(sanitizer.ENV_FLAG, None)
        else:
            # svtlint: disable=SVT001 — as above
            os.environ[sanitizer.ENV_FLAG] = previous


# ---------------------------------------------------------------------------
# State fingerprinting (the tests/exp differential, as a library)
# ---------------------------------------------------------------------------


def _vcpu_state(vcpu):
    state = {name: vcpu.read(name) for name in RegNames.ALL}
    state["msrs"] = {str(k): v for k, v in sorted(vcpu.msrs.items())}
    state["halted"] = vcpu.halted
    return state


def _ept_state(ept):
    return {"ranges": [list(r) for r in ept._ranges],
            "mmio": [[r.base, r.size] for r in ept._mmio]}


def _vmcs_state(vmcs):
    return {name: value for name, value in sorted(
        vmcs.snapshot().items()) if name not in SVT_FIELDS}


def final_state(machine):
    """The full architectural fingerprint the mode oracle compares —
    the same pieces as the tests/exp state differential."""
    stack = machine.stack
    return {
        "l2_vcpu": _vcpu_state(machine.l2_vm.vcpu),
        "l1_vcpu": _vcpu_state(machine.l1_vm.vcpu),
        "ept12": _ept_state(stack.ept12),
        "ept01": _ept_state(stack.ept01),
        "vmcs02": _vmcs_state(stack.vmcs02),
        "vmcs12": _vmcs_state(stack.vmcs12),
        "vmcs01": _vmcs_state(stack.vmcs01),
    }


# ---------------------------------------------------------------------------
# One machine run
# ---------------------------------------------------------------------------


@dataclass
class MachineOutcome:
    """Everything one (mode, kernel) run produced."""

    mode: str
    kernel: str
    state: dict = field(default_factory=dict)
    clock_ns: int = 0
    instructions: int = 0
    exits: dict = field(default_factory=dict)
    aux_exits: dict = field(default_factory=dict)
    deliveries: list = field(default_factory=list)
    pending: list = field(default_factory=list)
    steering: dict = field(default_factory=dict)
    degraded: bool = False
    deadlock: dict = None
    crash: str = None
    sanitizer_reports: list = field(default_factory=list)
    fault_counters: dict = None

    @property
    def delivered_by_ctx(self):
        counts = Counter(ctx for ctx, _vector in self.deliveries)
        return {str(ctx): n for ctx, n in sorted(counts.items())}

    @property
    def delivered_vectors(self):
        return sorted(vector for _ctx, vector in self.deliveries)

    def mode_comparable(self):
        """The slice that must be byte-equal across execution modes on
        a healthy zero-fault run (clock, exits and steering differ by
        design)."""
        state = {
            key: ({name: value
                   for name, value in section.items()
                   if name not in MODE_VARIANT_FIELDS}
                  if key.startswith("vmcs") else section)
            for key, section in self.state.items()
        }
        # TIMER deliveries are mode-variant: re-arming the TSC
        # deadline replaces the previous one only if it has not fired
        # yet, and where the mode-specific clock places the old
        # deadline relative to the re-arm decides that.  Kernel
        # identity still compares them byte-for-byte.
        device = [(ctx, vector) for ctx, vector in self.deliveries
                  if vector != Vectors.TIMER]
        by_ctx = Counter(ctx for ctx, _vector in device)
        return {
            "state": state,
            "delivered_by_ctx": {str(ctx): n for ctx, n
                                 in sorted(by_ctx.items())},
            "delivered_vectors": sorted(v for _ctx, v in device),
            "pending_total": sum(self.pending),
            "degraded": self.degraded,
            "deadlocked": self.deadlock is not None,
            "crash": self.crash,
        }

    def kernel_comparable(self):
        """The slice that must be byte-equal across simulation kernels
        for the same mode — everything except the sanitizer stream,
        whose access timestamps may observe intermediate clock states
        the segment kernel batches through."""
        return {
            "state": self.state,
            "clock_ns": self.clock_ns,
            "instructions": self.instructions,
            "exits": self.exits,
            "aux_exits": self.aux_exits,
            "deliveries": [list(entry) for entry in self.deliveries],
            "pending": self.pending,
            "steering": self.steering,
            "degraded": self.degraded,
            "deadlocked": self.deadlock is not None,
            "crash": self.crash,
            "fault_counters": self.fault_counters,
        }

    def to_dict(self):
        doc = self.kernel_comparable()
        doc["mode"] = self.mode
        doc["kernel"] = self.kernel
        doc["deadlock"] = self.deadlock
        doc["sanitizer"] = {
            "count": len(self.sanitizer_reports),
            "reports": list(self.sanitizer_reports),
        }
        return doc


@contextmanager
def _handler_state(machine):
    """Put the HW SVt core into the L0-handler state (trap to the
    visor context, vmcs01 active) and return it to resumed-L2 after.

    ctxtld/ctxtst are hypervisor-side instructions: the paper's Table-2
    ``lvl`` rules assume L0 runs them from its own context with its own
    VMCS loaded — between programs the machine idles resumed into L2
    (vmcs02, whose SVt view legitimately has no valid nested slot), so
    the harness mirrors the ``l2_exit``/re-entry engine sequence around
    every burst and the final steering snapshot."""
    machine.core.svt_trap()
    machine.engine.load_vmcs(machine.stack.vmcs01)
    try:
        yield
    finally:
        machine.engine.load_vmcs(machine.stack.vmcs02)
        machine.core.svt_resume()


def _ctxt_burst(machine, op, steering):
    """A ctxtld/ctxtst round-trip burst (HW SVt only): read the
    target's register, store a fuzzed value, load it back, restore.
    Faults and readback mismatches are counted, never raised — the
    steering oracle turns them into violations."""
    count = max(1, op.arg("count", 1))
    lvl = op.arg("lvl", 1)
    register = op.arg("register", "rax")
    value = op.arg("value", 0)
    core = machine.core
    with _handler_state(machine):
        for _ in range(count):
            try:
                original = cross_context.ctxt_read(core, lvl, register)
                cross_context.ctxt_write(core, lvl, register, value)
                readback = cross_context.ctxt_read(core, lvl, register)
                cross_context.ctxt_write(core, lvl, register, original)
            except CrossContextFault:
                steering["ctxt_faults"] += 1
                continue
            steering["ctxt_ops"] += 1
            if readback != value:
                steering["ctxt_mismatches"] += 1


def _steering_snapshot(machine, steering):
    """HW SVt Table-2 observables, taken in the L0-handler state: the
    SVt micro-registers cached from vmcs01, the interrupt redirect
    target, and what each ``lvl`` resolves to with the visor running."""
    core = machine.core
    with _handler_state(machine):
        steering["svt"] = [core.svt_visor, core.svt_vm,
                           core.svt_nested]
        steering["is_vm"] = bool(core.is_vm)
        steering["redirect"] = machine.interrupts.redirect_target
        resolved = {}
        for lvl in (1, 2):
            try:
                resolved[str(lvl)] = cross_context.resolve_target(
                    core, lvl)
            except CrossContextFault as err:
                resolved[str(lvl)] = f"fault: {err}"
        steering["resolve"] = resolved


def run_case_on(mode, kernel, case, bug=None, cost_model=None):
    """Execute one case on a fresh machine; never raises for
    simulation-level failures — they land in the outcome."""
    outcome = MachineOutcome(mode=str(mode), kernel=kernel)
    bug_name = bug if bug is not None else case.bug
    with simkernel.use_kernel(kernel), sanitized(), \
            costmodels.use_default(cost_model):
        sanitizer.drain()   # isolate this run's reports
        machine = Machine(mode=mode, faults=case.fault_plan)
        if bug_name:
            bugs.apply(bug_name, machine)
        machine.interrupts.add_observer(
            lambda ctx, vector: outcome.deliveries.append([ctx, vector])
        )
        if machine.faults is not None:
            machine.faults.schedule_spurious(
                machine.interrupts, SPURIOUS_HORIZON_NS,
                tuple(range(machine.core.n_contexts)),
            )
        if mode == ExecutionMode.HW_SVT:
            outcome.steering = {"ctxt_ops": 0, "ctxt_faults": 0,
                                "ctxt_mismatches": 0}
        try:
            _drive(machine, case, outcome)
        except DeadlockError as err:
            outcome.deadlock = (err.report.to_dict()
                                if err.report is not None
                                else {"detail": str(err)})
        except (ReproError, AssertionError) as err:
            outcome.crash = f"{type(err).__name__}: {err}"
        outcome.state = final_state(machine)
        outcome.clock_ns = machine.sim.now
        outcome.instructions = machine.instructions_retired
        outcome.exits = dict(sorted(machine.stack.exit_counts.items()))
        outcome.aux_exits = dict(
            sorted(machine.stack.aux_exit_counts.items()))
        outcome.pending = [
            machine.interrupts.pending_count(index)
            for index in range(machine.core.n_contexts)
        ]
        if mode == ExecutionMode.HW_SVT:
            _steering_snapshot(machine, outcome.steering)
        outcome.degraded = bool(getattr(machine.engine, "degraded",
                                        False))
        if machine.faults is not None:
            outcome.fault_counters = machine.faults.counters()
        outcome.sanitizer_reports = [
            report.render() for report in sanitizer.drain()
        ]
    return outcome


def _drive(machine, case, outcome):
    """Run the op stream, then drain events and pending interrupts so
    every healthy run ends quiescent."""
    batch = []

    def flush(repeat=1):
        if not batch:
            return
        program = isa.Program(list(batch), repeat=repeat, label="fuzz")
        del batch[:]
        machine.run_program(program, level=2)
        # The battery idiom: hlt parks the vcpu; un-park so the next
        # program executes and final state compares equal.
        machine.l2_vm.vcpu.halted = False
        machine.l1_vm.vcpu.halted = False

    for op in case.ops:
        if op.kind in Kind.INSTRUCTION:
            instructions, repeat = to_instructions(op)
            if repeat > 1:
                flush()
                batch.extend(instructions)
                flush(repeat=repeat)
            else:
                batch.extend(instructions)
            continue
        flush()
        if op.kind == Kind.IRQ:
            # The device fabric: on stock machines every external line
            # is wired to context 0 (the interrupt owner); under HW SVt
            # devices may target any hardware context and the SVt
            # redirect is what steers them back to L0's context — the
            # steering the drop-redirect bug breaks.
            ctx = op.arg("ctx", 0)
            if (machine.mode != ExecutionMode.HW_SVT
                    or ctx >= machine.core.n_contexts):
                ctx = 0
            machine.interrupts.raise_external(
                ctx, op.arg("vector", 0x60), delay=op.arg("delay_ns", 0)
            )
        elif op.kind == Kind.SINGLE_STEP:
            for _ in range(max(1, op.arg("steps", 1))):
                machine.interrupts.raise_external(
                    0, op.arg("vector", 0x60), delay=1)
                machine.run_instruction(
                    isa.alu(op.arg("work_ns", 50)), 2)
        elif op.kind == Kind.ELAPSE:
            machine.elapse(op.arg("ns", 1_000))
        elif op.kind == Kind.CTXT_BURST:
            if machine.mode == ExecutionMode.HW_SVT:
                _ctxt_burst(machine, op, outcome.steering)
    flush()
    # Quiesce: fire every scheduled event (delayed irqs, the TSC
    # deadline), then take what landed pending — twice, because the
    # first drain program can itself arm new deliveries.
    for _round in range(2):
        machine.run_until_idle(max_events=DRAIN_MAX_EVENTS)
        for _ in range(3):
            machine.run_instruction(isa.alu(50), 2)
        machine.l2_vm.vcpu.halted = False
        machine.l1_vm.vcpu.halted = False


# ---------------------------------------------------------------------------
# Whole-case evaluation
# ---------------------------------------------------------------------------


@dataclass
class CaseReport:
    """Six outcomes plus the oracle verdicts for one case."""

    case: object
    outcomes: dict
    violations: list

    @property
    def failed(self):
        return bool(self.violations)

    def violated_oracles(self):
        return sorted({violation.oracle for violation in self.violations})

    def to_dict(self):
        return {
            "case": self.case.to_dict(),
            "outcomes": {
                f"{mode}/{kernel}": outcome.to_dict()
                for (mode, kernel), outcome in sorted(
                    self.outcomes.items())
            },
            "violations": [v.to_dict() for v in self.violations],
        }


def evaluate_case(case, bug=None, cost_model=None, replay_check=True):
    """Run a case differentially and judge it against the oracles.

    ``replay_check`` re-runs one combination from the same seed and
    demands a byte-identical outcome document — the replay oracle.
    """
    from repro.fuzz import oracles

    outcomes = {
        (mode, kernel): run_case_on(mode, kernel, case, bug=bug,
                                    cost_model=cost_model)
        for mode in MODES
        for kernel in KERNELS
    }
    violations = oracles.check_oracles(case, outcomes)
    if replay_check:
        probe = (ExecutionMode.HW_SVT, simkernel.SEGMENT)
        again = run_case_on(probe[0], probe[1], case, bug=bug,
                            cost_model=cost_model)
        first = canonical_json(outcomes[probe].kernel_comparable())
        second = canonical_json(again.kernel_comparable())
        if first != second:
            violations.append(oracles.Violation(
                oracle="replay",
                detail="re-running hw_svt/segment from the same seed "
                       "produced a different outcome document",
            ))
    return CaseReport(case=case, outcomes=outcomes,
                      violations=violations)
