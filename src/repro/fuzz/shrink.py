"""Deterministic delta-debugging of failing fuzz cases.

A raw counterexample is rarely the story — 40 ops where 2 matter.
:func:`shrink_case` runs classic ddmin over the op sequence (drop
chunks, halve the chunk size, repeat until single ops survive), then a
final operand-reduction pass (loop counts and step counts to 1, delays
to 0), re-evaluating after every candidate and keeping it only if the
*same* oracle still fires.  Everything is seed-deterministic: the
search order is a pure function of the case, so two shrinks of the
same counterexample produce byte-identical minimal cases.
"""

from repro.fuzz.harness import evaluate_case

#: Default cap on full differential evaluations during one shrink.
DEFAULT_BUDGET = 200

#: Operands worth reducing once the op list is minimal, with their
#: floor values.
_ARG_FLOORS = (("count", 1), ("steps", 1), ("delay_ns", 0),
               ("ns", 100), ("work_ns", 10))


class _Budget:
    def __init__(self, limit):
        self.limit = limit
        self.spent = 0

    def take(self):
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _fails_same(case, oracle, budget, cost_model):
    """Does this candidate still trip the oracle we are shrinking
    against?  Replay checking is skipped during the search (it doubles
    one machine run per probe); the final confirmation re-enables it."""
    if not budget.take():
        return False
    report = evaluate_case(case, cost_model=cost_model,
                           replay_check=False)
    return oracle in report.violated_oracles()


def _ddmin(case, oracle, budget, cost_model):
    ops = list(case.ops)
    chunk = max(1, len(ops) // 2)
    while True:
        index = 0
        shrunk_this_pass = False
        while index < len(ops) and len(ops) > 1:
            candidate_ops = ops[:index] + ops[index + chunk:]
            if not candidate_ops:
                index += chunk
                continue
            candidate = case.with_ops(candidate_ops)
            if _fails_same(candidate, oracle, budget, cost_model):
                ops = candidate_ops
                shrunk_this_pass = True
            else:
                index += chunk
        if shrunk_this_pass:
            continue
        if chunk == 1:
            break
        chunk = max(1, chunk // 2)
    return case.with_ops(ops)


def _reduce_args(case, oracle, budget, cost_model):
    ops = list(case.ops)
    for index, op in enumerate(ops):
        for name, floor in _ARG_FLOORS:
            current = op.arg(name)
            if current is None or current <= floor:
                continue
            candidate_ops = list(ops)
            candidate_ops[index] = op.replace_arg(name, floor)
            candidate = case.with_ops(candidate_ops)
            if _fails_same(candidate, oracle, budget, cost_model):
                ops = candidate_ops
                op = ops[index]
    return case.with_ops(ops)


def shrink_case(case, oracle, budget=DEFAULT_BUDGET, cost_model=None):
    """Minimise ``case`` against ``oracle``.

    Returns ``(shrunk_case, evaluations, reproducible)`` where
    ``reproducible`` is the final full re-evaluation (replay check
    included) still reporting the oracle — the property the corpus
    runner and ``make fuzz-smoke`` insist on before a case is worth
    committing.
    """
    tracker = _Budget(budget)
    best = _ddmin(case, oracle, tracker, cost_model)
    best = _reduce_args(best, oracle, tracker, cost_model)
    final = evaluate_case(best, cost_model=cost_model)
    reproducible = oracle in final.violated_oracles()
    shrunk = best.with_oracle(oracle).with_ops(
        best.ops,
        shrunk_from=len(case.ops),
        shrink_evals=tracker.spent,
    )
    return shrunk, tracker.spent, reproducible
