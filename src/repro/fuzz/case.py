"""``fuzzcase/1`` — the stable on-disk counterexample format.

A committed corpus file is a permanent regression test, so the format
is versioned and forward-checked: :func:`load_case` raises
:class:`CaseSchemaError` on a schema-version mismatch (the corpus
pytest runner turns that into a skip-with-reason, never a collection
error).
"""

from dataclasses import dataclass, field

from repro.exp.result import canonical_json
from repro.faults.plan import FaultPlan
from repro.fuzz.ops import FuzzOp

#: The current (and only) corpus schema.
SCHEMA = "fuzzcase/1"


class CaseSchemaError(Exception):
    """A corpus file's schema version is not the one this tree reads."""


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible fuzz program plus its environment.

    ``bug`` names a deliberately-broken fixture machine from
    :mod:`repro.fuzz.bugs` (or ``None`` for a stock machine); for a
    committed counterexample ``oracle`` records which oracle the case
    was shrunk against, so replay can assert the *same* violation
    still fires.
    """

    seed: int
    ops: tuple
    fault_plan: FaultPlan = None
    bug: str = None
    oracle: str = ""
    note: str = ""
    meta: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "ops", tuple(self.ops))
        object.__setattr__(
            self, "meta", tuple(sorted(dict(self.meta).items()))
        )

    def with_ops(self, ops, **meta):
        merged = dict(self.meta)
        merged.update(meta)
        return FuzzCase(seed=self.seed, ops=tuple(ops),
                        fault_plan=self.fault_plan, bug=self.bug,
                        oracle=self.oracle, note=self.note,
                        meta=tuple(merged.items()))

    def with_oracle(self, oracle, note=""):
        return FuzzCase(seed=self.seed, ops=self.ops,
                        fault_plan=self.fault_plan, bug=self.bug,
                        oracle=oracle, note=note or self.note,
                        meta=self.meta)

    def to_dict(self):
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "ops": [op.to_dict() for op in self.ops],
            "fault_plan": (None if self.fault_plan is None
                           else self.fault_plan.to_dict()),
            "bug": self.bug,
            "oracle": self.oracle,
            "note": self.note,
            "meta": dict(self.meta),
        }

    def to_json(self):
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, doc):
        schema = doc.get("schema")
        if schema != SCHEMA:
            raise CaseSchemaError(
                f"unsupported fuzz-case schema {schema!r} "
                f"(this tree reads {SCHEMA!r})"
            )
        plan = doc.get("fault_plan")
        if plan is not None:
            plan = FaultPlan(
                seed=plan["seed"], rate=plan["rate"],
                rates=tuple(plan["rates"].items()),
                delay_ns=plan["delay_ns"],
                spurious_per_us=plan["spurious_per_us"],
                max_spurious=plan["max_spurious"],
            )
        return cls(
            seed=doc["seed"],
            ops=tuple(FuzzOp.from_dict(op) for op in doc["ops"]),
            fault_plan=plan,
            bug=doc.get("bug"),
            oracle=doc.get("oracle", ""),
            note=doc.get("note", ""),
            meta=tuple(sorted(doc.get("meta", {}).items())),
        )


def load_case(path):
    """Read one corpus file; :class:`CaseSchemaError` on a version
    mismatch, ``ValueError`` on malformed JSON."""
    import json

    return FuzzCase.from_dict(json.loads(path.read_text()))


def save_case(path, case):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(case.to_json())
    return path
