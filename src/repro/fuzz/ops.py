"""The fuzz op grammar and its stable serialization.

A :class:`FuzzOp` is one generator-drawn action of a fuzz-harness VM:
either an *instruction op* (lowered to :mod:`repro.cpu.isa` and batched
into programs run at L2) or a *meta op* the harness performs on the
machine between programs (raising interrupts, letting time pass,
SEV-Step-style single-stepping, ctxtld/ctxtst bursts).

The grammar deliberately excludes anything whose architectural effect
is mode- or time-dependent — ``rdtsc`` writes the virtual TSC into
``rax``/``rdx`` and port I/O needs a device model — so that on a
healthy machine the final state is byte-comparable across BASELINE,
SW_SVT and HW_SVT.  ``vmresume`` is excluded because the hypervisor
dispatch table has no handler for it (a nested guest hypervisor is not
modelled beyond the VMCS shadowing ops).
"""

from dataclasses import dataclass, field

from repro.cpu import isa
from repro.errors import ConfigError
from repro.virt.hypervisor import MSR_APIC_EOI, MSR_TSC_DEADLINE


class Kind:
    """Every op kind the generator can draw."""

    # -- instruction ops: batched into an L2 program -------------------
    ALU = "alu"                  # {work_ns}
    ALU_LOOP = "alu_loop"        # {count, work_ns} (segment-compiled)
    CPUID = "cpuid"              # {leaf}
    CPUID_LOOP = "cpuid_loop"    # {count, leaf}
    WRMSR_DEADLINE = "wrmsr_deadline"   # {deadline_ns} (arms the timer)
    WRMSR_EOI = "wrmsr_eoi"      # {} (trapped APIC EOI write)
    WRMSR_PLAIN = "wrmsr_plain"  # {msr, value} (untrapped store)
    RDMSR_PLAIN = "rdmsr_plain"  # {msr}
    RDMSR_DEADLINE = "rdmsr_deadline"   # {}
    VMCALL = "vmcall"            # {number}
    MMIO_READ = "mmio_read"      # {addr} (demand-paging EPT violation)
    VMREAD = "vmread"            # {fld}
    VMWRITE = "vmwrite"          # {fld, value}
    VMPTRLD = "vmptrld"          # {}
    INVEPT = "invept"            # {}
    HLT = "hlt"                  # {}

    # -- meta ops: performed by the harness between programs -----------
    IRQ = "irq"                  # {vector, ctx, delay_ns}
    SINGLE_STEP = "single_step"  # {vector, steps, work_ns}
    ELAPSE = "elapse"            # {ns}
    CTXT_BURST = "ctxt_burst"    # {lvl, register, value, count}

    INSTRUCTION = frozenset({
        ALU, ALU_LOOP, CPUID, CPUID_LOOP, WRMSR_DEADLINE, WRMSR_EOI,
        WRMSR_PLAIN, RDMSR_PLAIN, RDMSR_DEADLINE, VMCALL, MMIO_READ,
        VMREAD, VMWRITE, VMPTRLD, INVEPT, HLT,
    })
    META = frozenset({IRQ, SINGLE_STEP, ELAPSE, CTXT_BURST})
    ALL = INSTRUCTION | META


#: VMCS fields a fuzzed vmread/vmwrite may name.  From L2 both lower
#: to the hypervisor's shadow-VMCS emulation path with no shadow
#: loaded, so they exercise the full nested exit without perturbing
#: comparable state.
VMCS_FIELDS = ("guest_rip", "guest_rsp", "guest_cr3")

#: Registers a ctxt burst may round-trip.
CTXT_REGISTERS = ("rax", "rbx", "rcx", "rdx", "rsi")

#: Untrapped MSR pool (outside every trap bitmap in the stack).
PLAIN_MSRS = tuple(range(0x110, 0x118))


@dataclass(frozen=True)
class FuzzOp:
    """One generated action; ``args`` holds JSON-scalar operands."""

    kind: str
    args: tuple = field(default_factory=tuple)

    def __post_init__(self):
        if self.kind not in Kind.ALL:
            raise ConfigError(f"unknown fuzz op kind {self.kind!r}")
        object.__setattr__(
            self, "args", tuple(sorted(dict(self.args).items()))
        )

    def arg(self, name, default=None):
        return dict(self.args).get(name, default)

    def to_dict(self):
        return {"kind": self.kind, "args": dict(self.args)}

    @classmethod
    def from_dict(cls, doc):
        return cls(kind=doc["kind"], args=tuple(doc["args"].items()))

    def replace_arg(self, name, value):
        """Same op with one operand changed (shrinking)."""
        args = dict(self.args)
        args[name] = value
        return FuzzOp(self.kind, tuple(args.items()))


def to_instructions(op):
    """Lower an instruction op to a list of ISA instructions.

    Loop ops return ``(instructions, repeat)`` through their single
    entry's repeat count instead of unrolling, so the harness can hand
    the repeat to :class:`~repro.cpu.isa.Program` and the segment
    kernel sees a compilable body.
    """
    kind = op.kind
    if kind == Kind.ALU:
        return [isa.alu(op.arg("work_ns", 100))], 1
    if kind == Kind.ALU_LOOP:
        return ([isa.alu(op.arg("work_ns", 20))],
                max(1, op.arg("count", 64)))
    if kind == Kind.CPUID:
        return [isa.cpuid(leaf=op.arg("leaf", 0))], 1
    if kind == Kind.CPUID_LOOP:
        return ([isa.cpuid(leaf=op.arg("leaf", 0))],
                max(1, op.arg("count", 8)))
    if kind == Kind.WRMSR_DEADLINE:
        return [isa.wrmsr(MSR_TSC_DEADLINE,
                          op.arg("deadline_ns", 100_000))], 1
    if kind == Kind.WRMSR_EOI:
        return [isa.wrmsr(MSR_APIC_EOI, 0)], 1
    if kind == Kind.WRMSR_PLAIN:
        return [isa.wrmsr(op.arg("msr", PLAIN_MSRS[0]),
                          op.arg("value", 0))], 1
    if kind == Kind.RDMSR_PLAIN:
        return [isa.rdmsr(op.arg("msr", PLAIN_MSRS[0]))], 1
    if kind == Kind.RDMSR_DEADLINE:
        return [isa.rdmsr(MSR_TSC_DEADLINE)], 1
    if kind == Kind.VMCALL:
        return [isa.vmcall(number=op.arg("number", 0))], 1
    if kind == Kind.MMIO_READ:
        return [isa.mmio_read(op.arg("addr", 0x0400_0000))], 1
    if kind == Kind.VMREAD:
        return [isa.vmread([op.arg("fld", VMCS_FIELDS[0])])], 1
    if kind == Kind.VMWRITE:
        return [isa.vmwrite({op.arg("fld", VMCS_FIELDS[0]):
                             op.arg("value", 0)})], 1
    if kind == Kind.VMPTRLD:
        return [isa.vmptrld("vmcs12")], 1
    if kind == Kind.INVEPT:
        return [isa.invept()], 1
    if kind == Kind.HLT:
        return [isa.hlt()], 1
    raise ConfigError(f"{kind!r} is not an instruction op")
