"""Deliberately broken fixture machines for oracle calibration.

A fuzzer whose oracles never fire is indistinguishable from one that
checks nothing, so the campaign driver (and the acceptance tests) runs
a slice of seeds against these *known-bad* machines and requires each
oracle to catch its bug.  ``apply`` mutates a freshly booted
:class:`~repro.sim.system.Machine` before any guest work runs.

Both bugs only have meaning on HW_SVT — they sabotage the SVt steering
machinery — and are deliberate no-ops elsewhere, which also exercises
the report plumbing for "violation on one mode only".
"""

from repro.core.mode import ExecutionMode
from repro.cpu.smt import INVALID_CONTEXT
from repro.errors import ConfigError


def _drop_redirect(machine):
    """Forget to steer external interrupts to L0's context.

    Boot redirects every external vector to context 0 (the paper's
    single interrupt-owning context); clearing that means vectors
    raised at contexts 1/2 are delivered there and never acknowledged
    by the drain loop — the steering and drain oracles both fire.
    """
    if machine.mode == ExecutionMode.HW_SVT:
        machine.interrupts.clear_redirect()


def _svt_clobber(machine):
    """Corrupt the ``svt_nested`` field in vmcs01 — L0's handle on
    L2's hardware context.

    The HW engine re-caches its SVt micro-registers from vmcs01 at
    every L2 exit, so poisoning the *field* (rather than the live
    micro-register, which the next reload would silently repair) makes
    the first handler that touches L2's registers resolve its
    ctxtld/ctxtst through ``INVALID_CONTEXT`` and fault — the crash
    oracle fires, and the case shrinks to a single trapping op.
    """
    if machine.mode == ExecutionMode.HW_SVT:
        machine.stack.vmcs01.write("svt_nested", INVALID_CONTEXT)


_BUGS = {
    "drop-redirect": _drop_redirect,
    "svt-clobber": _svt_clobber,
}


def names():
    return tuple(sorted(_BUGS))


def apply(name, machine):
    """Arm bug ``name`` on ``machine`` (no-op machine for other modes)."""
    try:
        arm = _BUGS[name]
    except KeyError:
        raise ConfigError(
            f"unknown fuzz bug {name!r}; known: {', '.join(names())}"
        ) from None
    arm(machine)
