"""Seed-deterministic fuzz-case generation.

Every draw descends from :func:`derive_stream` — a labelled fork of a
:class:`~repro.sim.rng.DeterministicRng` rooted at the case seed — so
the same seed always composes the same program, independent of
scheduling, process, platform or ``--jobs`` count.  svtlint's
determinism dataflow treats these streams as laundered, exactly like
``sim.rng`` itself (see ``repro.lint.dataflow``).
"""

from repro.faults.plan import FaultKind, FaultPlan
from repro.fuzz.case import FuzzCase
from repro.fuzz.ops import (CTXT_REGISTERS, Kind, FuzzOp, PLAIN_MSRS,
                            VMCS_FIELDS)
from repro.cpu.interrupts import Vectors
from repro.sim.rng import DeterministicRng

#: Vectors the interrupt-window ops may raise.
IRQ_VECTORS = (Vectors.NET_RX, Vectors.NET_TX, Vectors.BLOCK,
               Vectors.TIMER)

#: Weighted grammar: (kind, weight).  Trap sequences dominate, with a
#: steady diet of interrupt-window stress and the occasional
#: segment-compiled loop so both kernel paths stay exercised.
GRAMMAR = (
    (Kind.ALU, 10),
    (Kind.ALU_LOOP, 3),
    (Kind.CPUID, 10),
    (Kind.CPUID_LOOP, 3),
    (Kind.WRMSR_DEADLINE, 4),
    (Kind.WRMSR_EOI, 3),
    (Kind.WRMSR_PLAIN, 4),
    (Kind.RDMSR_PLAIN, 3),
    (Kind.RDMSR_DEADLINE, 2),
    (Kind.VMCALL, 5),
    (Kind.MMIO_READ, 4),
    (Kind.VMREAD, 3),
    (Kind.VMWRITE, 3),
    (Kind.VMPTRLD, 2),
    (Kind.INVEPT, 2),
    (Kind.HLT, 2),
    (Kind.IRQ, 8),
    (Kind.SINGLE_STEP, 4),
    (Kind.ELAPSE, 4),
    (Kind.CTXT_BURST, 4),
)

#: One in four generated cases runs under a mild fault-plan overlay.
FAULT_CASE_RATIO = 0.25


def derive_stream(seed, label):
    """The root of every fuzz RNG stream: one labelled fork per
    purpose, so adding a draw to one stream never perturbs another."""
    return DeterministicRng(seed).fork(label)


def _draw_args(kind, rng):
    if kind == Kind.ALU:
        return {"work_ns": rng.randint(10, 500)}
    if kind == Kind.ALU_LOOP:
        return {"count": rng.randint(64, 200),
                "work_ns": rng.randint(5, 40)}
    if kind == Kind.CPUID:
        return {"leaf": rng.randint(0, 7)}
    if kind == Kind.CPUID_LOOP:
        return {"count": rng.randint(4, 24), "leaf": rng.randint(0, 7)}
    if kind == Kind.WRMSR_DEADLINE:
        return {"deadline_ns": rng.randint(10_000, 1_000_000)}
    if kind == Kind.WRMSR_PLAIN:
        return {"msr": rng.choice(PLAIN_MSRS),
                "value": rng.randint(0, 2**32 - 1)}
    if kind == Kind.RDMSR_PLAIN:
        return {"msr": rng.choice(PLAIN_MSRS)}
    if kind == Kind.VMCALL:
        return {"number": rng.randint(0, 3)}
    if kind == Kind.MMIO_READ:
        return {"addr": 0x0400_0000 + 0x1000 * rng.randint(0, 63)}
    if kind == Kind.VMREAD:
        return {"fld": rng.choice(VMCS_FIELDS)}
    if kind == Kind.VMWRITE:
        return {"fld": rng.choice(VMCS_FIELDS),
                "value": rng.randint(0, 2**32 - 1)}
    if kind == Kind.IRQ:
        return {"vector": rng.choice(IRQ_VECTORS),
                "ctx": rng.randint(0, 2),
                "delay_ns": rng.choice((0, 0, rng.randint(1, 5_000)))}
    if kind == Kind.SINGLE_STEP:
        return {"vector": rng.choice(IRQ_VECTORS),
                "steps": rng.randint(1, 8),
                "work_ns": rng.randint(20, 200)}
    if kind == Kind.ELAPSE:
        return {"ns": rng.randint(100, 10_000)}
    if kind == Kind.CTXT_BURST:
        return {"lvl": rng.randint(1, 2),
                "register": rng.choice(CTXT_REGISTERS),
                "value": rng.randint(0, 2**32 - 1),
                "count": rng.randint(1, 4)}
    return {}


def _weighted_kind(rng):
    total = sum(weight for _, weight in GRAMMAR)
    pick = rng.randint(1, total)
    for kind, weight in GRAMMAR:
        pick -= weight
        if pick <= 0:
            return kind
    return GRAMMAR[-1][0]


def generate_ops(seed, n_ops):
    """The op sequence alone (property tests reuse this)."""
    kind_rng = derive_stream(seed, "kinds")
    ops = []
    for index in range(n_ops):
        kind = _weighted_kind(kind_rng)
        arg_rng = derive_stream(seed, f"args:{index}:{kind}")
        ops.append(FuzzOp(kind, tuple(_draw_args(kind, arg_rng).items())))
    return tuple(ops)


def generate_case(seed, n_ops=40, bug=None, fault_ratio=None):
    """Compose one fuzz-harness VM program from a seed.

    A ``fault_ratio`` fraction of seeds (default
    :data:`FAULT_CASE_RATIO`) additionally carry a mild
    :class:`~repro.faults.FaultPlan` overlay — ring chaos plus
    plan-driven spurious interrupts — under which the cross-mode
    oracles relax and the liveness/kernel oracles keep watch.
    """
    ratio = FAULT_CASE_RATIO if fault_ratio is None else fault_ratio
    plan = None
    plan_rng = derive_stream(seed, "fault-plan")
    if plan_rng.random() < ratio:
        plan = FaultPlan(
            seed=plan_rng.randint(0, 2**31 - 1),
            rate=round(plan_rng.uniform(0.01, 0.08), 4),
            rates=((FaultKind.SPURIOUS_IRQ,
                    round(plan_rng.uniform(0.1, 0.5), 4)),),
        )
    return FuzzCase(seed=seed, ops=generate_ops(seed, n_ops),
                    fault_plan=plan, bug=bug)
