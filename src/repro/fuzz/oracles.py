"""The fuzz oracle suite — what "healthy" means for six outcomes.

Zero-fault, stock-machine expectations:

* **crash** — no run raised out of the simulation;
* **mode-state** — per kernel, the comparable slice (architectural
  state, delivered-interrupt accounting, liveness) is equal across
  BASELINE / SW_SVT / HW_SVT (paper §3 transparency);
* **kernel-identity** — per mode, segment and legacy kernels produce
  the same full outcome document (the byte-identity contract);
* **steering** — HW SVt only: Table-2 invariants — SVt micro-registers
  name the booted context plan, every external interrupt landed on
  L0's context (paper §3.1), ctxt bursts neither faulted nor
  mis-read, and ``lvl`` resolution matches Table 2 restated;
* **drain** — no interrupt is still pending after the quiesce phase;
* **sanitizer** — the runtime ordering sanitizer stayed silent;
* **liveness** — no watchdog degradation and no deadlock.

Under an armed :class:`~repro.faults.FaultPlan` only **crash** (minus
deadlocks, which the plan legitimises) and **kernel-identity** stay
armed — fault draws are seeded, so even chaos must replay identically
across kernels.
"""

from dataclasses import dataclass

from repro.core.mode import ExecutionMode
from repro.exp.result import canonical_json
from repro.fuzz.harness import KERNELS, MODES


@dataclass(frozen=True)
class Violation:
    """One oracle's complaint about one case."""

    oracle: str
    detail: str
    mode: str = ""
    kernel: str = ""

    def to_dict(self):
        return {"oracle": self.oracle, "detail": self.detail,
                "mode": self.mode, "kernel": self.kernel}

    def render(self):
        where = "/".join(part for part in (self.mode, self.kernel)
                         if part)
        prefix = f"[{where}] " if where else ""
        return f"{self.oracle}: {prefix}{self.detail}"


def _check_crash(case, outcomes, out):
    faulted = case.fault_plan is not None
    for (mode, kernel), outcome in sorted(outcomes.items()):
        if outcome.crash is not None:
            out.append(Violation("crash", outcome.crash,
                                 mode=str(mode), kernel=kernel))
        if outcome.deadlock is not None and not faulted:
            out.append(Violation(
                "liveness", "deadlock outside an injected fault plan",
                mode=str(mode), kernel=kernel))
        if outcome.degraded and not faulted:
            out.append(Violation(
                "liveness",
                "watchdog degradation outside an injected fault plan",
                mode=str(mode), kernel=kernel))


def _check_mode_state(outcomes, out):
    for kernel in KERNELS:
        baseline = outcomes[(ExecutionMode.BASELINE, kernel)]
        reference = canonical_json(baseline.mode_comparable())
        for mode in (ExecutionMode.SW_SVT, ExecutionMode.HW_SVT):
            candidate = outcomes[(mode, kernel)]
            if canonical_json(candidate.mode_comparable()) != reference:
                keys = _differing_keys(baseline.mode_comparable(),
                                       candidate.mode_comparable())
                out.append(Violation(
                    "mode-state",
                    f"{mode} diverged from baseline in {keys}",
                    mode=str(mode), kernel=kernel))


def _check_kernel_identity(outcomes, out):
    for mode in MODES:
        segment = outcomes[(mode, KERNELS[0])]
        legacy = outcomes[(mode, KERNELS[1])]
        if (canonical_json(segment.kernel_comparable())
                != canonical_json(legacy.kernel_comparable())):
            keys = _differing_keys(segment.kernel_comparable(),
                                   legacy.kernel_comparable())
            out.append(Violation(
                "kernel-identity",
                f"segment and legacy kernels diverged in {keys}",
                mode=str(mode)))


def _check_steering(outcomes, out):
    for kernel in KERNELS:
        outcome = outcomes[(ExecutionMode.HW_SVT, kernel)]
        steering = outcome.steering
        hw = str(ExecutionMode.HW_SVT)
        if steering.get("redirect") != 0:
            out.append(Violation(
                "steering",
                f"external interrupts not redirected to L0's context "
                f"(redirect={steering.get('redirect')!r})",
                mode=hw, kernel=kernel))
        if steering.get("svt") != [0, 1, 2]:
            out.append(Violation(
                "steering",
                f"SVt micro-registers {steering.get('svt')} do not "
                "name the booted visor/vm/nested contexts [0, 1, 2]",
                mode=hw, kernel=kernel))
        for ctx, vector in outcome.deliveries:
            if ctx != 0:
                out.append(Violation(
                    "steering",
                    f"vector {vector:#x} delivered to context {ctx}, "
                    "not L0's context 0",
                    mode=hw, kernel=kernel))
                break
        if steering.get("ctxt_faults"):
            out.append(Violation(
                "steering",
                f"{steering['ctxt_faults']} ctxt burst(s) trapped "
                "on a machine whose SVt fields are all valid",
                mode=hw, kernel=kernel))
        if steering.get("ctxt_mismatches"):
            out.append(Violation(
                "steering",
                f"{steering['ctxt_mismatches']} ctxtld readback(s) "
                "returned a different value than the ctxtst stored",
                mode=hw, kernel=kernel))
        _check_table2(steering, kernel, out)


def _check_table2(steering, kernel, out):
    """Restate paper Table 2 and compare against what the harness saw
    ``resolve_target`` do under the core's final ``is_vm``."""
    svt = steering.get("svt") or [None, None, None]
    resolved = steering.get("resolve", {})
    if steering.get("is_vm"):
        expected = {"1": svt[2], "2": "fault"}
    else:
        expected = {"1": svt[1], "2": svt[2]}
    for lvl, want in sorted(expected.items()):
        got = resolved.get(lvl)
        matches = (isinstance(got, str) and got.startswith("fault")
                   if want == "fault" else got == want)
        if not matches:
            out.append(Violation(
                "steering",
                f"lvl={lvl} resolved to {got!r}, Table 2 says "
                f"{want!r}",
                mode=str(ExecutionMode.HW_SVT), kernel=kernel))


def _check_drain(outcomes, out):
    for (mode, kernel), outcome in sorted(outcomes.items()):
        leftover = sum(outcome.pending)
        if leftover:
            out.append(Violation(
                "drain",
                f"{leftover} interrupt(s) still pending "
                f"({outcome.pending}) after the quiesce phase",
                mode=str(mode), kernel=kernel))


def _check_sanitizer(outcomes, out):
    for (mode, kernel), outcome in sorted(outcomes.items()):
        if outcome.sanitizer_reports:
            out.append(Violation(
                "sanitizer",
                f"{len(outcome.sanitizer_reports)} conflicting "
                "unordered access(es); first: "
                + outcome.sanitizer_reports[0],
                mode=str(mode), kernel=kernel))


def _differing_keys(left, right):
    keys = sorted(
        key for key in set(left) | set(right)
        if canonical_json({"v": left.get(key)})
        != canonical_json({"v": right.get(key)})
    )
    return ", ".join(keys) or "?"


def check_oracles(case, outcomes):
    """Judge six outcomes; returns the (possibly empty) violations."""
    out = []
    _check_crash(case, outcomes, out)
    _check_kernel_identity(outcomes, out)
    if case.fault_plan is None:
        _check_mode_state(outcomes, out)
        _check_steering(outcomes, out)
        _check_drain(outcomes, out)
        _check_sanitizer(outcomes, out)
    return out
