"""Deterministic fuzz-harness VMs (docs/fuzzing.md).

NecoFuzz-style generated guest programs driven differentially across
the three execution modes and both simulation kernels, with an oracle
suite over the outcomes.  Everything derives from one seed through
:func:`repro.fuzz.gen.derive_stream`, so every campaign, case and
shrink replays bit-for-bit at any ``--jobs`` count.

Layers:

* :mod:`repro.fuzz.ops` — the op grammar (trap sequences, VMCS
  accesses, interrupt-window stress, ctxt bursts) and its stable
  serialization;
* :mod:`repro.fuzz.gen` — the seed-deterministic case generator;
* :mod:`repro.fuzz.case` — the ``fuzzcase/1`` JSON format;
* :mod:`repro.fuzz.harness` — one case through six machines
  (3 modes x 2 kernels) under the runtime sanitizer;
* :mod:`repro.fuzz.oracles` — the differential invariant suite;
* :mod:`repro.fuzz.bugs` — named deliberately-broken fixture machines
  that prove the oracles can fire;
* :mod:`repro.fuzz.shrink` — deterministic delta-debugging;
* :mod:`repro.fuzz.driver` — the campaign runner behind
  ``repro fuzz``.
"""

from repro.fuzz.case import CaseSchemaError, FuzzCase, load_case
from repro.fuzz.gen import derive_stream, generate_case
from repro.fuzz.harness import evaluate_case
from repro.fuzz.ops import FuzzOp
from repro.fuzz.oracles import Violation, check_oracles
from repro.fuzz.shrink import shrink_case

__all__ = [
    "CaseSchemaError",
    "FuzzCase",
    "FuzzOp",
    "Violation",
    "check_oracles",
    "derive_stream",
    "evaluate_case",
    "generate_case",
    "load_case",
    "shrink_case",
]
