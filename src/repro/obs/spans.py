"""Span recording on the simulated clock.

A *span* is a named interval of simulated time — ``[start_ns, end_ns]``
on the discrete-event engine's integer nanosecond clock, never wall
clock, so recorded traces are bit-identical across runs and machines
(SVT001-clean by construction).  Spans nest: the recorder keeps an open
stack, and every finished span remembers its depth and the virtualization
level it executed at, which becomes its "thread" in the Chrome trace
export (`repro.obs.export`).

Two producers exist:

* **structural spans** — opened/closed around control-flow landmarks
  (``l2_exit``, ``l1_handler``, ``aux_exit``, ``vhost_tx``, ...) by the
  wired subsystems;
* **charge spans** — emitted by :meth:`repro.sim.trace.Tracer.record`
  for every nanosecond charged to a category, as the interval
  ``[now - ns, now]`` (the simulator advances *before* the charge is
  recorded, so that window is exactly the charged time).  Summing charge
  spans per category therefore reproduces the tracer's totals — and
  Table 1 — exactly.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

#: Span category tags (the Chrome ``cat`` field).
CAT_STRUCT = "struct"
CAT_CHARGE = "charge"
CAT_EVENT = "event"


class Span:
    """One finished (or still-open) interval of simulated time."""

    __slots__ = ("name", "cat", "level", "start_ns", "end_ns",
                 "depth", "args")

    def __init__(self, name: str, cat: str, level: Optional[int],
                 start_ns: int, end_ns: Optional[int], depth: int,
                 args: Optional[dict]) -> None:
        self.name = name
        self.cat = cat
        self.level = level
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.depth = depth
        self.args = args

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} still open")
        return self.end_ns - self.start_ns

    def __repr__(self) -> str:
        end = "open" if self.end_ns is None else self.end_ns
        return (f"Span({self.name!r}, cat={self.cat}, L{self.level}, "
                f"[{self.start_ns}, {end}])")


class SpanRecorder:
    """Accumulates spans against a simulated-clock callable.

    ``clock`` returns the current simulation time in integer
    nanoseconds; the recorder never consults anything else, so two runs
    of the same deterministic simulation produce identical span lists.
    """

    def __init__(self, clock: Callable[[], int]) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    # -- structural spans ------------------------------------------------

    def begin(self, name: str, level: Optional[int] = None,
              cat: str = CAT_STRUCT, **args: Any) -> Span:
        """Open a span at the current simulated time."""
        span = Span(name, cat, level, self.clock(), None,
                    len(self._stack), args or None)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close a span (and any younger spans left open above it)."""
        while self._stack:
            top = self._stack.pop()
            top.end_ns = self.clock()
            self.spans.append(top)
            if top is span:
                return span
        raise ValueError(f"span {span.name!r} is not open")

    # -- pre-timed spans -------------------------------------------------

    def emit(self, name: str, start_ns: int, end_ns: int,
             level: Optional[int] = None, cat: str = CAT_CHARGE,
             **args: Any) -> Span:
        """Record an already-finished interval (charge spans)."""
        span = Span(name, cat, level, start_ns, end_ns,
                    len(self._stack), args or None)
        self.spans.append(span)
        return span

    # -- views -----------------------------------------------------------

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def open_span_names(self) -> tuple:
        """Names of the currently open spans, outermost first — the
        attribution context the runtime sanitizer attaches to reports."""
        return tuple(span.name for span in self._stack)

    def finished(self) -> List[Span]:
        """Finished spans in deterministic order: by start time, then
        outermost first (ties broken by recording order, which is itself
        deterministic)."""
        indexed = list(enumerate(self.spans))
        indexed.sort(key=lambda pair: (pair[1].start_ns, pair[1].depth,
                                       pair[0]))
        return [span for _, span in indexed]

    def totals_by_name(self, cat: Optional[str] = None) -> dict:
        """Summed duration per span name (optionally one category)."""
        totals: dict = {}
        for span in self.spans:
            if cat is not None and span.cat != cat:
                continue
            totals[span.name] = (totals.get(span.name, 0)
                                 + span.duration_ns)
        return dict(sorted(totals.items()))
