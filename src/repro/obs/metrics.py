"""Counters and integer-nanosecond histograms with O(1) record.

The registry is label-aware in the Prometheus style::

    metrics.count("exits_total", reason="CPUID", level=2, mode="baseline")
    metrics.observe("switch_ns", 737, category="switch_l2_l0")

Recording is a single dict operation keyed by ``(name, sorted labels)``;
histograms use power-of-two buckets indexed by ``int.bit_length`` so an
observation is O(1) regardless of magnitude.  Snapshots are plain JSON
data with **deterministic ordering** — every mapping is emitted sorted —
so byte-identical runs produce byte-identical metric documents at any
``--jobs`` count.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

#: A metric key: name plus its sorted ``(label, value)`` pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def key_string(name: str, labels: Tuple[Tuple[str, Any], ...]) -> str:
    """Render ``name{a=1,b=x}`` (labels already sorted in the key)."""
    if not labels:
        return name
    body = ",".join(f"{label}={value}" for label, value in labels)
    return f"{name}{{{body}}}"


class Histogram:
    """Power-of-two bucketed integer histogram (nanosecond values)."""

    __slots__ = ("count", "total", "vmin", "vmax", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.vmin: Optional[int] = None
        self.vmax: Optional[int] = None
        self.buckets: Dict[int, int] = {}   # bit_length -> observations

    def add(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"negative histogram observation {value}")
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> int:
        """Bucket-resolution quantile estimate (upper bound).

        Walks the sorted buckets until the cumulative count covers
        ``q`` of the observations and returns that bucket's inclusive
        upper bound (``2**bits - 1``), clamped into ``[vmin, vmax]`` so
        single-bucket histograms report exact extremes.  Deterministic:
        depends only on recorded counts, never on insertion order.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if not self.count or self.vmin is None or self.vmax is None:
            return 0
        need = q * self.count
        seen = 0
        for bits in sorted(self.buckets):
            seen += self.buckets[bits]
            if seen >= need:
                upper = (1 << bits) - 1
                return max(self.vmin, min(upper, self.vmax))
        return self.vmax

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready dict; bucket keys are the inclusive upper bound
        (``2**bits - 1``) as strings, sorted numerically."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.vmin is not None else 0,
            "max": self.vmax if self.vmax is not None else 0,
            "buckets": {
                str((1 << bits) - 1): self.buckets[bits]
                for bits in sorted(self.buckets)
            },
        }


class MetricsRegistry:
    """Labelled counters + histograms with deterministic snapshots."""

    __slots__ = ("_counters", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, int] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # -- recording (hot path: one dict op) -------------------------------

    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        key = (name, tuple(sorted(labels.items())))
        self._counters[key] = self._counters.get(key, 0) + n

    def observe(self, name: str, value: int, **labels: Any) -> None:
        key = (name, tuple(sorted(labels.items())))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        histogram.add(value)

    # -- reading ---------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> int:
        return self._counters.get(
            (name, tuple(sorted(labels.items()))), 0
        )

    def histogram(self, name: str, **labels: Any) -> Optional[Histogram]:
        return self._histograms.get(
            (name, tuple(sorted(labels.items())))
        )

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all label combinations."""
        return sum(
            value for (counter, _labels), value in
            sorted(self._counters.items()) if counter == name
        )

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view, every mapping sorted for determinism."""
        counters = {
            key_string(name, labels): value
            for (name, labels), value in sorted(self._counters.items())
        }
        histograms = {
            key_string(name, labels): histogram.snapshot()
            for (name, labels), histogram
            in sorted(self._histograms.items())
        }
        return {"counters": counters, "histograms": histograms}


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) \
        -> Dict[str, Any]:
    """Aggregate per-cell snapshots into one document.

    Counters and histogram counts/sums add; mins/maxes combine; buckets
    add bucket-wise.  The merge is order-independent, so the aggregate is
    identical whether cells ran serially or fanned out over a pool.
    """
    counters: Dict[str, int] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for key, value in snapshot.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, data in snapshot.get("histograms", {}).items():
            merged = histograms.get(key)
            if merged is None:
                histograms[key] = {
                    "count": data["count"], "sum": data["sum"],
                    "min": data["min"], "max": data["max"],
                    "buckets": dict(data["buckets"]),
                }
                continue
            merged["count"] += data["count"]
            merged["sum"] += data["sum"]
            merged["min"] = min(merged["min"], data["min"])
            merged["max"] = max(merged["max"], data["max"])
            for bucket, n in data["buckets"].items():
                merged["buckets"][bucket] = \
                    merged["buckets"].get(bucket, 0) + n
    return {
        "counters": dict(sorted(counters.items())),
        "histograms": {
            key: {
                "count": data["count"], "sum": data["sum"],
                "min": data["min"], "max": data["max"],
                "buckets": {
                    bucket: data["buckets"][bucket]
                    for bucket in sorted(data["buckets"], key=int)
                },
            }
            for key, data in sorted(histograms.items())
        },
    }


def flatten_metrics(snapshot: Dict[str, Any]) \
        -> List[Tuple[str, int]]:
    """Flatten a snapshot to sorted ``(key, int)`` pairs.

    Counters keep their key; histograms contribute ``key!count`` and
    ``key!sum`` (the scalar facts result consumers assert on).  The
    output is ready for :func:`repro.exp.result.freeze_mapping`.
    """
    flat: Dict[str, int] = {}
    for key, value in snapshot.get("counters", {}).items():
        flat[key] = value
    for key, data in snapshot.get("histograms", {}).items():
        flat[f"{key}!count"] = data["count"]
        flat[f"{key}!sum"] = data["sum"]
    return sorted(flat.items())
