"""Exporters: Chrome ``trace_event`` JSON, metrics dumps, Table-1 text.

The Chrome format (loadable in Perfetto / ``about:tracing``) models the
simulation as one process with one thread per virtualization level:
``tid 0`` is the L0 host hypervisor, ``tid 1`` the L1 guest hypervisor,
``tid 2`` the L2 nested guest, and a final ``machine`` thread carries
level-less spans (wire time, engine events).  Every span becomes one
``"ph": "X"`` complete event; timestamps are microseconds (the format's
unit) derived from the integer-nanosecond simulated clock.

Because charge spans partition the tracer's charged time exactly
(`repro.obs.spans`), :func:`trace_breakdown` recovers the paper's
Table 1 rows from a trace file alone — the acceptance path
``python -m repro run cpuid --trace out.json`` round-trips through it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import merge_snapshots
from repro.obs.observer import Observer
from repro.obs.spans import CAT_CHARGE, Span
from repro.sim.trace import Category

#: Chrome pid for the single simulated process.
TRACE_PID = 0

#: tid used for spans with no virtualization level.
MACHINE_TID = 7

#: Thread naming for the per-level "threads".
THREAD_NAMES: Tuple[Tuple[int, str], ...] = (
    (0, "L0 host hypervisor"),
    (1, "L1 guest hypervisor"),
    (2, "L2 nested guest"),
    (MACHINE_TID, "machine (wire/idle/events)"),
)

#: Schema tags for the JSON documents.
METRICS_SCHEMA = "repro-metrics/1"


def _tid(level: Optional[int]) -> int:
    return MACHINE_TID if level is None else level


def chrome_trace(observer: Observer,
                 process_name: str = "repro-sim") -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document from recorded spans."""
    if observer.spans is None:
        raise ValueError("observer was built with tracing disabled")
    events: List[Dict[str, Any]] = [
        {
            "ph": "M", "pid": TRACE_PID, "tid": 0,
            "name": "process_name", "args": {"name": process_name},
        },
    ]
    events.extend(
        {
            "ph": "M", "pid": TRACE_PID, "tid": tid,
            "name": "thread_name", "args": {"name": label},
        }
        for tid, label in THREAD_NAMES
    )
    for span in observer.spans.finished():
        event: Dict[str, Any] = {
            "ph": "X",
            "pid": TRACE_PID,
            "tid": _tid(span.level),
            "name": span.name,
            "cat": span.cat,
            "ts": span.start_ns / 1000.0,      # Chrome unit: us
            "dur": span.duration_ns / 1000.0,
        }
        if span.args:
            event["args"] = {
                key: span.args[key] for key in sorted(span.args)
            }
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated", "unit_note":
                      "ts/dur are microseconds of simulated time"},
    }


def write_chrome_trace(path: Any, observer: Observer,
                       process_name: str = "repro-sim") -> Dict[str, Any]:
    """Serialize :func:`chrome_trace` to ``path``; returns the doc."""
    doc = chrome_trace(observer, process_name=process_name)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=1)
        fh.write("\n")
    return doc


def metrics_document(snapshots: Iterable[Dict[str, Any]],
                     meta: Optional[Dict[str, Any]] = None) \
        -> Dict[str, Any]:
    """Aggregate snapshots into the flat metrics JSON document."""
    doc: Dict[str, Any] = {"schema": METRICS_SCHEMA}
    doc.update(merge_snapshots(list(snapshots)))
    if meta:
        doc["meta"] = {key: meta[key] for key in sorted(meta)}
    return doc


def write_metrics(path: Any, snapshots: Iterable[Dict[str, Any]],
                  meta: Optional[Dict[str, Any]] = None) \
        -> Dict[str, Any]:
    doc = metrics_document(snapshots, meta=meta)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return doc


# ---------------------------------------------------------------------------
# Table 1 from a trace
# ---------------------------------------------------------------------------

#: Table 1 rows: label plus the charge categories folded into it (the
#: paper folds lazy save/restore into the handler rows).
TABLE1_FOLD: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("0 L2", (Category.GUEST_WORK,)),
    ("1 Switch L2<->L0", (Category.SWITCH_L2_L0,)),
    ("2 Transform vmcs02/vmcs12", (Category.VMCS_TRANSFORM,)),
    ("3 L0 handler", (Category.L0_HANDLER, Category.L0_LAZY_SWITCH)),
    ("4 Switch L0<->L1", (Category.SWITCH_L0_L1,)),
    ("5 L1 handler", (Category.L1_HANDLER, Category.L1_LAZY_SWITCH)),
)


def charge_totals(spans: Iterable[Span]) -> Dict[str, int]:
    """Summed duration (ns) per category over the charge spans."""
    totals: Dict[str, int] = {}
    for span in spans:
        if span.cat != CAT_CHARGE:
            continue
        totals[span.name] = totals.get(span.name, 0) + span.duration_ns
    return dict(sorted(totals.items()))


def charge_totals_from_events(events: Iterable[Dict[str, Any]]) \
        -> Dict[str, float]:
    """Same, from raw ``traceEvents`` dicts (durations back in ns)."""
    totals: Dict[str, float] = {}
    for event in events:
        if event.get("ph") != "X" or event.get("cat") != CAT_CHARGE:
            continue
        totals[event["name"]] = (totals.get(event["name"], 0.0)
                                 + event["dur"] * 1000.0)
    return dict(sorted(totals.items()))


def trace_breakdown(source: Any, operations: int = 1) \
        -> List[Tuple[str, float, float]]:
    """Table 1 rows ``[(label, us, percent)]`` from a live trace.

    ``source`` may be an :class:`Observer`, a span iterable, a Chrome
    trace document (dict with ``traceEvents``) or a path to one on disk.
    """
    if isinstance(source, Observer):
        if source.spans is None:
            raise ValueError("observer was built with tracing disabled")
        totals: Dict[str, float] = dict(charge_totals(
            source.spans.finished()
        ))
    elif isinstance(source, dict):
        totals = charge_totals_from_events(source["traceEvents"])
    elif isinstance(source, (str, bytes)) or hasattr(source, "open") \
            or hasattr(source, "__fspath__"):
        with open(source) as fh:
            totals = charge_totals_from_events(
                json.load(fh)["traceEvents"]
            )
    else:
        totals = dict(charge_totals(source))
    rows = [
        (label, sum(totals.get(cat, 0) for cat in categories)
         / operations)
        for label, categories in TABLE1_FOLD
    ]
    whole = sum(ns for _, ns in rows) or 1
    return [(label, ns / 1000.0, 100.0 * ns / whole)
            for label, ns in rows]


def render_breakdown(rows: List[Tuple[str, float, float]],
                     title: str = "Trace breakdown (Table 1 parts)") \
        -> str:
    """Terminal table for :func:`trace_breakdown` rows."""
    from repro.analysis.report import format_table

    body = [(label, f"{us:.2f}", f"{pct:.2f}")
            for label, us, pct in rows]
    total = sum(us for _, us, _ in rows)
    body.append(("Total", f"{total:.2f}", "100.00"))
    return format_table(["Part", "Time (us)", "Perc. (%)"], body,
                        title=title)
