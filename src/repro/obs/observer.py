"""The :class:`Observer` facade — one object the whole stack reports to.

A machine owns at most one observer; every wired subsystem (event
engine, nested stack, switch engines, SMT core, interrupt controller,
virtio devices, command rings) holds a reference and guards each report
with ``if obs is not None`` so the **disabled path stays free**: a
machine built without an observer executes exactly the pre-observability
code, and the cpuid fast-path benchmark pins that property.

Two recording planes, independently switchable:

* ``tracing`` — spans on the simulated clock (`repro.obs.spans`),
  exported as a Chrome ``trace_event`` file;
* ``metrics`` — labelled counters/histograms (`repro.obs.metrics`),
  exported as a flat JSON document and shipped per-cell by the parallel
  experiment runner.

**Ambient capture** lets the runner collect metrics from machines it
never constructs: ``with capture_metrics() as obs: ...`` installs an
observer that any :class:`~repro.core.system.Machine` built inside the
block adopts automatically.  The capture stack is per-process state —
each pool worker owns its copy, and snapshots travel back through cell
payload plumbing, so parallel runs stay deterministic.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import CAT_CHARGE, Span, SpanRecorder
from repro.sim.trace import Category

#: Which virtualization level a charge category's time belongs to —
#: the "thread" its charge spans land on in the Chrome export.  ``None``
#: means the machine-level thread (wire time, idle).
CATEGORY_LEVEL: Dict[str, Optional[int]] = {
    Category.GUEST_WORK: 2,
    Category.SWITCH_L2_L0: 0,
    Category.VMCS_TRANSFORM: 0,
    Category.L0_HANDLER: 0,
    Category.L0_LAZY_SWITCH: 0,
    Category.SWITCH_L0_L1: 0,
    Category.L1_HANDLER: 1,
    Category.L1_LAZY_SWITCH: 1,
    Category.STALL_RESUME: 0,
    Category.CHANNEL: 0,
    Category.CROSS_CONTEXT: 0,
    Category.INTERRUPT: 0,
    Category.WATCHDOG: 0,
    Category.IO_DEVICE: 1,
    Category.IO_WIRE: None,
    Category.IDLE: None,
}


class _NullSpan:
    """Shared no-op context manager for the disabled-tracing path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager that closes its span on exit."""

    __slots__ = ("_recorder", "_span")

    def __init__(self, recorder: SpanRecorder, span: Span) -> None:
        self._recorder = recorder
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: Any) -> bool:
        self._recorder.end(self._span)
        return False


class Observer:
    """Span + metrics sink bound to one simulator clock."""

    __slots__ = ("_sim", "spans", "metrics")

    def __init__(self, sim: Any = None, tracing: bool = True,
                 metrics: bool = True) -> None:
        self._sim = sim
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(self.now) if tracing else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if metrics else None
        )

    # -- clock -----------------------------------------------------------

    def now(self) -> int:
        return self._sim.now if self._sim is not None else 0

    def bind(self, sim: Any) -> "Observer":
        """Attach to a simulator's clock (the machine does this)."""
        self._sim = sim
        return self

    @property
    def tracing(self) -> bool:
        return self.spans is not None

    # -- spans -----------------------------------------------------------

    def span(self, name: str, level: Optional[int] = None,
             **args: Any) -> Any:
        """Structural span context manager (no-op when not tracing)."""
        if self.spans is None:
            return _NULL_SPAN
        return _SpanContext(self.spans,
                            self.spans.begin(name, level=level, **args))

    def charge(self, category: str, ns: int,
               meta: Optional[dict] = None) -> None:
        """A tracer charge: emit the interval ``[now - ns, now]`` as a
        charge span (the simulator advanced before recording)."""
        if self.spans is None:
            return
        level = CATEGORY_LEVEL.get(category)
        now = self.now()
        self.spans.emit(category, now - ns, now, level=level,
                        cat=CAT_CHARGE, **(meta or {}))

    # -- metrics ---------------------------------------------------------

    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n, **labels)

    def observe(self, name: str, value: int, **labels: Any) -> None:
        if self.metrics is not None:
            self.metrics.observe(name, value, **labels)

    def metrics_snapshot(self) -> Dict[str, Any]:
        if self.metrics is None:
            return {"counters": {}, "histograms": {}}
        return self.metrics.snapshot()


# ---------------------------------------------------------------------------
# Ambient capture (per-process; each pool worker owns its own stack)
# ---------------------------------------------------------------------------

_AMBIENT: List[Observer] = []


def ambient() -> Optional[Observer]:
    """The innermost active capture observer, if any."""
    return _AMBIENT[-1] if _AMBIENT else None


@contextmanager
def capture_metrics() -> Iterator[Observer]:
    """Install a metrics-only observer that machines built inside the
    block adopt.  Used by the experiment runner for per-cell capture."""
    observer = Observer(tracing=False, metrics=True)
    _AMBIENT.append(observer)
    try:
        yield observer
    finally:
        _AMBIENT.pop()
