"""repro.obs — zero-dependency observability: spans, metrics, exports.

The paper's argument is a time-accounting one (Table 1's breakdown of a
10.40 us nested cpuid), so the simulator must be able to show *where*
nanoseconds go inside a run.  This package provides:

* :class:`Observer` — the facade a :class:`~repro.core.system.Machine`
  threads through every subsystem (``Machine(observer=Observer())``);
* spans on the simulated clock (`repro.obs.spans`) with a Chrome
  ``trace_event`` exporter (`repro.obs.export`) — one trace "thread"
  per virtualization level, loadable in Perfetto;
* labelled counters and int-ns histograms (`repro.obs.metrics`) with
  deterministic snapshots, shipped per-cell by the parallel experiment
  runner;
* :func:`trace_breakdown` — Table 1 recovered from a trace alone.

Everything is off by default: a machine without an observer runs the
exact pre-observability code path.
"""

from repro.obs.export import (
    charge_totals,
    chrome_trace,
    metrics_document,
    render_breakdown,
    trace_breakdown,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    flatten_metrics,
    merge_snapshots,
)
from repro.obs.observer import (
    Observer,
    ambient,
    capture_metrics,
)
from repro.obs.spans import Span, SpanRecorder

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "Span",
    "SpanRecorder",
    "ambient",
    "capture_metrics",
    "charge_totals",
    "chrome_trace",
    "flatten_metrics",
    "merge_snapshots",
    "metrics_document",
    "render_breakdown",
    "trace_breakdown",
    "write_chrome_trace",
    "write_metrics",
]
