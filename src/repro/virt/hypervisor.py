"""KVM-like trap-and-emulate hypervisor.

One class serves both roles of the paper's stack: instantiated at level 0
it is the *host* hypervisor (L0); instantiated at level 1 it is the
*guest* hypervisor (L1), unaware of being virtualized.  The class holds
only **emulation logic** — what a VM trap means and how to complete the
trapped instruction.  *Where* the handler runs, what switching to it
costs, and how guest registers are reached are all mode concerns, injected
by the orchestration layer (`repro.virt.nested` + `repro.core.switch`):

* ``writer`` — a callable ``(register, value)`` for updating the guest's
  registers: plain memory writes in the baseline, ``ctxtst`` cross-context
  stores under HW SVt, command-ring payload entries under SW SVt.
* ``vmcs`` — the descriptor the handler consults.  For L1 this is its own
  vmcs01', whose non-shadowed accesses trap back into L0 (Alg. 1
  lines 8-10) via the VMCS trap callback.
"""

from collections import Counter

from repro.cpu.registers import RegNames
from repro.errors import VirtualizationError
from repro.virt.exits import ExitReason
from repro.virt.transform import L0Policy

#: MSR numbers the handlers special-case.
MSR_TSC_DEADLINE = 0x6E0
MSR_SPEC_CTRL = 0x48
MSR_APIC_EOI = 0x80B


def cpuid_leaf_values(leaf, level):
    """Deterministic CPUID emulation.

    The hypervisor at each level filters the leaf (e.g. hides VMX from its
    guests), so the returned values depend on the virtualization level —
    and the mode-equivalence tests assert every execution mode computes
    exactly these values into the guest's registers.
    """
    base = (leaf * 0x01000193) & 0xFFFFFFFF
    eax = base ^ 0x756E6547            # "Genu"
    ebx = (base + level) ^ 0x49656E69  # "ineI"
    ecx = (base * 3 + level) & 0xFFFFFFFF
    # Level > 0 masks the VMX feature bit (bit 5 of edx here).
    edx = ((base >> 3) | 0x20) & 0xFFFFFFFF
    if level > 0:
        edx &= ~0x20
    return eax, ebx, ecx, edx


class Hypervisor:
    """Trap-and-emulate hypervisor for one virtualization level."""

    def __init__(self, name, level):
        self.name = name
        self.level = level
        self.guests = []          # VirtualMachine instances this one runs
        self.policy = L0Policy()
        # Observability sink; attached by the stack when enabled.
        self.obs = None
        self.hypercalls = {}      # number -> callable(payload) -> value
        self.exit_counts = Counter()
        # Timer plumbing: set by the machine so WRMSR(TSC_DEADLINE) can
        # arm a timer appropriate for this level.
        self.arm_timer = None     # callable(vcpu, deadline_value)
        # EPT-flush plumbing: set by the stack so a guest hypervisor's
        # INVEPT after a page-table update traps (and lets L0 refresh
        # its collapsed tables).
        self.flush_ept = None     # callable(vm)
        # Demand-paging bump allocator, per guest VM.
        self._backing_offsets = {}

    def add_guest(self, vm):
        self.guests.append(vm)

    def register_hypercall(self, number, fn):
        if number in self.hypercalls:
            raise VirtualizationError(f"hypercall {number} already bound")
        self.hypercalls[number] = fn

    # ------------------------------------------------------------------
    # Emulation handlers.  Each receives the trapped guest's vCPU, the
    # exit info, a register ``writer`` and the VMCS used for the exit,
    # completes the instruction and advances RIP through the VMCS (the
    # canonical "increase the instruction pointer after emulating" step).
    # ------------------------------------------------------------------

    #: Non-shadowed VMCS fields each handler touches while running as a
    #: *guest* hypervisor.  Paper §2.3: the cpuid case "shows a best-case
    #: scenario, since L1 handlers for other types of traps trigger many
    #: more traps into L0" — device emulation and interrupt handling walk
    #: control state that hardware shadowing cannot serve.
    AUX_TOUCH = {
        ExitReason.EPT_MISCONFIG: (
            "ept_pointer", "proc_based_controls", "secondary_controls",
            "msr_bitmap_addr", "virtual_apic_addr", "exception_bitmap",
            "tsc_offset", "vmcs_link_pointer",
        ),
        ExitReason.EXTERNAL_INTERRUPT: (
            "pin_based_controls", "virtual_apic_addr", "entry_controls",
        ),
        ExitReason.MSR_WRITE: (
            "msr_bitmap_addr", "virtual_apic_addr", "tsc_offset",
        ),
        ExitReason.HLT: (
            "pin_based_controls", "entry_controls", "virtual_apic_addr",
            "tsc_offset",
        ),
        ExitReason.IO_INSTRUCTION: (
            "io_bitmap_addr", "proc_based_controls", "exception_bitmap",
        ),
    }

    def handle_exit(self, exit_info, vm, vcpu, writer, vmcs):
        """Dispatch one VM exit to its emulation handler."""
        self.exit_counts[exit_info.reason] += 1
        handler = self._DISPATCH.get(exit_info.reason)
        if handler is None:
            raise VirtualizationError(
                f"{self.name}: unhandled exit reason {exit_info.reason}"
            )
        if self.obs is not None:
            self.obs.count("handler_dispatch_total", hypervisor=self.name,
                           reason=exit_info.reason)
        if self.level >= 1:
            for field_name in self.AUX_TOUCH.get(exit_info.reason, ()):
                vmcs.guest_read(field_name)
        return handler(self, exit_info, vm, vcpu, writer, vmcs)

    def _advance_rip(self, exit_info, vcpu, writer, vmcs):
        new_rip = vcpu.read(RegNames.RIP) + exit_info.instruction_length
        writer(RegNames.RIP, new_rip)
        vmcs.guest_write("guest_rip", new_rip)

    # -- CPUID -----------------------------------------------------------

    def _handle_cpuid(self, exit_info, vm, vcpu, writer, vmcs):
        # Handlers consult the exit-information area first; these fields
        # are shadow-readable, so no nested trap is triggered here.
        vmcs.guest_read("exit_reason")
        vmcs.guest_read("exit_qualification")
        leaf = exit_info.qual("leaf", 0)
        eax, ebx, ecx, edx = cpuid_leaf_values(leaf, self.level)
        writer("rax", eax)
        writer("rbx", ebx)
        writer("rcx", ecx)
        writer("rdx", edx)
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    # -- MSRs --------------------------------------------------------------

    def _handle_msr_read(self, exit_info, vm, vcpu, writer, vmcs):
        vmcs.guest_read("exit_reason")
        msr = exit_info.qual("msr")
        value = vcpu.read_msr(msr)
        writer("rax", value & 0xFFFFFFFF)
        writer("rdx", (value >> 32) & 0xFFFFFFFF)
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    def _handle_msr_write(self, exit_info, vm, vcpu, writer, vmcs):
        vmcs.guest_read("exit_reason")
        vmcs.guest_read("exit_qualification")
        msr = exit_info.qual("msr")
        value = exit_info.qual("value", 0)
        vcpu.write_msr(msr, value)
        if msr == MSR_TSC_DEADLINE and self.arm_timer is not None:
            # Arming the guest's virtual deadline timer.  For L1 this
            # itself performs a privileged timer write that traps to L0
            # (the paper's MSR_WRITE profile, §6.3.1/§6.3.3).
            self.arm_timer(vcpu, value)
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    def _handle_rdtsc(self, exit_info, vm, vcpu, writer, vmcs):
        """Virtualized timestamp-counter read (paper §2.1: L0 traps TSC
        accesses "to implement VM scheduling and migration")."""
        vmcs.guest_read("exit_reason")
        value = exit_info.qual("tsc", 0) + vmcs.read("tsc_offset")
        writer("rax", value & 0xFFFFFFFF)
        writer("rdx", (value >> 32) & 0xFFFFFFFF)
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    # -- I/O ------------------------------------------------------------------

    def _handle_io(self, exit_info, vm, vcpu, writer, vmcs):
        vmcs.guest_read("exit_reason")
        vmcs.guest_read("exit_qualification")
        port = exit_info.qual("port")
        device = vm.io_ports.get(port)
        if device is None:
            raise VirtualizationError(
                f"{self.name}: no device at port {port:#x} of {vm.name}"
            )
        if exit_info.qual("write", True):
            device.port_write(port, exit_info.qual("value", 0))
        else:
            writer("rax", device.port_read(port))
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    def _handle_ept_violation(self, exit_info, vm, vcpu, writer, vmcs):
        """Demand paging: the guest touched a guest-physical page its
        EPT does not map yet.  The hypervisor backs it (here: extends
        the RAM mapping by one page) and updates the EPT — an operation
        that, when this hypervisor is itself a guest, traps to *its*
        hypervisor (the paper's "manipulating the extended page tables"
        aux-exit class)."""
        vmcs.guest_read("exit_reason")
        vmcs.guest_read("guest_physical_address")
        gpa = exit_info.qual("gpa")
        page = gpa & ~0xFFF
        # Back the page from this hypervisor's free-memory pool (its own
        # guest-physical space when it is L1, host-physical when L0).
        pool = getattr(vm, "backing_pool_base", None) or 0x50_0000_0000
        offset = self._backing_offsets.get(vm.name, 0)
        vm.ept.map_range(page, 0x1000, pool + offset)
        self._backing_offsets[vm.name] = offset + 0x1000
        # Installing the mapping touches the EPT structures: a
        # non-shadowed VMCS field write plus an INVEPT when running
        # virtualized.
        vmcs.guest_write("ept_pointer", vmcs.read("ept_pointer"))
        vm.ept.invalidate()
        if self.flush_ept is not None:
            self.flush_ept(vm)
        # No RIP advance: the faulting instruction re-executes.

    def _handle_ept_misconfig(self, exit_info, vm, vcpu, writer, vmcs):
        vmcs.guest_read("exit_reason")
        vmcs.guest_read("guest_physical_address")
        gpa = exit_info.qual("gpa")
        device = vm.device_at(gpa)
        if device is None:
            raise VirtualizationError(
                f"{self.name}: EPT misconfig at {gpa:#x} hits no device"
            )
        if exit_info.qual("write", True):
            device.mmio_write(gpa, exit_info.qual("value", 0))
        else:
            writer("rax", device.mmio_read(gpa))
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    # -- VMX instruction emulation (a guest running its own hypervisor) --

    def _handle_vmread(self, exit_info, vm, vcpu, writer, vmcs):
        """The guest executed VMREAD: this hypervisor emulates its
        virtualization hardware by serving the field from the shadow
        area it keeps for the guest (paper Fig. 2's shadowing)."""
        vmcs.guest_read("exit_reason")
        field_name = exit_info.qual("field", "guest_rip")
        shadow = exit_info.qual("shadow_vmcs")
        value = shadow.read(field_name) if shadow is not None else 0
        writer("rax", value if isinstance(value, int) else 0)
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    def _handle_vmwrite(self, exit_info, vm, vcpu, writer, vmcs):
        vmcs.guest_read("exit_reason")
        field_name = exit_info.qual("field", "guest_rip")
        shadow = exit_info.qual("shadow_vmcs")
        if shadow is not None:
            shadow.write(field_name, exit_info.qual("value", 0),
                         force=True)
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    def _handle_vmptrld(self, exit_info, vm, vcpu, writer, vmcs):
        """The guest loaded a VMCS of its own: begin shadowing it
        (paper Fig. 2 step 1 — here performed by whichever level plays
        the supervising hypervisor)."""
        vmcs.guest_read("exit_reason")
        shadow = exit_info.qual("shadow_vmcs")
        if shadow is not None:
            shadow.take_dirty()   # shadow copy is now in sync
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    def _handle_invept(self, exit_info, vm, vcpu, writer, vmcs):
        vmcs.guest_read("exit_reason")
        vm.ept.invalidate()
        if self.flush_ept is not None:
            self.flush_ept(vm)
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    # -- hypercalls --------------------------------------------------------------

    def _handle_vmcall(self, exit_info, vm, vcpu, writer, vmcs):
        number = exit_info.qual("number", 0)
        fn = self.hypercalls.get(number)
        if fn is None:
            writer("rax", 0xFFFFFFFFFFFFFFFF)  # -ENOSYS flavour
        else:
            result = fn(exit_info.qual("payload", {}))
            writer("rax", int(result) & 0xFFFFFFFFFFFFFFFF if result
                   is not None else 0)
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    # -- idle / events -------------------------------------------------------------

    def _handle_hlt(self, exit_info, vm, vcpu, writer, vmcs):
        vcpu.halted = True
        self._advance_rip(exit_info, vcpu, writer, vmcs)

    def _handle_external_interrupt(self, exit_info, vm, vcpu, writer, vmcs):
        vmcs.guest_read("exit_reason")
        vector = exit_info.qual("inject_vector")
        if vector is not None and self.level >= 1:
            # L1's backend raising a virtual interrupt for L2: writing
            # the event-injection field is a non-shadowed control access,
            # so it traps into L0 (one of the §2.3 "L1 exits during
            # VM-exit handling").
            vmcs.guest_write("entry_interruption_info",
                             0x80000000 | int(vector))

    def _handle_preemption_timer(self, exit_info, vm, vcpu, writer, vmcs):
        vmcs.guest_read("exit_reason")

    def _handle_svt_blocked(self, exit_info, vm, vcpu, writer, vmcs):
        # SW SVt §5.3: a synthetic trap that lets the L1 vCPU take a
        # pending interrupt and immediately yield back; no guest-visible
        # state changes and no RIP advance (it is not an instruction).
        vmcs.guest_read("exit_reason")

    _DISPATCH = {
        ExitReason.CPUID: _handle_cpuid,
        ExitReason.MSR_READ: _handle_msr_read,
        ExitReason.MSR_WRITE: _handle_msr_write,
        ExitReason.IO_INSTRUCTION: _handle_io,
        ExitReason.RDTSC: _handle_rdtsc,
        ExitReason.EPT_MISCONFIG: _handle_ept_misconfig,
        ExitReason.EPT_VIOLATION: _handle_ept_violation,
        ExitReason.VMCALL: _handle_vmcall,
        ExitReason.VMREAD: _handle_vmread,
        ExitReason.VMWRITE: _handle_vmwrite,
        ExitReason.VMPTRLD: _handle_vmptrld,
        ExitReason.INVEPT: _handle_invept,
        ExitReason.HLT: _handle_hlt,
        ExitReason.EXTERNAL_INTERRUPT: _handle_external_interrupt,
        ExitReason.PREEMPTION_TIMER: _handle_preemption_timer,
        ExitReason.SVT_BLOCKED: _handle_svt_blocked,
    }

    def __repr__(self):
        return f"Hypervisor({self.name!r}, L{self.level})"
