"""Virtualization substrate: VMCS machinery, EPT, hypervisors, nesting.

Implements the trap-and-emulate world of paper §2 — VM state descriptors
(vmcs01 / vmcs01' / vmcs12 / vmcs02 per Figure 2), the shadowing and
transformation steps, and KVM-like hypervisors that execute Algorithm 1's
control flow for every nested VM trap.
"""

from repro.virt.deep import DeepNestingModel
from repro.virt.ept import EptTable, MmioRegion
from repro.virt.exits import ExitInfo, ExitReason
from repro.virt.l3 import ThirdLevelStack, install_third_level
from repro.virt.transform import (
    sync_shadow_to_vmcs12,
    transform_02_to_12,
    transform_12_to_02,
)
from repro.virt.vmcs import Field, FieldRegistry, Vmcs

__all__ = [
    "DeepNestingModel",
    "EptTable",
    "ExitInfo",
    "ExitReason",
    "ThirdLevelStack",
    "install_third_level",
    "Field",
    "FieldRegistry",
    "MmioRegion",
    "Vmcs",
    "sync_shadow_to_vmcs12",
    "transform_02_to_12",
    "transform_12_to_02",
]
