"""VM state descriptor (VMCS in Intel parlance) — paper §2.1/Figure 2.

A VMCS "contains various fields that describe information such as the
reason of a VM trap ... or the context of the host and its guest vCPU".
We model a typed field registry with the properties the nested-
virtualization machinery cares about:

* ``address_bearing`` — the field holds a physical address and therefore
  must be translated between guest-physical and host-physical space when
  L0 transforms vmcs12 into vmcs02 (paper §2.1: "L0 must thus transform
  these addresses into the actual host physical addresses").
* ``shadow_read`` / ``shadow_write`` — whether Intel-style hardware VMCS
  shadowing can satisfy the access without a VM trap (paper §2.1: "the
  CPU can only shadow some of the VMCS fields").

The three SVt fields of paper Table 2 are ordinary fields here, so the
shadowing/transformation machinery applies to them unchanged.
"""

from dataclasses import dataclass

from repro.errors import VmcsError
from repro.sim import sanitizer as _san


@dataclass(frozen=True)
class Field:
    """Metadata for one VMCS field."""

    name: str
    category: str              # "guest", "host", "control", "exit", "svt"
    address_bearing: bool = False
    shadow_read: bool = False
    shadow_write: bool = False
    writable: bool = True


def _build_fields():
    fields = []

    def f(*args, **kwargs):
        fields.append(Field(*args, **kwargs))

    # Guest-state area: loaded/saved on VM entry/exit.  Register state is
    # shadow-accessible on recent Intel parts.
    for reg in ("rip", "rsp", "rflags", "cr0", "cr3", "cr4", "efer"):
        f(f"guest_{reg}", "guest", shadow_read=True, shadow_write=True)
    f("guest_activity_state", "guest", shadow_read=True, shadow_write=True)
    f("guest_interruptibility", "guest", shadow_read=True, shadow_write=True)

    # Host-state area: where the hypervisor resumes on a trap.
    for reg in ("rip", "rsp", "cr3"):
        f(f"host_{reg}", "host")

    # Execution controls.  Address-bearing controls point at structures in
    # (host- or guest-) physical memory and are never shadow-writable.
    f("pin_based_controls", "control")
    f("proc_based_controls", "control")
    f("secondary_controls", "control")
    f("exception_bitmap", "control")
    f("exit_controls", "control")
    f("entry_controls", "control")
    f("entry_interruption_info", "control")   # event injection
    f("tsc_offset", "control")
    f("preemption_timer_value", "control", shadow_read=True,
      shadow_write=True)
    f("msr_bitmap_addr", "control", address_bearing=True)
    f("io_bitmap_addr", "control", address_bearing=True)
    f("ept_pointer", "control", address_bearing=True)
    f("virtual_apic_addr", "control", address_bearing=True)
    f("vmcs_link_pointer", "control", address_bearing=True)

    # Exit-information area: read-only to software, shadow-readable.
    f("exit_reason", "exit", shadow_read=True, writable=False)
    f("exit_qualification", "exit", shadow_read=True, writable=False)
    f("guest_linear_address", "exit", shadow_read=True, writable=False)
    f("guest_physical_address", "exit", shadow_read=True, writable=False)
    f("instruction_length", "exit", shadow_read=True, writable=False)
    f("interruption_info", "exit", shadow_read=True, writable=False)

    # SVt additions (paper Table 2): target contexts for trap/resume
    # steering and nested cross-context register access.
    f("svt_visor", "svt")
    f("svt_vm", "svt")
    f("svt_nested", "svt")

    return {fld.name: fld for fld in fields}


class FieldRegistry:
    """The (singleton) set of known VMCS fields."""

    FIELDS = _build_fields()

    @classmethod
    def get(cls, name):
        try:
            return cls.FIELDS[name]
        except KeyError:
            raise VmcsError(f"unknown VMCS field {name!r}") from None

    @classmethod
    def names(cls, category=None, address_bearing=None):
        out = []
        for fld in cls.FIELDS.values():
            if category is not None and fld.category != category:
                continue
            if (address_bearing is not None
                    and fld.address_bearing != address_bearing):
                continue
            out.append(fld.name)
        return out


class Vmcs:
    """One VM state descriptor.

    Naming follows the paper: ``vmcs01`` is managed by L0 and represents
    L1; ``vmcs01'`` is L1's own descriptor for L2; ``vmcs12`` is L0's
    shadow of vmcs01'; ``vmcs02`` is what L0 actually runs L2 on.

    The descriptor does **not** hold the whole VM context (paper §2.1) —
    register state beyond the fields above lives in the hardware context
    or hypervisor memory.
    """

    def __init__(self, name, exit_on_write_callback=None):
        self.name = name
        self._values = {}
        self._dirty = set()
        self.loaded = False
        # When set, reads/writes of non-shadowed fields invoke this
        # callback — that is how an L1 access to vmcs01' traps into L0
        # (paper Alg. 1 lines 8-10).
        self._trap_callback = exit_on_write_callback
        # Software-configured trap sets (paper §3.1: "Intel uses various
        # VMCS fields to identify which registers will trap").
        self.trapped_msrs = set()
        self.trapped_io_ports = set()
        self.force_tsc_exit = False
        # The EPT hierarchy this descriptor runs its guest on.  Kept as an
        # object reference alongside the numeric ept_pointer field: the
        # simulator needs the structure, the transform code the address.
        self.ept = None

    # -- raw access (no shadow semantics; used by the owning hypervisor) --

    def read(self, field_name):
        FieldRegistry.get(field_name)
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"vmcs:{self.name}", field_name, "r",
                               "Vmcs.read")
        return self._values.get(field_name, 0)

    def write(self, field_name, value, force=False):
        fld = FieldRegistry.get(field_name)
        if not fld.writable and not force:
            raise VmcsError(f"field {field_name} is read-only to software")
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"vmcs:{self.name}", field_name, "w",
                               "Vmcs.write")
        self._values[field_name] = value
        self._dirty.add(field_name)

    # -- shadowed access (used by a guest hypervisor on its own VMCS) -----

    def guest_read(self, field_name):
        """Read as a *virtualized* hypervisor: shadow-readable fields are
        served from the shadow copy; others trap to the supervising
        hypervisor first (cost and bookkeeping via the callback)."""
        fld = FieldRegistry.get(field_name)
        if not fld.shadow_read and self._trap_callback is not None:
            self._trap_callback("VMREAD", field_name)
        return self.read(field_name)

    def guest_write(self, field_name, value):
        """Write as a virtualized hypervisor (see :meth:`guest_read`)."""
        fld = FieldRegistry.get(field_name)
        if not fld.shadow_write and self._trap_callback is not None:
            self._trap_callback("VMWRITE", field_name)
        self.write(field_name, value, force=not fld.writable)

    # -- dirty tracking (drives transformation cost accounting) -----------

    def take_dirty(self):
        dirty = self._dirty
        self._dirty = set()
        return dirty

    @property
    def dirty_fields(self):
        return frozenset(self._dirty)

    # -- exit info plumbing -------------------------------------------------

    def record_exit(self, exit_info):
        """Hardware writing the exit-information area on a VM trap."""
        self.write("exit_reason", exit_info.reason, force=True)
        self.write("exit_qualification",
                   dict(exit_info.qualification), force=True)
        self.write("guest_rip", exit_info.guest_rip)
        self.write("instruction_length",
                   exit_info.instruction_length, force=True)

    def snapshot(self):
        return dict(self._values)

    def diff(self, values):
        """Field names whose current value differs from a snapshot —
        how the chaos scrubber detects injected corruption."""
        names = set(self._values) | set(values)
        return sorted(
            name for name in names
            if self._values.get(name, 0) != values.get(name, 0)
        )

    def restore(self, values):
        """Reset the value store to a snapshot (the repair path after
        detected corruption).  Changed fields are marked dirty so the
        vmcs12 -> vmcs02 transformation re-syncs them; returns them."""
        changed = self.diff(values)
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"vmcs:{self.name}", "*", "w",
                               "Vmcs.restore")
        self._values = dict(values)
        self._dirty |= set(changed)
        return changed

    def __repr__(self):
        return f"Vmcs({self.name!r}, {len(self._values)} fields set)"
