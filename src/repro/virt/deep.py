"""Deeper nesting hierarchies (L3 and beyond).

The paper's machinery is described for two levels, with the escape hatch
that invalid ctxtld/ctxtst combinations "trap into the hypervisor, which
can then emulate deeper virtualization hierarchies" (§4), and that the
hypervisor multiplexes levels once they outnumber hardware contexts
(§3.1).  This module models the cost of a VM trap at depth *k*:

* A trap from L_k always lands in L0 (single-level hardware) and must be
  reflected to L_{k-1} — but *running* L_{k-1}'s handler means running a
  nested VM whose own privileged operations trap with the cost of a
  depth-(k-1) exit.  The recursion makes stock nested virtualization
  cost grow geometrically with depth (the Turtles observation).
* SVt replaces every switch/lazy term with stall/resume while hardware
  contexts last; levels beyond the core's SMT width are multiplexed at
  memory-switch cost.
"""

from dataclasses import dataclass

from repro.cpu import costmodels
from repro.cpu.costs import CostModel
from repro.errors import ConfigError


@dataclass(frozen=True)
class DeepNestingModel:
    """Closed-form recursion over the calibrated cost model."""

    costs: CostModel = None
    aux_per_reflection: float = 2.0   # privileged ops per handler run
    reason: str = "CPUID"

    def __post_init__(self):
        if self.costs is None:
            object.__setattr__(self, "costs",
                               costmodels.default_model())
        if self.aux_per_reflection < 0:
            raise ConfigError("aux_per_reflection must be >= 0")

    # -- stock nested virtualization ------------------------------------

    def baseline_exit_ns(self, depth):
        """Cost of one trap from L_depth under stock virtualization."""
        costs = self.costs
        if depth < 1:
            raise ConfigError("depth starts at 1 (a plain guest)")
        if depth == 1:
            return (costs.cpuid_guest_work + costs.switch_l2_l0
                    + costs.l0_single(self.reason) + costs.l0_single_lazy)
        # Reflection: L0 legs + the handler at depth-1, whose aux ops
        # are themselves traps from depth-1.
        handler = (costs.l1_pure(self.reason) + costs.l1_lazy_switch
                   + self.aux_per_reflection
                   * self.baseline_exit_ns(depth - 1))
        return (costs.cpuid_guest_work + costs.switch_l2_l0
                + costs.vmcs_transform
                + costs.l0_pure(self.reason) + costs.l0_lazy_switch
                + costs.switch_l0_l1 + handler)

    # -- SVt -----------------------------------------------------------------

    def svt_exit_ns(self, depth, hardware_contexts=8):
        """Cost of one trap from L_depth under HW SVt with a core of
        ``hardware_contexts`` contexts (levels 0..contexts-1 pinned,
        deeper levels multiplexed at memory cost, paper §3.1)."""
        costs = self.costs
        if depth < 1:
            raise ConfigError("depth starts at 1 (a plain guest)")
        pinned = depth < hardware_contexts
        switch = (2 * costs.svt_stall_resume if pinned
                  else costs.switch_l2_l0)
        if depth == 1:
            return (costs.cpuid_guest_work + switch
                    + costs.l0_single(self.reason)
                    + (0 if pinned else costs.l0_single_lazy))
        reflect_switch = (2 * costs.svt_stall_resume if pinned
                          else costs.switch_l0_l1 + costs.l1_lazy_switch)
        handler = (costs.l1_pure(self.reason)
                   + self.aux_per_reflection
                   * self.svt_exit_ns(depth - 1, hardware_contexts))
        return (costs.cpuid_guest_work + switch
                + costs.vmcs_transform
                + costs.l0_pure(self.reason)
                + (0 if pinned else costs.l0_lazy_switch)
                + reflect_switch + handler)

    # -- summaries -----------------------------------------------------------

    def speedup(self, depth, hardware_contexts=8):
        return (self.baseline_exit_ns(depth)
                / self.svt_exit_ns(depth, hardware_contexts))

    def table(self, max_depth=5, hardware_contexts=8):
        """[(depth, baseline_us, svt_us, speedup)] for depth 1..max."""
        rows = []
        for depth in range(1, max_depth + 1):
            base = self.baseline_exit_ns(depth)
            svt = self.svt_exit_ns(depth, hardware_contexts)
            rows.append((depth, base / 1000.0, svt / 1000.0, base / svt))
        return rows

    def sanity_check_against_simulation(self):
        """At depth 2 with the cpuid aux count (0), the recursion must
        reproduce the Table-1 / Fig-6 anchors."""
        flat = DeepNestingModel(costs=self.costs, aux_per_reflection=0)
        return (flat.baseline_exit_ns(2), flat.svt_exit_ns(2))
