"""VMCS transformations between virtualization levels (paper §2.1-§2.2).

Three operations, matching Figure 2 and Algorithm 1:

* :func:`sync_shadow_to_vmcs12` — step ①: L0 reflects L1's updates of
  vmcs01' into its shadow copy vmcs12.
* :func:`transform_12_to_02` — step ② / Alg. 1 line 14: build the
  descriptor L2 really runs on.  Guest-physical addresses set by L1
  become host-physical, and L0's policy is merged in ("L0 configures
  vmcs02 to ensure access to these resources trigger a VM trap,
  regardless of the configuration set by L1").
* :func:`transform_02_to_12` — Alg. 1 line 3: after an L2 trap, reflect
  hardware-written state back into vmcs12 so L1 sees it, translating
  host-physical values back to L1's guest-physical space.
"""

from dataclasses import dataclass, field

from repro.virt.vmcs import FieldRegistry

#: Guest-state fields reflected in both directions.
_GUEST_STATE_FIELDS = tuple(FieldRegistry.names(category="guest"))

#: Control fields copied from vmcs12 into vmcs02 (address-bearing ones get
#: translated on the way).
_CONTROL_FIELDS = tuple(FieldRegistry.names(category="control"))

#: Exit-information fields reflected 02 -> 12 after a nested trap.
_EXIT_FIELDS = tuple(FieldRegistry.names(category="exit"))

#: Sentinel host-physical address standing in for L0's VM-exit entry point.
L0_HANDLER_ENTRY = 0xFFFF_8000_0000_0000


@dataclass
class L0Policy:
    """What L0 forces onto vmcs02 regardless of L1's wishes (paper §2.1:
    timestamp-counter trapping for scheduling/migration is the example)."""

    force_tsc_exit: bool = True
    forced_msr_traps: set = field(default_factory=set)
    forced_io_traps: set = field(default_factory=set)


def sync_shadow_to_vmcs12(vmcs01_prime, vmcs12, fields=None):
    """Reflect L1's writes to vmcs01' into L0's shadow vmcs12.

    ``fields`` limits the sync (the trap handler knows which field L1
    touched); ``None`` syncs every dirty field.  Returns the synced names.
    """
    names = list(fields) if fields is not None else sorted(
        vmcs01_prime.dirty_fields
    )
    for name in names:
        vmcs12.write(name, vmcs01_prime.read(name), force=True)
    vmcs12.trapped_msrs = set(vmcs01_prime.trapped_msrs)
    vmcs12.trapped_io_ports = set(vmcs01_prime.trapped_io_ports)
    vmcs12.force_tsc_exit = vmcs01_prime.force_tsc_exit
    return names


def transform_12_to_02(vmcs12, vmcs02, ept01, policy, composed_ept=None,
                       obs=None):
    """Build/refresh vmcs02 from vmcs12 (paper Fig. 2 step ②).

    ``ept01`` is L0's EPT for L1 — the table that turns "guest physical
    addresses pertaining to L1" into host-physical ones.  ``composed_ept``
    is the pre-collapsed two-level table for L2 (see
    :meth:`repro.virt.ept.EptTable.compose`); when given, vmcs02's EPT
    pointer is marked as pointing at it.

    Returns the names of address-bearing fields that were translated.
    """
    translated = []
    for name in _GUEST_STATE_FIELDS:
        vmcs02.write(name, vmcs12.read(name), force=True)
    for name in _CONTROL_FIELDS:
        fld = FieldRegistry.get(name)
        value = vmcs12.read(name)
        if fld.address_bearing and isinstance(value, int) and value != 0:
            value = ept01.translate(value)
            translated.append(name)
        vmcs02.write(name, value, force=True)

    # Host-state area of vmcs02 is L0's own, never L1's: a trap from L2
    # must always land in L0 first (paper Fig. 1 step 1).  The sentinel
    # address below stands for L0's trap-handler entry point.
    vmcs02.write("host_rip", L0_HANDLER_ENTRY, force=True)

    # Merge L0 policy on top of L1's trap configuration.
    vmcs02.trapped_msrs = set(vmcs12.trapped_msrs) | set(
        policy.forced_msr_traps
    )
    vmcs02.trapped_io_ports = set(vmcs12.trapped_io_ports) | set(
        policy.forced_io_traps
    )
    vmcs02.force_tsc_exit = vmcs12.force_tsc_exit or policy.force_tsc_exit

    if composed_ept is not None:
        vmcs02.ept = composed_ept
    vmcs02.take_dirty()
    if obs is not None:
        obs.count("vmcs_fields_copied_total", direction="12->02",
                  n=len(_GUEST_STATE_FIELDS) + len(_CONTROL_FIELDS))
        obs.count("vmcs_fields_translated_total", direction="12->02",
                  n=len(translated))
    return translated


def transform_02_to_12(vmcs02, vmcs12, ept01, obs=None):
    """Reflect post-trap state of vmcs02 back into vmcs12 (Alg. 1 line 3).

    Guest state (e.g. the RIP that trapped) and the exit-information area
    are copied; host-physical addresses in exit info are translated back
    to L1 guest-physical via the inverse of ``ept01``.

    Returns the reflected field names.
    """
    reflected = []
    for name in _GUEST_STATE_FIELDS:
        vmcs12.write(name, vmcs02.read(name), force=True)
        reflected.append(name)
    for name in _EXIT_FIELDS:
        value = vmcs02.read(name)
        if name == "guest_physical_address" and isinstance(value, int) \
                and value != 0:
            value = ept01.inverse(value)
        vmcs12.write(name, value, force=True)
        reflected.append(name)
    vmcs12.take_dirty()
    if obs is not None:
        obs.count("vmcs_fields_copied_total", direction="02->12",
                  n=len(reflected))
    return reflected
