"""A functional third virtualization level (L3).

Paper §4: unsupported ctxtld/ctxtst combinations "produce a trap into
the hypervisor, which can then emulate deeper virtualization
hierarchies" — and §3.1 describes multiplexing levels past the core's
SMT width.  This module realises that escape hatch on the live
machinery: an L3 guest runs under L2-as-hypervisor, which is itself the
nested guest of the existing L0/L1 stack.

The load-bearing property (the Turtles blowup): while L2 handles an L3
trap, *every privileged operation L2 performs is itself a full
depth-2 nested exit* — its VMREAD/VMWRITEs on vmcs23' reflect through
L0 to L1, exactly as the analytic model in `repro.virt.deep` assumes.
`tests/virt/test_l3.py` cross-checks the two.

Mode handling: the L3↔L0 and L0↔L2-handler crossings are priced per the
machine's engine class (memory switches for baseline/SW SVt — the SW
prototype only accelerates L0↔L1 — stall/resume for HW SVt, which would
hold L3 in a fourth hardware context); L2's recursive aux exits go
through the untouched :class:`~repro.virt.nested.NestedStack`, so they
get each mode's full treatment automatically.
"""

from collections import Counter

from repro.core.mode import ExecutionMode
from repro.cpu.smt import INVALID_CONTEXT
from repro.errors import VirtualizationError
from repro.sim.trace import Category
from repro.virt.exits import ExitInfo, ExitReason
from repro.virt.hypervisor import Hypervisor
from repro.virt.transform import transform_02_to_12, transform_12_to_02
from repro.virt.vm import VirtualMachine
from repro.virt.vmcs import Vmcs


class ThirdLevelStack:
    """L3 orchestration layered over a booted 2-level machine."""

    def __init__(self, machine, ram_mb=8):
        self.machine = machine
        self.stack = machine.stack
        self.costs = machine.costs
        self.engine = machine.engine

        #: L2's own hypervisor persona (it was a plain guest until now).
        self.l2_hypervisor = Hypervisor("L2", 2)
        self.l2_hypervisor.arm_timer = self._l2_arm_timer

        # L3's RAM lives inside L2's guest-physical space (8..16 MB of
        # L2's 32 MB window).
        self.l3_vm = VirtualMachine(
            "L3-vm", 3, ram_mb=ram_mb, n_vcpus=1,
            ram_target_base=8 * 1024 * 1024,
        )
        self.l3_vm.backing_pool_base = 24 * 1024 * 1024  # L2 free space

        # Descriptor graph, one level up from Fig. 2: vmcs23' is L2's
        # descriptor for L3; vmcs13 is the shadow the level below keeps;
        # vmcs03 is what L0 really runs L3 on.  As in NestedStack, the
        # shadow pair is one object with two access styles.
        self.vmcs13 = Vmcs("vmcs13",
                           exit_on_write_callback=self._l2_vmcs_trap)
        self.vmcs23p = self.vmcs13
        self.vmcs03 = Vmcs("vmcs03")

        #: Table mapping L2-guest-physical to host-physical: the already
        #: collapsed two-level table of the inner stack.
        self.ept02 = self.stack.composed_ept
        self.ept23 = self.l3_vm.ept
        self.composed_ept = None

        self.exit_counts = Counter()
        self.exit_ns = Counter()
        self.booted = False

    # ------------------------------------------------------------------

    def boot(self):
        if self.booted:
            raise VirtualizationError("third level already booted")
        # L2 configures vmcs23' (its first VMPTRLD and field writes each
        # trap through the full depth-2 machinery — the expensive
        # bring-up the Turtles paper describes).
        self._l2_aux(ExitReason.VMPTRLD)
        self.vmcs13.write("guest_rip", 0x1000)
        self.vmcs13.write("guest_cr3", 0x3000)
        self.vmcs13.write("ept_pointer", 0x6000)
        self.vmcs13.write("svt_visor", 0)
        self.vmcs13.write("svt_vm", 1)
        self.vmcs13.write("svt_nested", INVALID_CONTEXT)
        # L0 collapses the three-level translation and builds vmcs03.
        self.composed_ept = self.ept23.compose(self.ept02)
        transform_12_to_02(self.vmcs13, self.vmcs03, self.ept02,
                           self.stack.l0.policy,
                           composed_ept=self.composed_ept)
        self.booted = True

    # ------------------------------------------------------------------

    def l3_exit(self, exit_info):
        """One VM trap from L3: reflected to L2-as-hypervisor, whose own
        privileged ops recurse through the depth-2 stack."""
        if not self.booted:
            raise VirtualizationError("boot() the third level first")
        vcpu = self.l3_vm.vcpu
        vcpu.exits += 1
        started = self.machine.sim.now

        self.vmcs03.record_exit(exit_info)
        # L3 -> L0: the generic guest trap.
        self.engine.exit_l2_to_l0()
        self.engine.charge_l0_lazy_nested()
        self._charge(self.costs.vmcs_transform_each,
                     Category.VMCS_TRANSFORM)
        transform_02_to_12(self.vmcs03, self.vmcs13, self.ept02)
        self._charge(self.costs.l0_pure(exit_info.reason),
                     Category.L0_HANDLER)
        self.vmcs13.record_exit(exit_info)

        # L0 -> L2-as-handler (entering a *nested* guest).
        self._enter_l2_handler()
        self._charge(self.costs.l1_pure(exit_info.reason),
                     Category.L1_HANDLER)
        self.l2_hypervisor.handle_exit(
            exit_info, self.l3_vm, vcpu, vcpu.write, self.vmcs23p
        )
        self._leave_l2_handler()

        self._charge(self.costs.vmcs_transform_each,
                     Category.VMCS_TRANSFORM)
        transform_12_to_02(self.vmcs13, self.vmcs03, self.ept02,
                           self.stack.l0.policy,
                           composed_ept=self.composed_ept)
        self.engine.resume_l2()

        elapsed = self.machine.sim.now - started
        self.exit_counts[exit_info.reason] += 1
        self.exit_ns[exit_info.reason] += elapsed
        return elapsed

    def run_instruction(self, instruction):
        """Execute one L3 instruction (classify + trap as needed)."""
        from repro.cpu.isa import Op

        kind = instruction.kind
        if instruction.work_ns:
            self._charge(instruction.work_ns, Category.GUEST_WORK)
        if kind == Op.ALU:
            return None
        if kind == Op.CPUID:
            self._charge(self.costs.cpuid_guest_work, Category.GUEST_WORK)
            return self.l3_exit(ExitInfo(
                ExitReason.CPUID, dict(instruction.operands),
                guest_rip=self.l3_vm.vcpu.rip,
            ))
        if kind in (Op.RDMSR, Op.WRMSR):
            reason = (ExitReason.MSR_READ if kind == Op.RDMSR
                      else ExitReason.MSR_WRITE)
            return self.l3_exit(ExitInfo(
                reason, dict(instruction.operands),
                guest_rip=self.l3_vm.vcpu.rip,
            ))
        if kind == Op.HLT:
            return self.l3_exit(ExitInfo(
                ExitReason.HLT, guest_rip=self.l3_vm.vcpu.rip,
            ))
        raise VirtualizationError(
            f"L3 model does not classify {kind!r}"
        )

    def run_program(self, program):
        started = self.machine.sim.now
        count = 0
        for instruction in program:
            self.run_instruction(instruction)
            self.l3_vm.vcpu.halted = False
            count += 1
        return (self.machine.sim.now - started), count

    # ------------------------------------------------------------------
    # L2's privileged operations: full depth-2 nested exits
    # ------------------------------------------------------------------

    def _l2_vmcs_trap(self, kind, field_name):
        """L2 touched a non-shadowed vmcs23' field: that VMREAD/VMWRITE
        is a trap of the *L2 guest*, reflected through L0 to L1 — the
        Turtles recursion, on the real machinery."""
        self._l2_aux(kind, field=field_name)

    def _l2_aux(self, reason, field=None):
        qualification = {"owner": "l1", "shadow_vmcs": self.vmcs13}
        if field is not None:
            qualification["field"] = field
        self.stack.l2_exit(ExitInfo(
            reason, qualification,
            guest_rip=self.machine.l2_vm.vcpu.rip,
        ))

    def _l2_arm_timer(self, vcpu, deadline_value):
        """L2 arming its virtual timer for L3 is a privileged MSR write:
        a full depth-2 exit."""
        self._l2_aux(ExitReason.MSR_WRITE)

    # ------------------------------------------------------------------
    # L0 <-> L2-as-handler crossings
    # ------------------------------------------------------------------

    def _enter_l2_handler(self):
        if self.engine.mode == ExecutionMode.HW_SVT:
            # A fourth hardware context would hold L3; entering the L2
            # handler is a thread resume.
            self._charge(self.costs.svt_stall_resume,
                         Category.STALL_RESUME)
        else:
            # Stock nested entry (the SW prototype accelerates only the
            # L0<->L1 reflection, paper §5.2).
            self._charge(self.costs.switch_l0_l1_each,
                         Category.SWITCH_L0_L1)
            self._charge(self.costs.l1_lazy_switch,
                         Category.L1_LAZY_SWITCH)

    def _leave_l2_handler(self):
        if self.engine.mode == ExecutionMode.HW_SVT:
            self._charge(self.costs.svt_stall_resume,
                         Category.STALL_RESUME)
        else:
            self._charge(self.costs.switch_l0_l1_each,
                         Category.SWITCH_L0_L1)

    def _charge(self, ns, category):
        if ns:
            self.machine.sim.charge(ns)
            self.machine.tracer.record(category, ns)


def install_third_level(machine, ram_mb=8):
    """Build and boot an L3 on top of a machine; returns the stack."""
    stack = ThirdLevelStack(machine, ram_mb=ram_mb)
    stack.boot()
    return stack
