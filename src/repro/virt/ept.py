"""Extended page tables: guest-physical to host-physical translation.

Each virtualization level adds one level of address indirection: an L2
guest-physical address translates through L1's EPT into an L1 guest-
physical address, which translates through L0's EPT into a host-physical
address.  L0 collapses the two levels when building vmcs02 (paper §2.1),
and :meth:`EptTable.compose` is exactly that collapse.

MMIO regions are mapped as *misconfigured* entries so that any access
exits with EPT_MISCONFIG — that is how virtio device kicks trap (the
paper's profiling: "EPT_MISCONFIG traps, which largely correspond to
accesses to the network device", §6.3.1).
"""

import bisect
from dataclasses import dataclass

from repro.errors import EptFault


@dataclass(frozen=True)
class MmioRegion:
    """A guest-physical range wired to a device (misconfig-on-access)."""

    base: int
    size: int
    device: object

    def contains(self, gpa):
        return self.base <= gpa < self.base + self.size


class EptMisconfig(EptFault):
    """Access hit an MMIO (misconfigured) region — exits, not a fault."""

    def __init__(self, gpa, region):
        self.region = region
        super().__init__(gpa, f"EPT misconfig at GPA {gpa:#x}")


class EptTable:
    """Sorted, non-overlapping interval map from GPA ranges to HPA bases."""

    def __init__(self, name="ept"):
        self.name = name
        self._bases = []     # sorted GPA bases
        self._ranges = []    # parallel: (gpa_base, size, hpa_base)
        self._mmio = []      # MmioRegion list (also non-overlapping)
        self.generation = 0  # bumped by invalidate(); ablation/test hook

    # -- construction -------------------------------------------------------

    def map_range(self, gpa, size, hpa):
        """Map [gpa, gpa+size) to [hpa, hpa+size)."""
        if size <= 0:
            raise EptFault(gpa, "mapping size must be positive")
        self._check_overlap(gpa, size)
        idx = bisect.bisect_left(self._bases, gpa)
        self._bases.insert(idx, gpa)
        self._ranges.insert(idx, (gpa, size, hpa))

    def map_mmio(self, gpa, size, device):
        """Wire [gpa, gpa+size) to a device via EPT misconfig."""
        if size <= 0:
            raise EptFault(gpa, "MMIO size must be positive")
        self._check_overlap(gpa, size)
        region = MmioRegion(gpa, size, device)
        self._mmio.append(region)
        return region

    def _check_overlap(self, gpa, size):
        end = gpa + size
        for base, rsize, _ in self._ranges:
            if gpa < base + rsize and base < end:
                raise EptFault(gpa, "overlapping EPT mapping")
        for region in self._mmio:
            if gpa < region.base + region.size and region.base < end:
                raise EptFault(gpa, "overlapping MMIO region")

    # -- translation ----------------------------------------------------------

    def translate(self, gpa):
        """GPA -> HPA; raises :class:`EptMisconfig` on MMIO and
        :class:`EptFault` on unmapped addresses."""
        for region in self._mmio:
            if region.contains(gpa):
                raise EptMisconfig(gpa, region)
        idx = bisect.bisect_right(self._bases, gpa) - 1
        if idx >= 0:
            base, size, hpa = self._ranges[idx]
            if base <= gpa < base + size:
                return hpa + (gpa - base)
        raise EptFault(gpa)

    def lookup_mmio(self, gpa):
        """The MMIO region covering ``gpa``, or None."""
        for region in self._mmio:
            if region.contains(gpa):
                return region
        return None

    def inverse(self, hpa):
        """HPA -> GPA (used when L0 reflects state back into vmcs12)."""
        for base, size, mapped_hpa in self._ranges:
            if mapped_hpa <= hpa < mapped_hpa + size:
                return base + (hpa - mapped_hpa)
        raise EptFault(hpa, f"no mapping covers HPA {hpa:#x}")

    def compose(self, outer):
        """Collapse ``self`` (inner, e.g. L1's EPT for L2) with ``outer``
        (e.g. L0's EPT for L1) into a direct table — what L0 builds into
        vmcs02's EPT pointer.  Inner MMIO regions survive unchanged (they
        must keep trapping); inner RAM ranges are re-based through the
        outer table, splitting when they straddle outer mappings."""
        composed = EptTable(name=f"{self.name}*{outer.name}")
        for region in self._mmio:
            composed.map_mmio(region.base, region.size, region.device)
        for base, size, mid in self._ranges:
            offset = 0
            while offset < size:
                hpa = outer.translate(mid + offset)
                # Extend the run as far as the outer mapping is contiguous.
                run = 1
                step = 4096
                while offset + run * step < size:
                    nxt = outer.translate(mid + offset + run * step)
                    if nxt != hpa + run * step:
                        break
                    run += 1
                chunk = min(run * step, size - offset)
                composed.map_range(base + offset, chunk, hpa)
                offset += chunk
        return composed

    def invalidate(self):
        """INVEPT: bump the generation (models TLB shootdown points)."""
        self.generation += 1

    @property
    def mapped_bytes(self):
        return sum(size for _, size, _ in self._ranges)

    def __repr__(self):
        return (
            f"EptTable({self.name!r}, {len(self._ranges)} ranges, "
            f"{len(self._mmio)} mmio)"
        )
