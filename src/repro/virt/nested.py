"""Nested-virtualization orchestration: Algorithm 1, executed once.

:class:`NestedStack` owns the descriptor graph of paper Figure 2 —
vmcs01 (L0 runs L1 on it), vmcs01'/vmcs12 (L1's descriptor for L2 and
L0's shadow of it), vmcs02 (what L2 really runs on) — and walks the exact
control flow of Algorithm 1 for every nested VM trap.  Every boundary
crossing is delegated to a :class:`~repro.core.switch.SwitchEngine`, so
the same control flow prices out as 10.40 µs (baseline), 8.46 µs (SW SVt)
or 5.36 µs (HW SVt) for a cpuid trap.

Shadowing note: with hardware VMCS shadowing (which the paper's baseline
includes), L1's accesses to shadowed vmcs01' fields are served directly
from the shadow region — which *is* vmcs12.  We therefore model vmcs01'
and vmcs12 as one object with two access styles: L1 uses
``guest_read``/``guest_write`` (non-shadowed accesses trap to L0, Alg. 1
lines 8-10), L0 uses raw ``read``/``write``.
"""

from collections import Counter
from contextlib import nullcontext

from repro.cpu.smt import INVALID_CONTEXT
from repro.errors import VirtualizationError
from repro.sim import sanitizer as _san
from repro.sim.trace import Category
from repro.virt.exits import ExitInfo, ExitReason
from repro.virt.hypervisor import MSR_APIC_EOI, MSR_TSC_DEADLINE
from repro.virt.transform import (
    transform_02_to_12,
    transform_12_to_02,
)
from repro.virt.vmcs import Vmcs

#: Share of the L0 nested handler charged on the inject side (Alg. 1
#: lines 3-5); the rest is charged on the resume side (lines 13-14).
_L0_INJECT_NUMER, _L0_INJECT_DENOM = 11, 20

#: Reusable no-op context manager for the observability-off path.
_NO_SPAN = nullcontext()


def _enter_ctx(label):
    """Tell the runtime sanitizer which simulated context executes now.

    A label *change* here is always a sanctioned VM trap/resume
    crossing (the same calls SVT007 lists in ``ORDERING_CALLS``), and
    hardware serializes at that boundary — so the change doubles as a
    happens-before edge.  Raw ``Sanitizer.set_context`` stays
    non-ordering, which is what lets tests inject genuinely unordered
    cross-context mutations.

    Returns the previous label (for save/restore around nested windows)
    or ``None`` when the sanitizer is off — a single global load on the
    disabled path."""
    san = _san.ACTIVE
    if san is None:
        return None
    previous = san.context_label
    if label != previous:
        san.ordering_event("vm-crossing")
        san.set_context(label)
    return previous


def _leave_ctx(previous):
    san = _san.ACTIVE
    if previous is not None and san is not None \
            and previous != san.context_label:
        san.ordering_event("vm-crossing")
        san.set_context(previous)


class NestedStack:
    """A booted L0/L1/L2 stack executing Algorithm 1 per VM trap."""

    def __init__(self, sim, tracer, costs, engine, l0, l1, l1_vm, l2_vm,
                 interrupts=None, obs=None):
        self.sim = sim
        self.tracer = tracer
        self.costs = costs
        self.engine = engine
        self.l0 = l0
        self.l1 = l1
        self.l1_vm = l1_vm
        self.l2_vm = l2_vm
        self.interrupts = interrupts
        self.obs = obs
        l0.obs = obs
        l1.obs = obs

        # Descriptor graph (Figure 2).  ept01 translates L1's guest-
        # physical addresses; ept12 is L1's table for L2.
        self.vmcs01 = Vmcs("vmcs01")
        self.vmcs12 = Vmcs("vmcs12", exit_on_write_callback=self._l1_vmcs_trap)
        self.vmcs01p = self.vmcs12   # see module docstring
        self.vmcs02 = Vmcs("vmcs02")
        self.ept01 = l1_vm.ept
        self.ept12 = l2_vm.ept
        self.composed_ept = None

        self.booted = False
        self._shadowing = False      # aux traps only after shadow setup

        # Profiling (feeds the §6.2/§6.3 shares and Table 1 repro).
        self.exit_ns = Counter()
        self.exit_counts = Counter()
        self.aux_exit_counts = Counter()
        self.aux_exit_ns = Counter()

        # Timer plumbing: an L1 WRMSR to the deadline MSR is itself a
        # privileged op trapping to L0 (paper §6.3: MSR_WRITE profile).
        l1.arm_timer = self._l1_arm_timer
        l0.arm_timer = self._l0_arm_timer
        # EPT plumbing: L1's INVEPT after updating L2's page tables
        # traps, and L0 refreshes its collapsed table (paper §2.2 lists
        # "manipulating the extended page tables" among the L1 ops that
        # trigger additional VM traps).
        l1.flush_ept = self._l1_flush_ept

    # ------------------------------------------------------------------
    # Boot (paper §2.1 narrative + §4 "Nested Virtualization" walkthrough)
    # ------------------------------------------------------------------

    def boot(self):
        """Bring the stack to steady state: shadowing active, vmcs02
        built, SVt fields configured, L2 runnable."""
        if self.booted:
            raise VirtualizationError("stack already booted")

        # L0 configures vmcs01 for L1: host state plus — under SVt — the
        # context steering fields (visor=ctx0, vm=ctx1, nested invalid
        # until L1 starts a nested guest).
        self.vmcs01.write("host_rip", 0xFFFF800000000000)
        self.vmcs01.write("svt_visor", 0)
        self.vmcs01.write("svt_vm", 1)
        self.vmcs01.write("svt_nested", INVALID_CONTEXT)
        self.engine.load_vmcs(self.vmcs01)

        # L1 creates vmcs01' for L2.  Its first VMPTRLD traps into L0,
        # which begins shadowing vmcs01' into vmcs12 (Fig. 2 step 1).
        self._shadowing = False  # boot-time writes don't count as traps
        self.vmcs12.write("guest_rip", 0x1000)
        self.vmcs12.write("guest_rsp", 0x7FFF0000)
        self.vmcs12.write("guest_cr3", 0x2000)
        self.vmcs12.write("proc_based_controls", 0xB5186DFA)
        self.vmcs12.write("exception_bitmap", 0x60042)
        # Address-bearing controls carry L1 guest-physical addresses.
        self.vmcs12.write("msr_bitmap_addr", 0x3000)
        self.vmcs12.write("ept_pointer", 0x5000)
        self.vmcs12.trapped_msrs.add(MSR_TSC_DEADLINE)
        self.vmcs12.trapped_msrs.add(MSR_APIC_EOI)
        # L1's own view of the SVt steering (paper: "from its point of
        # view L1 executes in context-0, and its guest VM in context-1").
        self.vmcs12.write("svt_visor", 0)
        self.vmcs12.write("svt_vm", 1)
        self.vmcs12.write("svt_nested", INVALID_CONTEXT)

        # L1 starts L2: VMRESUME on vmcs01' traps into L0, which builds
        # vmcs02 (Fig. 2 step 2): translate L1-GPAs to HPAs, merge L0
        # policy, collapse the EPT hierarchy, and virtualize the SVt
        # context indexes (L1 said context-1; L0 uses context-2).
        self.composed_ept = self.ept12.compose(self.ept01)
        transform_12_to_02(self.vmcs12, self.vmcs02, self.ept01,
                           self.l0.policy, composed_ept=self.composed_ept)
        self.vmcs02.write("svt_visor", 0)
        self.vmcs02.write("svt_vm", 2)
        self.vmcs02.write("svt_nested", INVALID_CONTEXT)
        # ...and lets L1 reach L2's registers: SVt_nested in vmcs01.
        self.vmcs01.write("svt_nested", 2)
        self.engine.load_vmcs(self.vmcs01)
        self.engine.load_vmcs(self.vmcs02)

        self._shadowing = True
        self.booted = True

    # ------------------------------------------------------------------
    # Algorithm 1: one nested VM trap
    # ------------------------------------------------------------------

    def l2_exit(self, exit_info):
        """Handle one VM trap from L2 (Alg. 1 lines 1-16)."""
        if not self.booted:
            raise VirtualizationError("boot() the stack first")
        vcpu = self.l2_vm.vcpu
        vcpu.exits += 1
        started = self.sim.now

        obs = self.obs
        span = (obs.span(f"l2_exit:{exit_info.reason}", level=0,
                         reason=exit_info.reason)
                if obs is not None else None)
        if span is not None:
            span.__enter__()
        try:
            _enter_ctx("L2")                       # hardware, on L2's behalf
            self.vmcs02.record_exit(exit_info)     # hardware exit-info
            self.engine.exit_l2_to_l0()            # line 2
            _enter_ctx("L0")

            if self._l0_owns(exit_info):
                self._handle_direct(exit_info, vcpu)
            else:
                self._reflect_to_l1(exit_info, vcpu)

            self.engine.resume_l2()                # line 15
            _enter_ctx("L2")
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        elapsed = self.sim.now - started
        self.exit_ns[exit_info.reason] += elapsed
        self.exit_counts[exit_info.reason] += 1
        if obs is not None:
            obs.count("exits_total", reason=exit_info.reason, level=2,
                      mode=self.engine.mode)
            obs.observe("exit_ns", elapsed, reason=exit_info.reason,
                        level=2)
        return elapsed

    def _l0_owns(self, exit_info):
        """Exits L0 consumes without reflecting: host interrupts and
        anything L1 did not configure a trap for but L0's policy forces
        (paper §2.1's timestamp-counter example)."""
        if exit_info.qual("owner") == "l1":
            return False
        reason = exit_info.reason
        if reason not in ExitReason.REFLECTABLE:
            return True
        if reason in (ExitReason.MSR_READ, ExitReason.MSR_WRITE):
            msr = exit_info.qual("msr")
            wanted_by_l1 = msr in self.vmcs12.trapped_msrs
            return not wanted_by_l1
        return False

    def _handle_direct(self, exit_info, vcpu):
        """L0 handles the exit itself (no L1 involvement)."""
        self.engine.charge_l0_lazy_direct()
        self._charge(self.costs.l0_pure(exit_info.reason),
                     Category.L0_HANDLER)
        writer = self.engine.l0_writer(vcpu, lvl=1)
        self.l0.handle_exit(exit_info, self.l2_vm, vcpu, writer, self.vmcs02)

    def _reflect_to_l1(self, exit_info, vcpu):
        """Alg. 1 lines 3-14: reflect into L1 and return."""
        costs = self.costs
        obs = self.obs
        self.engine.charge_l0_lazy_nested()

        # Line 3: reflect hardware-written state into vmcs12.
        self._charge(costs.vmcs_transform_each, Category.VMCS_TRANSFORM)
        with (obs.span("vmcs_transform:02->12", level=0)
              if obs is not None else _NO_SPAN):
            transform_02_to_12(self.vmcs02, self.vmcs12, self.ept01,
                               obs=obs)

        # Lines 4-5: load vmcs01, inject the trap into vmcs12.
        l0_cost = costs.l0_pure(exit_info.reason)
        inject_cost = l0_cost * _L0_INJECT_NUMER // _L0_INJECT_DENOM
        self._charge(inject_cost, Category.L0_HANDLER)
        self.engine.load_vmcs(self.vmcs01)
        self.vmcs12.record_exit(exit_info)

        # Line 6: VM resume into L1.
        self.engine.enter_l1(exit_info, vcpu)
        _enter_ctx("L1")
        self.engine.charge_l1_lazy()

        # Lines 7-11: L1 handles the trap (aux traps fire via the VMCS
        # callback while it touches non-shadowed vmcs01' fields).
        self._charge(costs.l1_pure(exit_info.reason), Category.L1_HANDLER)
        writer = self.engine.l1_writer(vcpu)
        with (obs.span(f"l1_handler:{exit_info.reason}", level=1,
                       reason=exit_info.reason)
              if obs is not None else _NO_SPAN):
            self.l1.handle_exit(exit_info, self.l2_vm, vcpu, writer,
                                self.vmcs01p)

        # Line 12: L1's VM resume traps back into L0.
        self.engine.leave_l1(vcpu)
        _enter_ctx("L0")

        # Lines 13-14: load vmcs02, transform vmcs12 back into it.
        self.engine.load_vmcs(self.vmcs02)
        self._charge(l0_cost - inject_cost, Category.L0_HANDLER)
        self._charge(costs.vmcs_transform_each, Category.VMCS_TRANSFORM)
        with (obs.span("vmcs_transform:12->02", level=0)
              if obs is not None else _NO_SPAN):
            transform_12_to_02(self.vmcs12, self.vmcs02, self.ept01,
                               self.l0.policy,
                               composed_ept=self.composed_ept, obs=obs)

    # ------------------------------------------------------------------
    # Aux traps: L1's privileged ops during handling (Alg. 1 lines 8-10)
    # ------------------------------------------------------------------

    def _l1_vmcs_trap(self, kind, field_name):
        """L1 touched a non-shadowed vmcs01' field: trap to L0, emulate,
        resume L1."""
        if not self._shadowing:
            return
        started = self.sim.now
        self._aux_trap(kind, f"aux_exit:vmcs:{field_name}")
        self.aux_exit_counts[kind] += 1
        self.aux_exit_ns[kind] += self.sim.now - started

    def l1_aux_op(self, kind):
        """A privileged non-VMCS op by L1 during handling (INVEPT, timer
        reprogramming, control-register writes) — same trap pattern."""
        started = self.sim.now
        self._aux_trap(kind, f"aux_exit:{kind}")
        self.aux_exit_counts[kind] += 1
        self.aux_exit_ns[kind] += self.sim.now - started

    def _aux_trap(self, kind, span_name):
        """Shared aux-trap body: L0 captures the trap, emulates, resumes."""
        obs = self.obs
        with (obs.span(span_name, level=0, kind=kind)
              if obs is not None else _NO_SPAN):
            previous = _enter_ctx("L0")
            self.engine.aux_exit_begin()
            self._charge(self.costs.l0_pure(kind), Category.L0_HANDLER)
            propagate = getattr(self.engine, "propagate_aux", None)
            if propagate is not None:
                propagate(kind)
            self.engine.aux_exit_end()
            _leave_ctx(previous)
        if obs is not None:
            obs.count("aux_exits_total", kind=kind)

    # ------------------------------------------------------------------
    # Single-level exits: L1's own traps into L0
    # ------------------------------------------------------------------

    def l1_exit(self, exit_info):
        """An exit of L1 itself (its vhost kicks, its timer writes...),
        handled by L0 through the single-level path."""
        vcpu = self.l1_vm.vcpu
        vcpu.exits += 1
        started = self.sim.now
        obs = self.obs
        with (obs.span(f"l1_exit:{exit_info.reason}", level=0,
                       reason=exit_info.reason)
              if obs is not None else _NO_SPAN):
            _enter_ctx("L1")                       # hardware, on L1's behalf
            self.vmcs01.record_exit(exit_info)
            self.engine.exit_l1_single()
            _enter_ctx("L0")
            self.engine.charge_l0_single_lazy()
            self._charge(self.costs.l0_single(exit_info.reason),
                         Category.L0_HANDLER)
            writer = self.engine.l0_single_writer(vcpu)
            self.l0.handle_exit(exit_info, self.l1_vm, vcpu, writer,
                                self.vmcs01)
            self.engine.resume_l1_single()
            _enter_ctx("L1")
        elapsed = self.sim.now - started
        self.exit_ns["L1:" + exit_info.reason] += elapsed
        self.exit_counts["L1:" + exit_info.reason] += 1
        if obs is not None:
            obs.count("exits_total", reason=exit_info.reason, level=1,
                      mode=self.engine.mode)
            obs.observe("exit_ns", elapsed, reason=exit_info.reason,
                        level=1)
        return elapsed

    # ------------------------------------------------------------------
    # Interrupt delivery helpers (used by the I/O models)
    # ------------------------------------------------------------------

    def inject_irq_into_l2(self, vector):
        """A virtual interrupt for L2, raised by L1's device backend: L1
        gets control, writes the event-injection field (a non-shadowed
        control — an aux trap) and resumes L2."""
        info = ExitInfo(
            ExitReason.EXTERNAL_INTERRUPT,
            qualification={"vector": vector, "inject_vector": vector,
                           "owner": "l1"},
            injected=True,
        )
        self._charge(self.costs.irq_delivery, Category.INTERRUPT)
        self.engine.charge_guest_wake(2)
        if self.obs is not None:
            self.obs.count("irq_injected_total", level=2, vector=vector)
        return self.l2_exit(info)

    def inject_irq_into_l1(self, vector):
        """An interrupt for L1 itself (its virtio completions)."""
        info = ExitInfo(
            ExitReason.EXTERNAL_INTERRUPT,
            qualification={"vector": vector},
            injected=True,
        )
        self._charge(self.costs.irq_delivery, Category.INTERRUPT)
        self._charge(self.costs.irq_inject, Category.INTERRUPT)
        self.engine.charge_guest_wake(1)
        if self.obs is not None:
            self.obs.count("irq_injected_total", level=1, vector=vector)
        return self.l1_exit(info)

    # ------------------------------------------------------------------
    # Timer plumbing
    # ------------------------------------------------------------------

    def _l1_arm_timer(self, vcpu, deadline_value):
        """L1 arming its (virtual) deadline timer is a privileged MSR
        write that traps into L0, which arms the physical timer."""
        self.l1_aux_op(ExitReason.MSR_WRITE)
        self._l0_arm_timer(vcpu, deadline_value)

    def _l0_arm_timer(self, vcpu, deadline_value):
        if self.interrupts is not None:
            self.interrupts.arm_tsc_deadline(0, deadline_value)
        self._charge(self.costs.timer_program, Category.INTERRUPT)

    # ------------------------------------------------------------------
    # EPT plumbing
    # ------------------------------------------------------------------

    def _l1_flush_ept(self, vm):
        """L1 executed INVEPT after editing L2's page tables: the
        instruction traps, and L0 rebuilds the collapsed two-level table
        used by vmcs02."""
        self.l1_aux_op(ExitReason.INVEPT)
        self.composed_ept = self.ept12.compose(self.ept01)
        self._charge(self.costs.vmcs_transform_each,
                     Category.VMCS_TRANSFORM)
        self.vmcs02.ept = self.composed_ept

    # ------------------------------------------------------------------

    def _charge(self, ns, category):
        if ns:
            self.sim.charge(ns)
            self.tracer.record(category, ns)

    def profile_share(self, reason):
        """Fraction of all exit-handling time spent on one reason —
        the quantity behind the paper's §6.2/§6.3 profiling claims."""
        total = sum(self.exit_ns.values()) + sum(self.aux_exit_ns.values())
        if total == 0:
            return 0.0
        return self.exit_ns.get(reason, 0) / total
