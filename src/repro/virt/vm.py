"""VM containers: a virtualization level's guest with its descriptors."""

from repro.errors import VirtualizationError
from repro.virt.ept import EptTable
from repro.virt.vcpu import VCpu


class VirtualMachine:
    """A guest VM as seen by the hypervisor one level below it.

    Holds the pieces Figure 2 of the paper draws: the vCPUs, the VMCS the
    managing hypervisor runs the guest on, and the EPT mapping the guest's
    physical address space.  Devices are attached as MMIO regions on the
    EPT plus a port map for legacy port I/O.
    """

    RAM_BASE_HPA = 0x100000000  # where guest RAM happens to sit in the host

    def __init__(self, name, level, ram_mb=1024, n_vcpus=1,
                 ram_target_base=None):
        """``ram_target_base`` is where this guest's RAM lands in the
        *managing* hypervisor's physical space: host-physical when L0
        manages the VM, but L1-guest-physical for a nested VM (L1's EPT
        for L2 points into L1's own memory)."""
        if n_vcpus < 1:
            raise VirtualizationError("VM needs at least one vCPU")
        self.name = name
        self.level = level
        self.ram_mb = ram_mb
        self.vcpus = [
            VCpu(f"{name}.vcpu{i}", level) for i in range(n_vcpus)
        ]
        self.ept = EptTable(name=f"ept[{name}]")
        if ram_target_base is None:
            ram_target_base = self.RAM_BASE_HPA + (level << 36)
        # One contiguous RAM range carries the translation semantics the
        # experiments exercise.
        self.ept.map_range(0x0, ram_mb * 1024 * 1024, ram_target_base)
        self.io_ports = {}     # port -> device
        self.mmio_devices = []
        # Where the managing hypervisor allocates backing for this
        # guest's demand-paged memory (its own physical space); None
        # lets the hypervisor pick a default pool.
        self.backing_pool_base = None

    @property
    def vcpu(self):
        """The first (often only) vCPU."""
        return self.vcpus[0]

    def attach_mmio_device(self, device, base_gpa, size=0x1000):
        """Wire a device into the guest's physical address space via an
        EPT-misconfig region (virtio-style MMIO)."""
        region = self.ept.map_mmio(base_gpa, size, device)
        self.mmio_devices.append(device)
        return region

    def attach_port_device(self, device, port):
        if port in self.io_ports:
            raise VirtualizationError(f"port {port:#x} already attached")
        self.io_ports[port] = device

    def device_at(self, gpa):
        region = self.ept.lookup_mmio(gpa)
        return region.device if region else None

    def __repr__(self):
        return (
            f"VirtualMachine({self.name!r}, L{self.level}, "
            f"{len(self.vcpus)} vCPUs, {self.ram_mb} MB)"
        )
