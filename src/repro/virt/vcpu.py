"""Virtual CPU: architectural state with a switchable home.

A vCPU's register state normally lives in hypervisor memory (an
:class:`~repro.cpu.registers.ArchRegisters` snapshot) and is copied into
the hardware on VM resume — that copying is the context-switch cost the
paper attacks.  Under SVt the state is *pinned* in a hardware context's
slice of the shared physical register file and is never copied; reads and
writes then flow through the context's rename map
(:meth:`VCpu.bind_context`).
"""

from repro.cpu.registers import ArchRegisters, RegNames
from repro.errors import VirtualizationError


class VCpu:
    """One virtual CPU of a VM at some virtualization level."""

    def __init__(self, name, level):
        self.name = name
        self.level = level
        self.memory_state = ArchRegisters()
        self._context = None
        self.msrs = {}          # virtualized MSR store (emulated reads)
        self.halted = False
        self.exits = 0          # lifetime VM-exit count (profiling)

    # -- state home management ----------------------------------------------

    @property
    def context(self):
        return self._context

    def bind_context(self, hardware_context):
        """Pin this vCPU's state into a hardware context (SVt mode).
        Loads the current memory snapshot into the context."""
        hardware_context.load_state(self.memory_state, owner_label=self.name)
        self._context = hardware_context

    def unbind_context(self):
        """Evict the state back to memory (context multiplexing past the
        core's SMT width, paper §3.1)."""
        if self._context is None:
            raise VirtualizationError(f"{self.name} has no bound context")
        self.memory_state = self._context.extract_state()
        self._context.release()
        self._context = None

    @property
    def is_pinned(self):
        return self._context is not None

    # -- register access -------------------------------------------------------

    def read(self, register):
        if self._context is not None:
            return self._context.read(register)
        return self.memory_state.read(register)

    def write(self, register, value):
        if self._context is not None:
            self._context.write(register, value)
        else:
            self.memory_state.write(register, value)

    @property
    def rip(self):
        return self.read(RegNames.RIP)

    def advance_rip(self, instruction_length):
        """Skip the emulated instruction (paper §1: "e.g., increase the
        instruction pointer after emulating an access to an I/O device")."""
        self.write(RegNames.RIP, self.rip + instruction_length)

    # -- MSR store ---------------------------------------------------------------

    def read_msr(self, msr):
        return self.msrs.get(msr, 0)

    def write_msr(self, msr, value):
        self.msrs[msr] = value

    def __repr__(self):
        home = f"ctx#{self._context.index}" if self._context else "memory"
        return f"VCpu({self.name!r}, L{self.level}, state in {home})"
