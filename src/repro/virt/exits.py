"""VM-exit reasons and exit information records."""

from dataclasses import dataclass, field


class ExitReason:
    """Exit-reason mnemonics (KVM naming where the paper uses it)."""

    CPUID = "CPUID"
    MSR_READ = "MSR_READ"
    MSR_WRITE = "MSR_WRITE"
    IO_INSTRUCTION = "IO_INSTRUCTION"
    EPT_MISCONFIG = "EPT_MISCONFIG"
    EPT_VIOLATION = "EPT_VIOLATION"
    VMCALL = "VMCALL"
    VMPTRLD = "VMPTRLD"
    VMREAD = "VMREAD"
    VMWRITE = "VMWRITE"
    VMRESUME = "VMRESUME"
    INVEPT = "INVEPT"
    RDTSC = "RDTSC"
    EXTERNAL_INTERRUPT = "EXTERNAL_INTERRUPT"
    INTERRUPT_WINDOW = "INTERRUPT_WINDOW"
    HLT = "HLT"
    PREEMPTION_TIMER = "PREEMPTION_TIMER"
    CR_ACCESS = "CR_ACCESS"
    MONITOR = "MONITOR"
    MWAIT = "MWAIT"
    CTXT_ACCESS = "CTXT_ACCESS"      # SVt: invalid ctxtld/ctxtst use
    SVT_BLOCKED = "SVT_BLOCKED"      # SW SVt §5.3 synthetic trap

    ALL = (
        CPUID, MSR_READ, MSR_WRITE, IO_INSTRUCTION, EPT_MISCONFIG,
        EPT_VIOLATION, VMCALL, VMPTRLD, VMREAD, VMWRITE, VMRESUME, INVEPT,
        RDTSC, EXTERNAL_INTERRUPT, INTERRUPT_WINDOW, HLT,
        PREEMPTION_TIMER, CR_ACCESS, MONITOR, MWAIT, CTXT_ACCESS,
        SVT_BLOCKED,
    )

    #: Exits a guest hypervisor (L1) wants reflected to it when its nested
    #: guest (L2) triggers them.  The remaining reasons are consumed by L0
    #: (external interrupts belong to the host; VMX instructions executed
    #: by L2 itself would be reflected, but L2 runs no hypervisor here).
    REFLECTABLE = frozenset({
        CPUID, MSR_READ, MSR_WRITE, IO_INSTRUCTION, EPT_MISCONFIG,
        EPT_VIOLATION, VMCALL, HLT, PREEMPTION_TIMER, CR_ACCESS,
        MONITOR, MWAIT, SVT_BLOCKED,
    })


@dataclass
class ExitInfo:
    """What the hardware records about one VM exit."""

    reason: str
    qualification: dict = field(default_factory=dict)
    guest_rip: int = 0
    instruction_length: int = 2
    injected: bool = False   # True when synthesised by a hypervisor

    def __post_init__(self):
        if self.reason not in ExitReason.ALL:
            raise ValueError(f"unknown exit reason {self.reason!r}")

    def qual(self, key, default=None):
        return self.qualification.get(key, default)
