"""SW SVt prototype protocol pieces (paper §5.2-§5.3).

Two things live here beyond what the switch engine already does:

* **Thread pairing** — L1 creates an SVt-thread per L2 vCPU and pairs the
  two via a hypercall so L0 can gang-schedule them onto sibling hardware
  threads of one core (:func:`install_pairing_hypercall`).

* **The §5.3 interrupt deadlock** — :class:`DeadlockScenario` replays the
  exact five-step interleaving of the paper: (1) the vCPUs L1_0 and L1_1
  run on hypervisor threads L0_0/L0_1; (2) L0_0 sends CMD_VM_TRAP to the
  SVt-thread in L1_1; (3) another kernel thread in L1_1 preempts the
  SVt-thread; (4) that thread IPIs the L1_0 vCPU and synchronously waits
  (e.g. a TLB shootdown); (5) L0_0 is blocked waiting for CMD_VM_RESUME
  and never runs L1_0 — deadlock.  With the fix, L0_0's wait loop watches
  for interrupts targeting L1_0 and injects a synthetic ``SVT_BLOCKED``
  trap so the vCPU can take the IPI and yield back.
"""

from dataclasses import dataclass, field

from repro.core.channel import CommandKind, PairedChannels
from repro.cpu import costmodels
from repro.errors import ChannelError, DeadlockError
from repro.sim.engine import Simulator

#: Hypercall number L1 uses to pair an L2 vCPU thread with its SVt-thread.
SVT_PAIR_HYPERCALL = 0x53


@dataclass
class Pairing:
    """One (L2 vCPU thread, SVt-thread) pair L0 must co-schedule."""

    vcpu_thread: str
    svt_thread: str
    core_id: int = 0


class PairingRegistry:
    """L0-side bookkeeping of §5.2's pairing hypercall."""

    def __init__(self):
        self.pairs = []

    def pair(self, payload):
        """Hypercall body: register the pair; returns its index."""
        pairing = Pairing(
            vcpu_thread=payload.get("vcpu_thread", "L2.vcpu0"),
            svt_thread=payload.get("svt_thread", "L1.svt0"),
            core_id=payload.get("core_id", 0),
        )
        self.pairs.append(pairing)
        return len(self.pairs) - 1

    def sibling_of(self, thread_name):
        for pairing in self.pairs:
            if pairing.vcpu_thread == thread_name:
                return pairing.svt_thread
            if pairing.svt_thread == thread_name:
                return pairing.vcpu_thread
        return None


def install_pairing_hypercall(machine):
    """Wire the SVT_PAIR hypercall into a machine's L0 hypervisor and
    return the registry it fills."""
    registry = PairingRegistry()
    machine.l0.register_hypercall(SVT_PAIR_HYPERCALL, registry.pair)
    return registry


# ---------------------------------------------------------------------------
# The §5.3 deadlock
# ---------------------------------------------------------------------------

@dataclass
class DeadlockResult:
    completed: bool
    finished_at_ns: int
    blocked_traps_injected: int
    timeline: list = field(default_factory=list)
    #: Structured :class:`repro.sim.engine.DeadlockReport` naming the
    #: blocked waiters and their wait-for edges (None when completed).
    report: object = None


class DeadlockScenario:
    """Replay of the §5.3 interleaving, with or without the fix."""

    #: How long the SVt-thread's trap handling takes when undisturbed.
    HANDLING_NS = 5_000
    #: When the kernel thread preempts the SVt-thread.
    PREEMPT_AT_NS = 1_000
    #: L1_0's IPI acknowledgement latency once it runs.
    ACK_NS = 400
    #: L0_0's interrupt-check period while waiting (the fix's poll).
    CHECK_PERIOD_NS = 500

    def __init__(self, with_fix, costs=None, obs=None):
        self.with_fix = with_fix
        self.costs = costmodels.resolve(costs)
        self.sim = Simulator()
        self.obs = obs
        if obs is not None:
            obs.bind(self.sim)
            self.sim.obs = obs
        self.channels = PairedChannels("deadlock.vcpu0", obs=obs)
        self.timeline = []
        self._svt_remaining = self.HANDLING_NS
        self._svt_preempted = False
        self._ipi_pending_for_l10 = False
        self._kernel_thread_waiting = False
        self._completed = False
        self._blocked_injected = 0
        self._completion_handle = None

    def _log(self, message):
        self.timeline.append((self.sim.now, message))

    # -- scenario steps -------------------------------------------------------

    def run(self):
        """Run the interleaving to quiescence and report the outcome.

        Never raises: when the interleaving deadlocks, the simulator's
        drained-queue detector fires a :class:`~repro.errors.DeadlockError`
        whose structured report (blocked waiters + wait-for edges) is
        captured onto the returned :class:`DeadlockResult`.
        """
        # Step 2: L0_0 sends CMD_VM_TRAP and starts waiting.
        self.channels.send_trap({"exit_reason": "EPT_MISCONFIG"},
                                now=self.sim.now)
        self.channels.take_request()
        self._log("L0_0 sent CMD_VM_TRAP, waiting for CMD_VM_RESUME")
        self.sim.park("L0_0", waits_on=self.channels.response.name,
                      blocked_on="L1_1.svt")
        self._completion_handle = self.sim.after(
            self.HANDLING_NS, self._svt_thread_finishes
        )
        # Step 3: a kernel thread in L1_1 preempts the SVt-thread.
        self.sim.after(self.PREEMPT_AT_NS, self._preempt)
        if self.with_fix:
            self.sim.after(self.CHECK_PERIOD_NS, self._l0_wait_check)
        report = None
        try:
            self.sim.run_until_idle()
        except DeadlockError as err:
            report = err.report
        return DeadlockResult(
            completed=self._completed,
            finished_at_ns=self.sim.now,
            blocked_traps_injected=self._blocked_injected,
            timeline=list(self.timeline),
            report=report,
        )

    def _preempt(self):
        self._svt_preempted = True
        self._svt_remaining = max(
            0, self.HANDLING_NS - (self.sim.now - 0)
        )
        if self._completion_handle is not None:
            self._completion_handle.cancel()
        self._log("kernel thread preempts SVt-thread in L1_1")
        self.sim.park("L1_1.svt", waits_on="cpu (preempted)",
                      blocked_on="L1_1.kernel")
        # Step 4: it IPIs the L1_0 vCPU and waits for the ack.
        self._ipi_pending_for_l10 = True
        self._kernel_thread_waiting = True
        self._log("kernel thread sends IPI to L1_0 and waits")
        self.sim.park("L1_1.kernel", waits_on="IPI ack from L1_0",
                      blocked_on="L1_0")
        # L1_0 itself can only run when L0_0 schedules it — the edge
        # that closes §5.3's cycle back to the blocked hypervisor.
        self.sim.park("L1_0", waits_on="being scheduled",
                      blocked_on="L0_0")
        # Without the fix nothing else is scheduled: L0_0 never runs
        # L1_0, the ack never comes — the event queue drains: deadlock.

    def _l0_wait_check(self):
        """The fix: while waiting for CMD_VM_RESUME, L0_0 checks for
        interrupts targeting the L1_0 vCPU (paper §5.3)."""
        if self._completed:
            return
        if self._ipi_pending_for_l10:
            self._blocked_injected += 1
            self._ipi_pending_for_l10 = False
            if self.obs is not None:
                self.obs.count("svt_blocked_injections_total")
            self._log("L0_0 injects SVT_BLOCKED into L1_0")
            # L1_0 enables interrupts, handles the IPI, yields back.
            self.sim.after(self.ACK_NS, self._l10_acks_ipi)
        self.sim.after(self.CHECK_PERIOD_NS, self._l0_wait_check)

    def _l10_acks_ipi(self):
        self._log("L1_0 handled the IPI and yielded back to L0_0")
        self.sim.unpark("L1_0")
        if self._kernel_thread_waiting:
            self._kernel_thread_waiting = False
            self.sim.unpark("L1_1.kernel")
            # The kernel thread proceeds and reschedules the SVt-thread.
            self.sim.after(100, self._svt_thread_resumes)

    def _svt_thread_resumes(self):
        self._svt_preempted = False
        self.sim.unpark("L1_1.svt")
        self._log("SVt-thread rescheduled, resumes trap handling")
        self._completion_handle = self.sim.after(
            self._svt_remaining, self._svt_thread_finishes
        )

    def _svt_thread_finishes(self):
        if self._svt_preempted:
            return
        try:
            self.channels.send_resume({"regs": {}}, now=self.sim.now)
            response = self.channels.take_response()
        except ChannelError:
            return
        assert response.kind == CommandKind.VM_RESUME
        self._completed = True
        self.sim.unpark("L0_0")
        self._log("SVt-thread sent CMD_VM_RESUME; L0_0 resumes L2")
