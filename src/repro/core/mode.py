"""Execution modes compared throughout the paper's evaluation."""

from repro.errors import ConfigError


class ExecutionMode:
    """The three systems of paper §6.

    * ``BASELINE`` — stock nested virtualization: every boundary crossing
      is a memory-based context switch (Table 1 costs).
    * ``SW_SVT`` — the software-only prototype (§5.2): L1's trap handling
      runs on a sibling SMT thread, reached over shared-memory command
      rings; the L2<->L0 path is unchanged.
    * ``HW_SVT`` — the proposed hardware (§4): every virtualization level
      is pinned in a hardware context; traps and resumes are thread
      stall/resume events and hypervisors touch subordinate registers via
      ctxtld/ctxtst.
    """

    BASELINE = "baseline"
    SW_SVT = "sw_svt"
    HW_SVT = "hw_svt"

    ALL = (BASELINE, SW_SVT, HW_SVT)

    @classmethod
    def validate(cls, mode):
        if mode not in cls.ALL:
            raise ConfigError(
                f"unknown execution mode {mode!r}; pick one of {cls.ALL}"
            )
        return mode
