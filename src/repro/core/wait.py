"""Wait-mechanism models for the SW SVt communication channel (§6.1).

The paper compares **polling**, **mwait** (cache-line monitoring) and
**mutex** against a plain function call, across three placements of the
two communicating threads (sibling SMT threads, separate cores on one
NUMA node, separate NUMA nodes), sweeping the size of the work performed
between handoffs.  Numbers are "not shown for brevity"; the text states
five qualitative observations, which `benchmarks/test_sec61_channels.py`
asserts against this model:

1. polling has the lowest latency for small workloads, but under SMT its
   overheads grow with the workload (the spinning thread steals execution
   cycles from the computing thread);
2. cross-NUMA placement has up to an order of magnitude longer response
   latency;
3. separate cores on one node respond fast but burn a core;
4. mutexes cost a lot to enter but stop stealing cycles, winning for
   large workloads under SMT;
5. mwait is slightly better than mutex at large sizes and slightly slower
   than polling at small sizes.

Robustness extension (``docs/robustness.md``): :func:`handoff` can model
a **lost wakeup** — the producer's write lands but the waiter's
notification is lost.  Polling (and the function call) are immune: the
waiter re-reads the line every iteration.  A sleeping waiter (mwait's
monitor arm, mutex's kernel block) only recovers when its watchdog
timeout fires and it re-checks the flag, so the response latency grows
by ``recovery_timeout_ns``.  A mutex still inside its active spin
window reacts like a poller and is likewise immune.
"""

from dataclasses import dataclass

from repro.errors import ConfigError


class WaitMechanism:
    FUNCTION_CALL = "function_call"
    POLLING = "polling"
    MWAIT = "mwait"
    MUTEX = "mutex"

    ALL = (FUNCTION_CALL, POLLING, MWAIT, MUTEX)


class Placement:
    SMT = "smt"       # sibling hardware threads of one core
    CORE = "core"     # separate cores, same NUMA node
    NUMA = "numa"     # separate NUMA nodes

    ALL = (SMT, CORE, NUMA)


@dataclass(frozen=True)
class HandoffResult:
    """Outcome of one producer->consumer handoff experiment."""

    mechanism: str
    placement: str
    workload_ns: int
    producer_ns: float      # time the producer needed for its workload
    response_ns: float      # notification latency after the producer wrote
    burns_remote_cpu: bool  # whether the waiter occupies a full CPU
    recovered: bool = False  # waiter survived a lost wakeup via timeout

    @property
    def total_ns(self):
        return self.producer_ns + self.response_ns


def handoff(costs, mechanism, placement, workload_ns, lost_wakeup=False,
            recovery_timeout_ns=2_000):
    """Model one handoff: the producer computes ``workload_ns`` of work,
    writes a flag/line, and the consumer reacts.

    With ``lost_wakeup`` the notification itself is lost: spinning
    waiters re-read the line and do not care; sleeping waiters (mwait,
    blocked mutex) pay ``recovery_timeout_ns`` — their watchdog's
    re-check period — before they notice the flag.

    Returns a :class:`HandoffResult`.  ``costs`` is a
    :class:`~repro.cpu.costs.CostModel`.
    """
    if mechanism not in WaitMechanism.ALL:
        raise ConfigError(f"unknown wait mechanism {mechanism!r}")
    if placement not in Placement.ALL:
        raise ConfigError(f"unknown placement {placement!r}")
    if workload_ns < 0:
        raise ConfigError("workload must be >= 0")
    if recovery_timeout_ns < 0:
        raise ConfigError("recovery timeout must be >= 0")

    if mechanism == WaitMechanism.FUNCTION_CALL:
        # Same thread: no transfer, no wake; the baseline of §6.1.
        # Nothing to lose either — control transfer is the "wakeup".
        return HandoffResult(mechanism, placement, workload_ns,
                             float(workload_ns), 0.0, False)

    line = costs.cacheline_transfer(placement)
    producer_ns = float(workload_ns)
    burns_remote = False
    recovered = False

    if mechanism == WaitMechanism.POLLING:
        # The waiter spins; reaction is one line transfer + one poll
        # iteration.  Under SMT the spin loop shares the core's execution
        # resources with the producer, inflating its workload time.
        # A lost wakeup is harmless: the next poll re-reads the flag.
        response = line + costs.poll_iteration
        if placement == Placement.SMT:
            producer_ns = workload_ns / (1.0 - costs.poll_smt_interference)
        else:
            burns_remote = True
    elif mechanism == WaitMechanism.MWAIT:
        # monitor/mwait: the waiter sleeps in C1 without issuing uops, so
        # the producer runs at full speed; waking costs the C1 exit.
        response = line + costs.mwait_wake
        if lost_wakeup:
            # The monitored-line trigger was missed (e.g. the armed
            # monitor was cleared by an interrupt): the waiter sleeps
            # until its watchdog timeout fires and re-checks.
            response += recovery_timeout_ns
            recovered = True
    else:  # MUTEX
        # Futex-style: brief active spin first (cheap reaction when the
        # producer finishes within the spin window), then block in the
        # kernel (expensive wake).  The paper: "mutex actively polls for
        # a brief time first" / "large startup cost ... quickly offset in
        # SMT as we increase the workload size".
        spin_window = costs.mutex_startup // 4
        if workload_ns <= spin_window:
            # Still spinning: immune to a lost wake, like a poller.
            response = line + costs.poll_iteration
            if placement == Placement.SMT:
                producer_ns = workload_ns / (
                    1.0 - costs.poll_smt_interference
                )
        else:
            response = line + costs.mutex_wake
            if lost_wakeup:
                # The futex wake was lost; only the timed re-acquire
                # (FUTEX_WAIT timeout) unblocks the waiter.
                response += recovery_timeout_ns
                recovered = True

    return HandoffResult(mechanism, placement, workload_ns, producer_ns,
                         response, burns_remote, recovered)


def sweep(costs, mechanisms=None, placements=None, workloads=None):
    """Cartesian sweep; returns a list of :class:`HandoffResult`."""
    mechanisms = mechanisms or WaitMechanism.ALL
    placements = placements or Placement.ALL
    workloads = workloads if workloads is not None else (
        0, 100, 500, 1000, 5000, 20000, 100000,
    )
    return [
        handoff(costs, mech, place, wl)
        for mech in mechanisms
        for place in placements
        for wl in workloads
    ]
