"""Security/interference analysis of SVt's SMT usage (paper §3.4).

The paper's argument: SMT co-location is dangerous (two security domains
share a physical core *simultaneously*, so Spectre-class state poisoning
between domain switches does not help) and slow (co-runners contend for
execution resources) — which is why operators disable SMT.  SVt is
exempt from both because *"an SVt-enabled core executes code from a
single VM or hypervisor context at any point in time"* and *"the CPU
would squash all speculative instructions before it starts fetching
instructions of a different SMT thread"*.

:class:`CoResidencyAuditor` makes that argument checkable: it observes a
core's context switching and accounts, cycle by simulated cycle, how
long two distinct security domains were *concurrently resident and
executing*.  Under SMT co-scheduling that figure is the whole overlap;
under SVt it must be exactly zero — an invariant the test suite enforces
over fuzzed workloads.
"""

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass
class _Interval:
    domain: str
    start: int
    end: int = None


class CoResidencyAuditor:
    """Tracks which security domain each hardware context executes and
    measures concurrent cross-domain execution time."""

    def __init__(self, n_contexts):
        if n_contexts < 1:
            raise ConfigError("auditor needs at least one context")
        self._running = {}          # context index -> _Interval
        self._finished = []
        self.now = 0
        self.n_contexts = n_contexts

    # -- event feed ------------------------------------------------------

    def advance(self, ns):
        if ns < 0:
            raise ConfigError("time cannot go backwards")
        self.now += ns

    def start(self, context_index, domain):
        self._check(context_index)
        if context_index in self._running:
            raise ConfigError(f"context {context_index} already running")
        self._running[context_index] = _Interval(domain, self.now)

    def stop(self, context_index):
        self._check(context_index)
        interval = self._running.pop(context_index, None)
        if interval is None:
            raise ConfigError(f"context {context_index} not running")
        interval.end = self.now
        self._finished.append(interval)

    def _check(self, index):
        if not 0 <= index < self.n_contexts:
            raise ConfigError(f"no context {index}")

    # -- analysis -----------------------------------------------------------

    def _all_intervals(self):
        out = list(self._finished)
        for interval in self._running.values():
            out.append(_Interval(interval.domain, interval.start,
                                 self.now))
        return out

    def cross_domain_coresidency_ns(self):
        """Total time during which two intervals of *different* domains
        overlapped — the side-channel exposure window."""
        intervals = self._all_intervals()
        total = 0
        for i, a in enumerate(intervals):
            for b in intervals[i + 1:]:
                if a.domain == b.domain:
                    continue
                overlap = min(a.end, b.end) - max(a.start, b.start)
                if overlap > 0:
                    total += overlap
        return total

    def is_svt_safe(self):
        """The §3.4 property: zero cross-domain co-residency."""
        return self.cross_domain_coresidency_ns() == 0


def audit_machine_run(machine, program):
    """Run a program on a machine while auditing context co-residency.

    Hooks the core's fetch steering: whenever the fetch target changes,
    the auditor closes the old context's interval and opens the new
    one's, labelled by the owning virtualization level.  Returns the
    auditor.
    """
    core = machine.core
    auditor = CoResidencyAuditor(core.n_contexts)

    def domain_of(index):
        context = core.context(index)
        return context.owner_label or f"level-{index}"

    auditor.start(core.svt_current, domain_of(core.svt_current))
    original = core._switch_fetch

    def audited_switch(target_index):
        if target_index != core.svt_current:
            auditor.now = core.sim.now
            auditor.stop(core.svt_current)
            auditor.start(target_index, domain_of(target_index))
        original(target_index)

    core._switch_fetch = audited_switch
    try:
        machine.run_program(program)
    finally:
        core._switch_fetch = original
    auditor.now = machine.sim.now
    return auditor


def smt_coscheduling_exposure(domain_a_ns, domain_b_ns):
    """For contrast: naive SMT co-scheduling of two domains exposes them
    to each other for the whole overlap of their runtimes."""
    if domain_a_ns < 0 or domain_b_ns < 0:
        raise ConfigError("runtimes must be >= 0")
    return min(domain_a_ns, domain_b_ns)
