"""ctxtld/ctxtst semantics — cross-context register access (paper §4).

The target context of a cross-context access is *virtualized* through the
``lvl`` argument (paper Table 2 and the rules of §4):

* host hypervisor executing (``is_vm == 0``):
  ``lvl == 1`` selects the context in ``SVt_vm``,
  ``lvl == 2`` selects the context in ``SVt_nested``;
* guest hypervisor executing (``is_vm == 1``):
  ``lvl == 1`` selects the context in ``SVt_nested``;
* *"Any other combination of values produces a trap into the hypervisor,
  which can then emulate deeper virtualization hierarchies."*

A trap here raises :class:`~repro.errors.CrossContextFault`; the machine
layer converts it into a CTXT_ACCESS VM exit.
"""

from repro.cpu.smt import INVALID_CONTEXT
from repro.errors import CrossContextFault


def resolve_target(core, lvl):
    """Apply the §4 lvl-virtualization rules on a core's micro-registers.

    Returns a hardware context index, or raises
    :class:`CrossContextFault` for combinations the hardware cannot
    serve (which real SVt turns into a trap for software emulation).
    """
    if not core.is_vm:
        if lvl == 1:
            target = core.svt_vm
        elif lvl == 2:
            target = core.svt_nested
        else:
            raise CrossContextFault(
                f"host access with unsupported lvl={lvl}"
            )
    else:
        if lvl == 1:
            target = core.svt_nested
        else:
            raise CrossContextFault(
                f"guest access with unsupported lvl={lvl}"
            )
    if target == INVALID_CONTEXT:
        raise CrossContextFault(
            f"lvl={lvl} resolves to an invalid context"
        )
    return target


def ctxt_read(core, lvl, register):
    """Execute a ``ctxtld lvl, register`` on the core."""
    return core.cross_read(resolve_target(core, lvl), register)


def ctxt_write(core, lvl, register, value):
    """Execute a ``ctxtst lvl, register, value`` on the core."""
    core.cross_write(resolve_target(core, lvl), register, value)
