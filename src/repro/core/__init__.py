"""SVt — the paper's contribution, plus its discussed extensions.

* `repro.core.mode` — the three execution modes the evaluation compares.
* `repro.core.cross_context` — ctxtld/ctxtst semantics with the paper's
  ``lvl`` virtualization rules (§4).
* `repro.core.switch` — the switch engines that price every boundary
  crossing per mode (the heart of the Table 1 / Fig. 6 reproduction).
* `repro.core.channel` / `repro.core.wait` — SW SVt's shared-memory
  command rings and the §6.1 wait-mechanism models.
* `repro.core.sw_prototype` — the software-only prototype's protocol,
  including the §5.3 interrupt-deadlock scenario and its fix.
* `repro.core.system` — the :class:`~repro.core.system.Machine` facade
  that assembles a full nested stack in any mode.

Extensions the paper discusses but does not build:

* `repro.core.bypass` — §3.1's direct L2→L1 trap delivery.
* `repro.core.coexist` — §3.3's dynamic SVt/SMT per-core choice.
* `repro.core.security` — §3.4's co-residency audit.
* `repro.core.related_work` — §7's alternatives, priced on the same
  cost base.
* `repro.core.fleet` — multi-vCPU/multi-VM aggregation (§4.1).
"""

from repro.core.bypass import BypassSvtEngine, install_bypass
from repro.core.channel import Command, CommandKind, CommandRing, PairedChannels
from repro.core.coexist import CoexistConfig, DynamicPolicy, crossover_trap_rate
from repro.core.cross_context import ctxt_read, ctxt_write, resolve_target
from repro.core.fleet import Fleet, FleetResult
from repro.core.mode import ExecutionMode
from repro.core.security import CoResidencyAuditor, audit_machine_run
from repro.core.switch import (
    BaselineEngine,
    HwSvtEngine,
    SwitchEngine,
    SwSvtEngine,
    make_engine,
)
from repro.core.system import Machine

__all__ = [
    "BaselineEngine",
    "BypassSvtEngine",
    "CoResidencyAuditor",
    "CoexistConfig",
    "Command",
    "CommandKind",
    "CommandRing",
    "DynamicPolicy",
    "ExecutionMode",
    "Fleet",
    "FleetResult",
    "HwSvtEngine",
    "Machine",
    "PairedChannels",
    "SwSvtEngine",
    "SwitchEngine",
    "audit_machine_run",
    "crossover_trap_rate",
    "ctxt_read",
    "ctxt_write",
    "install_bypass",
    "make_engine",
    "resolve_target",
]
