"""SVt/SMT coexistence — the paper's §3.3 discussion, modelled.

*"one could design a system that dynamically chooses between using SMT
to accelerate system-wide application execution, and SVt to accelerate
VM operations on each core (SMT is known to have limited benefits on
certain applications), but such analysis is out of the scope of this
paper."*

This module performs that analysis.  A core can be configured per
scheduling epoch as:

* **SMT** — two application threads co-run; aggregate throughput is
  ``smt_yield`` (typically 1.1-1.3x of one thread — the "limited
  benefits"); any nested VM traps pay baseline cost.
* **SVt** — one effective thread; nested VM traps pay HW SVt cost.

For a workload characterised by its nested-trap rate, the useful
throughput of each configuration and the crossover rate follow in closed
form, and :class:`DynamicPolicy` flips cores per epoch.
"""

from dataclasses import dataclass

from repro.cpu import costmodels
from repro.cpu.costs import CostModel
from repro.errors import ConfigError


def baseline_trap_cost_ns(costs):
    """One nested trap under stock virtualization (Table 1 total)."""
    return costs.table1_total()


def svt_trap_cost_ns(costs):
    """One nested trap under HW SVt (the Fig. 6 5.36 us path)."""
    return (
        costs.cpuid_guest_work
        + 4 * costs.svt_stall_resume
        + costs.vmcs_transform
        + costs.l0_pure("CPUID")
        + costs.l1_pure("CPUID")
    )


@dataclass(frozen=True)
class CoexistConfig:
    """Per-core coexistence parameters."""

    smt_yield: float = 1.25   # aggregate SMT throughput vs one thread
    costs: CostModel = None

    def __post_init__(self):
        if self.smt_yield <= 1.0:
            raise ConfigError("SMT yield must exceed a single thread")
        if self.costs is None:
            object.__setattr__(self, "costs",
                               costmodels.default_model())


def useful_throughput(config, mode, trap_rate_per_s):
    """Fraction of a core's cycles doing application work.

    ``trap_rate_per_s`` is the nested-VM-trap rate the core must absorb.
    Throughput is relative to one non-virtualized thread.
    """
    if trap_rate_per_s < 0:
        raise ConfigError("trap rate must be >= 0")
    if mode == "smt":
        burn = trap_rate_per_s * baseline_trap_cost_ns(config.costs) / 1e9
        return max(0.0, config.smt_yield * (1.0 - burn))
    if mode == "svt":
        burn = trap_rate_per_s * svt_trap_cost_ns(config.costs) / 1e9
        return max(0.0, 1.0 - burn)
    raise ConfigError(f"unknown core mode {mode!r}")


def crossover_trap_rate(config):
    """The nested-trap rate above which SVt beats SMT on a core.

    Solves ``smt_yield*(1 - r*cb) = 1 - r*cs`` for r.
    """
    cb = baseline_trap_cost_ns(config.costs) / 1e9
    cs = svt_trap_cost_ns(config.costs) / 1e9
    denominator = config.smt_yield * cb - cs
    if denominator <= 0:
        return float("inf")
    return (config.smt_yield - 1.0) / denominator


class DynamicPolicy:
    """Per-epoch chooser: measure each core's trap rate, flip its mode."""

    def __init__(self, config=None):
        self.config = config or CoexistConfig()
        self.flips = 0
        self._last_choice = {}

    def choose(self, core_id, trap_rate_per_s):
        """Pick 'smt' or 'svt' for a core this epoch."""
        smt = useful_throughput(self.config, "smt", trap_rate_per_s)
        svt = useful_throughput(self.config, "svt", trap_rate_per_s)
        choice = "svt" if svt > smt else "smt"
        if self._last_choice.get(core_id) not in (None, choice):
            self.flips += 1
        self._last_choice[core_id] = choice
        return choice

    def fleet_throughput(self, trap_rates):
        """Aggregate useful throughput with per-core optimal choices
        vs all-SMT and all-SVt fleets.  Returns a dict of totals."""
        totals = {"dynamic": 0.0, "all_smt": 0.0, "all_svt": 0.0}
        for core_id, rate in enumerate(trap_rates):
            choice = self.choose(core_id, rate)
            totals["dynamic"] += useful_throughput(self.config, choice,
                                                   rate)
            totals["all_smt"] += useful_throughput(self.config, "smt",
                                                   rate)
            totals["all_svt"] += useful_throughput(self.config, "svt",
                                                   rate)
        return totals
