"""SW SVt shared-memory command rings (paper §5.2 / Figure 5).

When L0 starts an L1 guest hypervisor it creates, per vCPU, *"two shared
memory buffers ... each buffer is a unidirectional command ring that will
be used to communicate VM trap and resume events regarding the L2 guest
VM"*.  L0 pushes ``CMD_VM_TRAP`` onto the request ring; the SVt-thread in
L1 answers with ``CMD_VM_RESUME`` on the response ring.  Because neither
side has SVt's cross-thread register access, *"SW SVt sends the necessary
information together with the commands"* — general-purpose register
values and the VM trap identifier ride in the payload.
"""

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ChannelError


class CommandKind:
    VM_TRAP = "CMD_VM_TRAP"
    VM_RESUME = "CMD_VM_RESUME"
    BLOCKED = "CMD_SVT_BLOCKED"   # §5.3 notification variant

    ALL = (VM_TRAP, VM_RESUME, BLOCKED)


@dataclass
class Command:
    """One ring entry: a command plus its register/exit-info payload."""

    kind: str
    payload: dict = field(default_factory=dict)
    seq: int = 0
    enqueued_at: int = 0

    def __post_init__(self):
        if self.kind not in CommandKind.ALL:
            raise ChannelError(f"unknown command kind {self.kind!r}")


class CommandRing:
    """A bounded unidirectional command ring in shared memory."""

    def __init__(self, name, capacity=64, placement="smt"):
        if capacity < 1:
            raise ChannelError("ring capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.placement = placement
        self._entries = deque()
        self._seq = itertools.count()
        self.pushed = 0
        self.popped = 0
        self.max_occupancy = 0

    def push(self, command, now=0):
        if len(self._entries) >= self.capacity:
            raise ChannelError(f"ring {self.name} full")
        command.seq = next(self._seq)
        command.enqueued_at = now
        self._entries.append(command)
        self.pushed += 1
        self.max_occupancy = max(self.max_occupancy, len(self._entries))
        return command.seq

    def pop(self):
        if not self._entries:
            raise ChannelError(f"ring {self.name} empty")
        self.popped += 1
        return self._entries.popleft()

    def peek(self):
        return self._entries[0] if self._entries else None

    @property
    def occupancy(self):
        return len(self._entries)

    @property
    def is_empty(self):
        return not self._entries

    def check_invariants(self):
        if self.popped > self.pushed:
            raise AssertionError("popped more commands than pushed")
        if self.pushed - self.popped != len(self._entries):
            raise AssertionError("occupancy out of sync with counters")


class PairedChannels:
    """The per-vCPU request/response ring pair with protocol checking.

    Enforces the SW SVt alternation: every ``CMD_VM_TRAP`` must be
    answered by exactly one ``CMD_VM_RESUME`` before the next trap is
    sent (the hypervisor thread blocks on the response — paper Figure 5).
    ``CMD_SVT_BLOCKED`` responses (§5.3) do *not* complete the exchange;
    they let L0 service interrupts and go back to waiting.
    """

    def __init__(self, vcpu_name, capacity=64, placement="smt", obs=None):
        self.request = CommandRing(
            f"{vcpu_name}.req", capacity=capacity, placement=placement
        )
        self.response = CommandRing(
            f"{vcpu_name}.rsp", capacity=capacity, placement=placement
        )
        self.in_flight = 0
        self.round_trips = 0
        self.obs = obs

    def _count(self, kind):
        if self.obs is not None:
            self.obs.count("channel_commands_total", kind=kind)

    def send_trap(self, payload, now=0):
        if self.in_flight:
            raise ChannelError("previous VM trap not yet resumed")
        self.in_flight += 1
        self._count(CommandKind.VM_TRAP)
        return self.request.push(Command(CommandKind.VM_TRAP, payload), now)

    def send_resume(self, payload, now=0):
        if not self.in_flight:
            raise ChannelError("VM resume without an outstanding trap")
        self._count(CommandKind.VM_RESUME)
        return self.response.push(
            Command(CommandKind.VM_RESUME, payload), now
        )

    def take_request(self):
        return self.request.pop()

    def take_response(self):
        command = self.response.pop()
        if command.kind == CommandKind.VM_RESUME:
            self.in_flight -= 1
            self.round_trips += 1
        else:
            # BLOCKED notifications (§5.3) are pushed onto the response
            # ring directly; count them when they surface.
            self._count(command.kind)
        return command

    def check_invariants(self):
        self.request.check_invariants()
        self.response.check_invariants()
        if self.in_flight not in (0, 1):
            raise AssertionError(f"in_flight={self.in_flight} out of range")
