"""SW SVt shared-memory command rings (paper §5.2 / Figure 5).

When L0 starts an L1 guest hypervisor it creates, per vCPU, *"two shared
memory buffers ... each buffer is a unidirectional command ring that will
be used to communicate VM trap and resume events regarding the L2 guest
VM"*.  L0 pushes ``CMD_VM_TRAP`` onto the request ring; the SVt-thread in
L1 answers with ``CMD_VM_RESUME`` on the response ring.  Because neither
side has SVt's cross-thread register access, *"SW SVt sends the necessary
information together with the commands"* — general-purpose register
values and the VM trap identifier ride in the payload.

Robustness (see ``docs/robustness.md``):

* **Timestamps** ride the *simulated* clock: rings stamp
  ``Command.enqueued_at`` from an attached ``clock`` when the caller
  does not pass ``now``, so ring-latency metrics and fault delays are
  measured against sim time, never against a hard-coded 0.
* **Backpressure**: :meth:`CommandRing.try_push` is the caller-visible
  non-raising push; a full ring returns ``False`` (counted in
  ``overflows``) so the watchdog layer can back off and retry instead
  of dying on :class:`~repro.errors.ChannelError`.
* **Fault injection**: a ring built with a
  :class:`~repro.faults.injector.FaultInjector` may drop, duplicate,
  delay (head-of-line, ``visible_at``) or corrupt a pushed command, or
  lose the consumer's wakeup.  Commands are *sealed* with a payload
  checksum at push time so receivers detect corruption, and carry an
  exchange id (``xid``) so retransmissions and duplicates deduplicate.
"""

import itertools
import json
import zlib
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ChannelError
from repro.faults.plan import FaultKind
from repro.sim import sanitizer as _san


class CommandKind:
    VM_TRAP = "CMD_VM_TRAP"
    VM_RESUME = "CMD_VM_RESUME"
    BLOCKED = "CMD_SVT_BLOCKED"   # §5.3 notification variant

    ALL = (VM_TRAP, VM_RESUME, BLOCKED)


def _payload_checksum(payload):
    """Deterministic payload digest (order-independent encoding)."""
    encoded = json.dumps(payload, sort_keys=True, default=repr)
    return zlib.crc32(encoded.encode("utf-8"))


@dataclass
class Command:
    """One ring entry: a command plus its register/exit-info payload."""

    kind: str
    payload: dict = field(default_factory=dict)
    seq: int = 0
    enqueued_at: int = 0
    #: Exchange id: retransmissions of one logical command share it, so
    #: receivers can discard duplicates.  -1 = unassigned.
    xid: int = -1
    #: Payload checksum taken at push time (0 = unsealed).
    checksum: int = 0
    #: Sim time before which the command is invisible (delay faults).
    visible_at: int = 0

    def __post_init__(self):
        if self.kind not in CommandKind.ALL:
            raise ChannelError(f"unknown command kind {self.kind!r}")

    def seal(self):
        """Stamp the payload checksum (the producer's end-to-end seal)."""
        self.checksum = _payload_checksum(self.payload)
        return self.checksum

    def verify(self):
        """True when the payload still matches its seal."""
        return self.checksum == _payload_checksum(self.payload)


class CommandRing:
    """A bounded unidirectional command ring in shared memory.

    ``clock`` is a zero-argument callable returning simulated ns; when
    attached, pushes without an explicit ``now`` stamp the real sim
    time and delayed entries become visible as the clock advances.
    ``faults`` is an optional :class:`repro.faults.injector.FaultInjector`.
    """

    def __init__(self, name, capacity=64, placement="smt", clock=None,
                 faults=None):
        if capacity < 1:
            raise ChannelError("ring capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.placement = placement
        self.clock = clock
        self.faults = faults
        self._entries = deque()
        self._seq = itertools.count()
        self._wakeup_lost = False
        self.pushed = 0
        self.popped = 0
        self.max_occupancy = 0
        # -- fault/backpressure counters ----------------------------------
        self.overflows = 0
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.corrupted = 0
        self.wakeups_lost = 0
        self.dups_discarded = 0
        self.corrupt_discarded = 0

    def _now(self, now):
        if now is not None:
            return now
        return self.clock() if self.clock is not None else 0

    def try_push(self, command, now=None):
        """Non-raising push: ``False`` when the ring is full.

        The backpressure path of SW SVt under load — callers (the
        switch engine's watchdog) back off on ``False`` and retry
        instead of crashing on :class:`~repro.errors.ChannelError`.
        """
        if len(self._entries) >= self.capacity:
            self.overflows += 1
            return False
        if _san.ACTIVE is not None:
            # A ring push is a sanctioned synchronization point: it
            # orders every shared-state access before it against every
            # access after the matching pop.
            _san.ACTIVE.ordering_event("ring-push")
        now = self._now(now)
        command.seq = next(self._seq)
        command.enqueued_at = now
        command.seal()
        kind = (self.faults.ring_fault(self.name)
                if self.faults is not None else None)
        if kind == FaultKind.RING_DROP:
            # Lost on the wire: the producer believes it pushed.
            self.dropped += 1
            return True
        if kind == FaultKind.RING_CORRUPT:
            # Damage after sealing, so the receiver's verify() fails.
            self.faults.corrupt_payload(command.payload, self.name)
            self.corrupted += 1
        elif kind == FaultKind.RING_DELAY:
            command.visible_at = now + self.faults.delay_ns()
            self.delayed += 1
        elif kind == FaultKind.LOST_WAKEUP:
            self._wakeup_lost = True
            self.wakeups_lost += 1
        self._entries.append(command)
        self.pushed += 1
        self.max_occupancy = max(self.max_occupancy, len(self._entries))
        if kind == FaultKind.RING_DUPLICATE:
            # The slot is replayed: same command, same seq/xid twice.
            self._entries.append(command)
            self.pushed += 1
            self.duplicated += 1
            self.max_occupancy = max(self.max_occupancy,
                                     len(self._entries))
        return True

    def push(self, command, now=None):
        """Raising push (legacy protocol path); see :meth:`try_push`."""
        if not self.try_push(command, now=now):
            raise ChannelError(f"ring {self.name} full")
        return command.seq

    def pop(self):
        if self._wakeup_lost:
            # The entry is in shared memory but the waiter's mwait wake
            # was lost: from the consumer's view, nothing arrived.  The
            # watchdog's next look (after backoff) finds it.
            self._wakeup_lost = False
            raise ChannelError(f"ring {self.name} wakeup lost")
        if not self._entries:
            raise ChannelError(f"ring {self.name} empty")
        head = self._entries[0]
        if head.visible_at > self._now(None):
            raise ChannelError(
                f"ring {self.name} empty "
                f"(head delayed until t={head.visible_at})"
            )
        if _san.ACTIVE is not None:
            _san.ACTIVE.ordering_event("ring-pop")
        self.popped += 1
        return self._entries.popleft()

    def peek(self):
        if (self._entries
                and self._entries[0].visible_at <= self._now(None)):
            return self._entries[0]
        return None

    @property
    def occupancy(self):
        return len(self._entries)

    @property
    def is_empty(self):
        return self.peek() is None

    def check_invariants(self):
        if self.popped > self.pushed:
            raise AssertionError("popped more commands than pushed")
        if self.pushed - self.popped != len(self._entries):
            raise AssertionError("occupancy out of sync with counters")


class PairedChannels:
    """The per-vCPU request/response ring pair with protocol checking.

    Enforces the SW SVt alternation: every ``CMD_VM_TRAP`` must be
    answered by exactly one ``CMD_VM_RESUME`` before the next trap is
    sent (the hypervisor thread blocks on the response — paper Figure 5).
    ``CMD_SVT_BLOCKED`` responses (§5.3) do *not* complete the exchange;
    they let L0 service interrupts and go back to waiting.

    Retransmissions (:meth:`resend_trap` / :meth:`resend_resume`) reuse
    the in-flight exchange id, and :meth:`take_request` /
    :meth:`take_response` silently discard entries whose ``xid`` was
    already consumed — the dedup that makes watchdog retries and
    duplicate faults idempotent.
    """

    def __init__(self, vcpu_name, capacity=64, placement="smt", obs=None,
                 clock=None, faults=None):
        self.request = CommandRing(
            f"{vcpu_name}.req", capacity=capacity, placement=placement,
            clock=clock, faults=faults,
        )
        self.response = CommandRing(
            f"{vcpu_name}.rsp", capacity=capacity, placement=placement,
            clock=clock, faults=faults,
        )
        self.in_flight = 0
        self.round_trips = 0
        self.retransmissions = 0
        self.obs = obs
        self.clock = clock
        self._xids = itertools.count()
        self._trap_xid = -1
        self._resume_xid = -1
        self._last_request_xid = -1
        self._last_response_xid = -1

    def _count(self, kind):
        if self.obs is not None:
            self.obs.count("channel_commands_total", kind=kind)

    def _observe_latency(self, ring, command):
        if self.obs is not None and self.clock is not None:
            self.obs.observe(
                "ring_latency_ns",
                max(0, self.clock() - command.enqueued_at),
                ring=ring.name,
            )

    # -- producer side ----------------------------------------------------

    def send_trap(self, payload, now=None):
        if self.in_flight:
            raise ChannelError("previous VM trap not yet resumed")
        if not self.try_send_trap(payload, now=now):
            raise ChannelError(f"ring {self.request.name} full")
        return self._trap_xid

    def try_send_trap(self, payload, now=None):
        """Backpressure-aware trap send: ``False`` when the ring is
        full (no state is consumed; retry after backing off)."""
        if self.in_flight:
            raise ChannelError("previous VM trap not yet resumed")
        # Shallow-copy so a corruption fault damages only the in-ring
        # copy, never the producer's own payload (needed for resends).
        command = Command(CommandKind.VM_TRAP, dict(payload))
        command.xid = next(self._xids)
        try:
            self.request.push(command, now=now)
        except ChannelError:
            return False
        self.in_flight += 1
        self._trap_xid = command.xid
        self._count(CommandKind.VM_TRAP)
        return True

    def resend_trap(self, payload, now=None):
        """Retransmit the in-flight trap (same exchange id)."""
        if not self.in_flight:
            raise ChannelError("no in-flight trap to retransmit")
        command = Command(CommandKind.VM_TRAP, dict(payload))
        command.xid = self._trap_xid
        pushed = self.request.try_push(command, now=now)
        if pushed:
            self.retransmissions += 1
            self._count(CommandKind.VM_TRAP)
        return pushed

    def send_resume(self, payload, now=None):
        if not self.try_send_resume(payload, now=now):
            raise ChannelError(f"ring {self.response.name} full")
        return self._resume_xid

    def try_send_resume(self, payload, now=None):
        """Backpressure-aware resume send (see :meth:`try_send_trap`)."""
        if not self.in_flight:
            raise ChannelError("VM resume without an outstanding trap")
        command = Command(CommandKind.VM_RESUME, dict(payload))
        command.xid = next(self._xids)
        try:
            self.response.push(command, now=now)
        except ChannelError:
            return False
        self._resume_xid = command.xid
        self._count(CommandKind.VM_RESUME)
        return True

    def resend_resume(self, payload, now=None):
        """Retransmit the in-flight resume (same exchange id)."""
        if not self.in_flight:
            raise ChannelError("no outstanding trap to re-answer")
        if self._resume_xid < 0:
            raise ChannelError("no resume sent yet to retransmit")
        command = Command(CommandKind.VM_RESUME, dict(payload))
        command.xid = self._resume_xid
        pushed = self.response.try_push(command, now=now)
        if pushed:
            self.retransmissions += 1
            self._count(CommandKind.VM_RESUME)
        return pushed

    # -- consumer side ----------------------------------------------------

    def take_request(self):
        # svtlint: disable=SVT005 — bounded: every iteration pops one
        # entry off a finite ring; an empty ring raises ChannelError.
        while True:
            command = self.request.pop()
            if not command.verify():
                # Damaged in the ring: discard *before* committing its
                # xid, so a retransmission with the same xid is
                # accepted.  The caller sees "nothing arrived".
                self.request.corrupt_discarded += 1
                continue
            if 0 <= command.xid <= self._last_request_xid:
                # Duplicate slot or stale retransmission twin.
                self.request.dups_discarded += 1
                continue
            self._last_request_xid = max(self._last_request_xid,
                                         command.xid)
            self._observe_latency(self.request, command)
            return command

    def take_response(self):
        # svtlint: disable=SVT005 — bounded: every iteration pops one
        # entry off a finite ring; an empty ring raises ChannelError.
        while True:
            command = self.response.pop()
            if not command.verify():
                self.response.corrupt_discarded += 1
                continue
            if (command.kind == CommandKind.VM_RESUME
                    and 0 <= command.xid <= self._last_response_xid):
                self.response.dups_discarded += 1
                continue
            break
        self._observe_latency(self.response, command)
        if command.kind == CommandKind.VM_RESUME:
            self._last_response_xid = max(self._last_response_xid,
                                          command.xid)
            self.in_flight -= 1
            self.round_trips += 1
            self._resume_xid = -1
        else:
            # BLOCKED notifications (§5.3) are pushed onto the response
            # ring directly; count them when they surface.
            self._count(command.kind)
        return command

    def check_invariants(self):
        self.request.check_invariants()
        self.response.check_invariants()
        if self.in_flight not in (0, 1):
            raise AssertionError(f"in_flight={self.in_flight} out of range")
