"""Level bypass — the paper's §3.1 future-work extension.

*"SVt could selectively bypass some virtualization levels when
triggering a VM trap to bring performance even closer to systems with
full hardware support for nested virtualization, but an in-depth
discussion of this topic is outside the scope of this paper."*

This module builds that extension: a :class:`BypassSvtEngine` whose
bypass set names exit reasons the hardware delivers *directly* to the L1
context (one stall/resume, no L0 involvement, no vmcs transform), and
the :meth:`NestedStack`-side fast path that uses it.  L0-owned exits
(external interrupts, policy-forced traps) still land in L0, preserving
its control; and because L0 pre-authorised the bypass set when it built
vmcs02, the security argument mirrors the paper's: the hardware only
short-circuits exits L0 *would have reflected verbatim anyway*.

The ablation bench `benchmarks/test_ablation_bypass.py` quantifies how
close this gets to "full hardware support" (which would make a nested
trap cost the same as a single-level one).
"""

from repro.core.switch import HwSvtEngine
from repro.errors import VirtualizationError
from repro.sim.trace import Category
from repro.virt.exits import ExitReason

#: Exits that are safe to deliver straight to L1: deterministic,
#: emulation-only traps whose vmcs12 reflection carries no L0 policy.
DEFAULT_BYPASS_SET = frozenset({
    ExitReason.CPUID,
    ExitReason.HLT,
    ExitReason.MSR_READ,
    ExitReason.MSR_WRITE,
})


class BypassSvtEngine(HwSvtEngine):
    """HW SVt plus direct L2->L1 trap delivery for a bypass set."""

    def __init__(self, sim, tracer, costs, core,
                 bypass_reasons=DEFAULT_BYPASS_SET):
        super().__init__(sim, tracer, costs, core)
        self.bypass_reasons = frozenset(bypass_reasons)
        self.bypassed_exits = 0

    def bypasses(self, reason):
        return reason in self.bypass_reasons

    def bypass_to_l1(self):
        """Deliver the trap straight into L1's context: the fetch target
        moves from the L2 context to the L1 context in one stall/resume
        event.  The core stays in guest mode (L1 *is* a guest of L0)."""
        if self.core.svt_nested == -1:
            raise VirtualizationError("bypass without a nested context")
        self.bypassed_exits += 1
        # vmcs01 steering: visor=0, vm=1 — we fetch from the vm context
        # while leaving is_vm set.
        self.core.svt_resume()

    def bypass_return_to_l2(self):
        """L1's VM resume goes straight back to L2 — the hardware
        consumed the resume without trapping to L0 (this is precisely
        what "full hardware support" CPUs do).  The caller has loaded
        vmcs02, so SVt_vm already points at L2's context."""
        self.core.svt_resume()


def install_bypass(machine, bypass_reasons=DEFAULT_BYPASS_SET):
    """Retrofit a HW SVt machine with the bypass fast path.

    Replaces the machine's engine and patches the stack's dispatch so
    bypassed reasons skip Algorithm 1's L0 legs entirely.
    """
    from repro.core.mode import ExecutionMode

    if machine.mode != ExecutionMode.HW_SVT:
        raise VirtualizationError("bypass extends HW SVt machines only")

    engine = BypassSvtEngine(machine.sim, machine.tracer, machine.costs,
                             machine.core, bypass_reasons)
    machine.engine = engine
    stack = machine.stack
    stack.engine = engine
    original_l2_exit = stack.l2_exit

    def l2_exit_with_bypass(exit_info):
        if not engine.bypasses(exit_info.reason) \
                or stack._l0_owns(exit_info):
            return original_l2_exit(exit_info)
        vcpu = stack.l2_vm.vcpu
        vcpu.exits += 1
        started = stack.sim.now
        # Hardware writes exit info where L1 reads it (the shadow/vmcs12
        # region L0 designated) and steers fetch to L1's context.
        stack.vmcs12.record_exit(exit_info)
        engine.load_vmcs(stack.vmcs01)
        engine.bypass_to_l1()
        stack._charge(stack.costs.l1_pure(exit_info.reason),
                      Category.L1_HANDLER)
        writer = engine.l1_writer(vcpu)
        stack.l1.handle_exit(exit_info, stack.l2_vm, vcpu, writer,
                             stack.vmcs01p)
        engine.load_vmcs(stack.vmcs02)
        engine.bypass_return_to_l2()
        elapsed = stack.sim.now - started
        stack.exit_ns[exit_info.reason] += elapsed
        stack.exit_counts[exit_info.reason] += 1
        return elapsed

    stack.l2_exit = l2_exit_with_bypass
    return engine
