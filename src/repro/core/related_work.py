"""Related-work comparison models (paper §7).

The paper positions SVt against three families of alternatives; this
module models each over the same calibrated cost base so the trade-offs
the paper argues in prose become measurable:

* **Self-virtualizing I/O (SR-IOV)** [39]: the device exposes virtual
  functions directly to L2 — device accesses stop exiting entirely, but
  the technique "is in conflict with commonly-used live migration, does
  not easily scale with the number of VMs, and prevents commonly-used
  interposition techniques".
* **Side-cores** (vIOMMU, sidecore, SplitX) [3, 15, 29, 30]: exit
  handling is shipped to a dedicated polling core over inter-core
  communication; only applies to device exits known in advance, burns
  the spare core, and pays cross-core latency per event.
* **ELI-style direct interrupt delivery** [20]: external interrupts for
  L2-owned devices skip the exit path.

Each model returns the cost of one nested I/O operation assembled from
the same primitives as the main simulator, plus the qualitative
capabilities the paper weighs (migration, interposition, scaling).
"""

from dataclasses import dataclass

from repro.cpu import costmodels
from repro.errors import ConfigError


@dataclass(frozen=True)
class IoOpShape:
    """Exit inventory of one nested I/O operation (netperf-RR-like)."""

    device_exits: int = 2        # kicks/MMIO that SR-IOV would eliminate
    interrupt_exits: int = 3     # completions/EOIs ELI-class work targets
    other_exits: int = 1         # timers etc. nobody but SVt accelerates
    aux_per_exit: float = 3.0
    base_work_ns: int = 20_000   # guest + device + wire


@dataclass(frozen=True)
class Capabilities:
    """The §7 qualitative axes."""

    live_migration: bool
    interposition: bool
    scales_with_vms: bool
    needs_spare_core: bool
    covers_all_exits: bool


@dataclass(frozen=True)
class AlternativeResult:
    name: str
    op_ns: float
    capabilities: Capabilities
    notes: str = ""


def _reflected_exit_ns(costs, mode="baseline"):
    """One reflected nested exit incl. aux ops, per acceleration mode."""
    aux = 3.0
    if mode == "baseline":
        return (costs.switch_l2_l0 + costs.vmcs_transform
                + costs.l0_handler_default + costs.l0_lazy_switch
                + costs.switch_l0_l1 + costs.l1_handler_default
                + costs.l1_lazy_switch
                + aux * (costs.switch_l0_l1 + costs.l0_pure("VMREAD")))
    if mode == "svt":
        return (4 * costs.svt_stall_resume + costs.vmcs_transform
                + costs.l0_handler_default + costs.l1_handler_default
                + aux * (2 * costs.svt_stall_resume
                         + costs.l0_pure("VMREAD")))
    raise ConfigError(f"unknown mode {mode!r}")


def evaluate(shape=None, costs=None, sidecore_hop_ns=None):
    """Cost and capabilities of each §7 alternative on one I/O op.

    Returns ``{name: AlternativeResult}``.
    """
    shape = shape or IoOpShape()
    costs = costmodels.resolve(costs)
    hop = (sidecore_hop_ns if sidecore_hop_ns is not None
           else costs.cacheline_transfer_core + costs.poll_iteration)

    base_exit = _reflected_exit_ns(costs, "baseline")
    svt_exit = _reflected_exit_ns(costs, "svt")
    total_exits = (shape.device_exits + shape.interrupt_exits
                   + shape.other_exits)

    out = {}
    out["baseline"] = AlternativeResult(
        "baseline",
        shape.base_work_ns + total_exits * base_exit,
        Capabilities(True, True, True, False, True),
    )
    out["svt"] = AlternativeResult(
        "svt",
        shape.base_work_ns + total_exits * svt_exit,
        Capabilities(True, True, True, False, True),
        "accelerates every exit class; keeps interposition "
        "(paper Sec. 7)",
    )
    # SR-IOV: device exits vanish; everything else stays baseline.
    out["sriov"] = AlternativeResult(
        "sriov",
        shape.base_work_ns
        + (shape.interrupt_exits + shape.other_exits) * base_exit,
        Capabilities(live_migration=False, interposition=False,
                     scales_with_vms=False, needs_spare_core=False,
                     covers_all_exits=False),
        "fastest on device exits but forfeits migration/interposition",
    )
    # Side-core: device + interrupt exits become cross-core messages to
    # a polling helper (two hops each plus the handler, no switches) —
    # but 'other' exits still take the stock path, and a core is burned.
    sidecore_event = 2 * hop + costs.l0_handler_default \
        + costs.l1_handler_default
    out["sidecore"] = AlternativeResult(
        "sidecore",
        shape.base_work_ns
        + (shape.device_exits + shape.interrupt_exits) * sidecore_event
        + shape.other_exits * base_exit,
        Capabilities(live_migration=True, interposition=True,
                     scales_with_vms=False, needs_spare_core=True,
                     covers_all_exits=False),
        "only I/O exits known in advance; reserves a polling core",
    )
    # ELI: interrupt exits vanish; device + other stay baseline.
    out["eli"] = AlternativeResult(
        "eli",
        shape.base_work_ns
        + (shape.device_exits + shape.other_exits) * base_exit,
        Capabilities(live_migration=True, interposition=True,
                     scales_with_vms=True, needs_spare_core=False,
                     covers_all_exits=False),
        "direct interrupt delivery only",
    )
    return out


def speedup_table(shape=None, costs=None):
    """[(name, op_us, speedup_vs_baseline, caveats)] sorted by speed."""
    results = evaluate(shape, costs)
    base = results["baseline"].op_ns
    rows = []
    for name, result in results.items():
        caveats = []
        caps = result.capabilities
        if not caps.live_migration:
            caveats.append("no live migration")
        if not caps.interposition:
            caveats.append("no interposition")
        if caps.needs_spare_core:
            caveats.append("burns a core")
        if not caps.covers_all_exits:
            caveats.append("partial coverage")
        rows.append((name, result.op_ns / 1000.0, base / result.op_ns,
                     ", ".join(caveats) or "none"))
    return sorted(rows, key=lambda row: row[1])
