"""Switch engines: per-mode pricing and mechanics of boundary crossings.

`repro.virt.nested` executes Algorithm 1's control flow exactly once;
every boundary crossing calls into one of these engines, which (a) charge
the mode's cost for the crossing and (b) perform the mode's *mechanism* —
memory context switches for the baseline, command-ring traffic for the
software prototype, hardware-context stall/resume plus cross-context
register stores for HW SVt.

Cost anchors (see `repro.cpu.costs`): one full baseline nested-trap cycle
sums to Table 1's 10.40 µs; SW SVt replaces the two L0<->L1 crossings and
L1's lazy save/restore with two command hops (8.46 µs, 1.23×); HW SVt
replaces every crossing with thread stall/resume (5.36 µs, 1.94×).
"""

from repro.cpu.registers import RegNames
from repro.core.cross_context import ctxt_write
from repro.core.mode import ExecutionMode
from repro.errors import ChannelError, ConfigError, DeadlockError
from repro.faults.watchdog import DegradeEvent
from repro.sim.trace import Category


class SwitchEngine:
    """Interface + shared helpers.  Subclasses override the crossings."""

    mode = None

    def __init__(self, sim, tracer, costs, obs=None):
        self.sim = sim
        self.tracer = tracer
        self.costs = costs
        self.obs = obs

    def _charge(self, ns, category):
        if ns:
            self.sim.charge(ns)
            self.tracer.record(category, ns)
            if self.obs is not None:
                self.obs.observe("switch_ns", ns, category=category)

    # -- crossings (overridden) -------------------------------------------

    def exit_l2_to_l0(self):
        raise NotImplementedError

    def resume_l2(self):
        raise NotImplementedError

    def enter_l1(self, exit_info, vcpu):
        """Hand a reflected exit to L1 (Alg. 1 line 6)."""
        raise NotImplementedError

    def leave_l1(self, vcpu):
        """L1's VM resume comes back to L0 (Alg. 1 line 12)."""
        raise NotImplementedError

    def aux_exit_begin(self):
        """An L1 privileged op traps to L0 (Alg. 1 line 8)."""
        raise NotImplementedError

    def aux_exit_end(self):
        """...and L0 resumes L1 (Alg. 1 line 10)."""
        raise NotImplementedError

    def exit_l1_single(self):
        """A plain (single-level) guest exit of L1 itself."""
        raise NotImplementedError

    def resume_l1_single(self):
        raise NotImplementedError

    # -- lazy save/restore charges (overridden where they vanish) -----------

    def charge_l0_lazy_nested(self):
        self._charge(self.costs.l0_lazy_switch, Category.L0_LAZY_SWITCH)

    def charge_l0_lazy_direct(self):
        self._charge(self.costs.l0_lazy_direct, Category.L0_LAZY_SWITCH)

    def charge_l1_lazy(self):
        self._charge(self.costs.l1_lazy_switch, Category.L1_LAZY_SWITCH)

    def charge_l0_single_lazy(self):
        self._charge(self.costs.l0_single_lazy, Category.L0_LAZY_SWITCH)

    # -- VMCS activation ------------------------------------------------------

    def load_vmcs(self, vmcs):
        """VMPTRLD: baseline folds the cost into the handler figures."""
        vmcs.loaded = True

    # -- register writers -------------------------------------------------------

    def l1_writer(self, l2_vcpu):
        """How L1's handler updates L2's registers."""
        return l2_vcpu.write

    def l0_writer(self, vcpu, lvl=1):
        """How L0's handler updates a guest's registers."""
        return vcpu.write

    def l0_single_writer(self, vcpu):
        """Writer for single-level exits of L1's own vCPUs.  Those run on
        other cores (with their own SVt pairs under HW SVt), so every
        mode updates the vCPU state directly here."""
        return vcpu.write

    def charge_guest_wake(self, target_level):
        """Waking an idle guest vCPU to deliver an event.  The baseline
        pays a scheduler wakeup for either level; overridden where SVt
        replaces the wake with cheaper machinery."""
        self._charge(self.costs.idle_wake, Category.INTERRUPT)


class BaselineEngine(SwitchEngine):
    """Stock nested virtualization: memory-based context switches."""

    mode = ExecutionMode.BASELINE

    def exit_l2_to_l0(self):
        self._charge(self.costs.switch_l2_l0_each, Category.SWITCH_L2_L0)

    def resume_l2(self):
        self._charge(self.costs.switch_l2_l0_each, Category.SWITCH_L2_L0)

    def enter_l1(self, exit_info, vcpu):
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)

    def leave_l1(self, vcpu):
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)

    def aux_exit_begin(self):
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)

    def aux_exit_end(self):
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)

    def exit_l1_single(self):
        self._charge(self.costs.switch_l2_l0_each, Category.SWITCH_L2_L0)

    def resume_l1_single(self):
        self._charge(self.costs.switch_l2_l0_each, Category.SWITCH_L2_L0)


class SwSvtEngine(SwitchEngine):
    """The software-only prototype (paper §5.2).

    The L2<->L0 path is the stock one; the L0<->L1 reflection becomes
    command-ring traffic to the SVt-thread on the sibling SMT hardware
    thread, and L1's lazy save/restore disappears (its state stays live
    on that thread).  Register values ride in the command payloads.

    Robustness (``docs/robustness.md``): every blocking ring wait runs
    under an optional sim-clock :class:`~repro.faults.watchdog.Watchdog`.
    A miss charges a bounded-exponential backoff
    (:data:`~repro.sim.trace.Category.WATCHDOG`) and retransmits; after
    ``max_strikes`` the engine **degrades** — it records a
    :class:`~repro.faults.watchdog.DegradeEvent` and permanently falls
    back to the BASELINE memory-switch path for this vCPU (correct,
    just slower).  Without a watchdog a wait that never completes parks
    a waiter in the simulator and raises
    :class:`~repro.errors.DeadlockError` with a structured report.
    """

    mode = ExecutionMode.SW_SVT

    #: L1 privileged ops whose handling must be propagated from L01 to
    #: L00 to keep the hardware contexts consistent (paper §5.2: "e.g.,
    #: accessing certain control and MSR registers, or executing the
    #: INVEPT instruction").  Plain shadow-field VMREAD/VMWRITEs resolve
    #: locally on the sibling thread.
    PROPAGATED_AUX = frozenset({"INVEPT", "CR_ACCESS"})

    def __init__(self, sim, tracer, costs, channels,
                 placement="smt", mechanism="mwait", obs=None,
                 faults=None, watchdog=None):
        super().__init__(sim, tracer, costs, obs=obs)
        self.channels = channels
        self.placement = placement
        self.mechanism = mechanism
        self.faults = faults
        self.watchdog = watchdog
        #: True once the engine gave up on SW SVt for this vCPU.
        self.degraded = False
        #: Every SW-SVt -> BASELINE downgrade, in order.
        self.degrade_events = []
        self._pending_writes = None

    # -- watchdog-guarded ring exchanges ----------------------------------

    def _deadlock(self, site, ring_name, detail):
        """No watchdog, nothing arrived: park the waiter and raise the
        structured report (the §5.3 failure mode, generalized)."""
        self.sim.park(f"svt:{site}", waits_on=ring_name,
                      blocked_on="svt-thread")
        if self.faults is not None:
            self.faults.note_deadlocked()
        raise DeadlockError(
            f"SW SVt blocked at {site}: {detail}",
            report=self.sim.deadlock_report(detail=detail),
        )

    def _degrade(self, site, strikes, reason):
        """Give up on the reflection path: record and fall back."""
        self.degraded = True
        event = DegradeEvent(at_ns=self.sim.now, site=site,
                             strikes=strikes, reason=reason)
        self.degrade_events.append(event)
        if self.faults is not None:
            self.faults.note_degraded()
        if self.obs is not None:
            self.obs.count("svt_degrade_events_total", site=site)
        self._pending_writes = None

    def _send_guarded(self, site, ring, send):
        """Push with backpressure: a full ring strikes the watchdog and
        retries after backoff (the consumer drains meanwhile).  Returns
        False when the exchange degraded instead."""
        while not send():
            if self.watchdog is None:
                self._deadlock(site, ring.name,
                               f"ring {ring.name} full and no consumer "
                               "progress (no watchdog)")
            if self.watchdog.exhausted:
                strikes = self.watchdog.give_up()
                if self.faults is not None:
                    self.faults.resolve_ring(ring.name, "degraded")
                self._degrade(site, strikes,
                              f"ring {ring.name} stayed full")
                return False
            self._charge(self.watchdog.strike(), Category.WATCHDOG)
        return True

    def _await_guarded(self, site, ring, take, resend):
        """Blocking take with watchdog recovery.

        Misses (empty ring, lost wakeup, delayed head, corrupt-entry
        discard) strike the watchdog: charge the backoff on the sim
        clock, retransmit (same exchange id — receivers dedup), retry.
        Returns the command, or ``None`` after degradation.
        """
        while True:
            try:
                command = take()
            except ChannelError:
                command = None
            if command is not None:
                if self.watchdog is not None and self.watchdog.succeed():
                    pass  # recovery counted by the watchdog itself
                if self.faults is not None:
                    self.faults.resolve_ring(ring.name, "recovered")
                return command
            if self.watchdog is None:
                self._deadlock(site, ring.name,
                               f"nothing arrived on {ring.name} "
                               "(no watchdog)")
            if self.watchdog.exhausted:
                strikes = self.watchdog.give_up()
                if self.faults is not None:
                    self.faults.resolve_ring(ring.name, "degraded")
                self._degrade(site, strikes,
                              f"no command on {ring.name} after "
                              f"{strikes} retries")
                return None
            self._charge(self.watchdog.strike(), Category.WATCHDOG)
            resend()

    def _hop(self):
        self._charge(
            self.costs.channel_one_way(self.placement, self.mechanism),
            Category.CHANNEL,
        )
        if self.obs is not None:
            self.obs.count("channel_hops_total",
                           placement=self.placement,
                           mechanism=self.mechanism)

    def exit_l2_to_l0(self):
        self._charge(self.costs.switch_l2_l0_each, Category.SWITCH_L2_L0)

    def resume_l2(self):
        self._charge(self.costs.switch_l2_l0_each, Category.SWITCH_L2_L0)

    def enter_l1(self, exit_info, vcpu):
        if self.degraded:
            # Fallback: the stock memory context switch (BaselineEngine).
            self._charge(self.costs.switch_l0_l1_each,
                         Category.SWITCH_L0_L1)
            self._pending_writes = None
            return
        payload = {
            "exit_reason": exit_info.reason,
            "qualification": dict(exit_info.qualification),
            "regs": {name: vcpu.read(name) for name in RegNames.GPRS},
            "rip": vcpu.read(RegNames.RIP),
        }
        if self.watchdog is not None:
            self.watchdog.start()
        if not self._send_guarded(
                "enter_l1", self.channels.request,
                lambda: self.channels.try_send_trap(payload,
                                                    now=self.sim.now)):
            self._charge(self.costs.switch_l0_l1_each,
                         Category.SWITCH_L0_L1)
            return
        self._hop()
        request = self._await_guarded(
            "enter_l1", self.channels.request,
            self.channels.take_request,
            lambda: self.channels.resend_trap(payload, now=self.sim.now),
        )
        if request is None:
            self._charge(self.costs.switch_l0_l1_each,
                         Category.SWITCH_L0_L1)
            return
        self._pending_writes = {}

    def leave_l1(self, vcpu):
        writes = self._pending_writes or {}
        self._pending_writes = None
        if self.degraded:
            # Post-degradation (or degraded mid-exit): apply L1's
            # buffered updates directly and pay the stock switch.
            for register, value in writes.items():
                vcpu.write(register, value)
            self._charge(self.costs.switch_l0_l1_each,
                         Category.SWITCH_L0_L1)
            return
        payload = {"regs": dict(writes)}
        if self.watchdog is not None:
            self.watchdog.start()
        if not self._send_guarded(
                "leave_l1", self.channels.response,
                lambda: self.channels.try_send_resume(payload,
                                                      now=self.sim.now)):
            for register, value in writes.items():
                vcpu.write(register, value)
            self._charge(self.costs.switch_l0_l1_each,
                         Category.SWITCH_L0_L1)
            return
        self._hop()
        response = self._await_guarded(
            "leave_l1", self.channels.response,
            self.channels.take_response,
            lambda: self.channels.resend_resume(payload,
                                                now=self.sim.now),
        )
        if response is None:
            # The writes never made it through the ring: apply the
            # producer-side copy directly (nothing is lost).
            for register, value in writes.items():
                vcpu.write(register, value)
            self._charge(self.costs.switch_l0_l1_each,
                         Category.SWITCH_L0_L1)
            return
        for register, value in response.payload["regs"].items():
            vcpu.write(register, value)

    def charge_l1_lazy(self):
        if self.degraded:
            # Fallback path pays the stock lazy save/restore again.
            super().charge_l1_lazy()
        # L1's handler state never leaves its SMT thread: no lazy cost.

    def aux_exit_begin(self):
        # The SVt-thread's own trap is captured by L0 on the *sibling*
        # hardware thread, through the stock exit path.
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)

    def aux_exit_end(self):
        self._charge(self.costs.switch_l0_l1_each, Category.SWITCH_L0_L1)

    def propagate_aux(self, kind):
        """Cross-thread state propagation for consistency-critical ops
        (L01 -> L00 and back)."""
        if kind in self.PROPAGATED_AUX:
            self._hop()
            self._hop()

    def exit_l1_single(self):
        self._charge(self.costs.switch_l2_l0_each, Category.SWITCH_L2_L0)

    def resume_l1_single(self):
        self._charge(self.costs.switch_l2_l0_each, Category.SWITCH_L2_L0)

    def charge_guest_wake(self, target_level):
        """The SVt-thread is mwait-parked on the sibling hardware thread:
        waking L1 is just the command's cache-line write.  Waking L2
        still uses the stock scheduler path."""
        if target_level == 2 or self.degraded:
            self._charge(self.costs.idle_wake, Category.INTERRUPT)

    def l1_writer(self, l2_vcpu):
        """L1 has no cross-thread register access: its updates are
        buffered into the CMD_VM_RESUME payload and applied by L0.
        After degradation L1 shares the stock path and writes directly."""
        if self.degraded:
            return l2_vcpu.write

        def write(register, value):
            if self._pending_writes is None:
                if self.degraded:
                    # Degraded mid-exit: fall through to direct writes.
                    l2_vcpu.write(register, value)
                    return
                raise ConfigError("L1 write outside a reflection window")
            self._pending_writes[register] = value
        return write


class HwSvtEngine(SwitchEngine):
    """The proposed hardware (paper §4): stall/resume fetch steering and
    ctxtld/ctxtst register access through the shared PRF."""

    mode = ExecutionMode.HW_SVT

    def __init__(self, sim, tracer, costs, core, obs=None):
        super().__init__(sim, tracer, costs, obs=obs)
        self.core = core

    def load_vmcs(self, vmcs):
        """VMPTRLD caches the SVt fields into the micro-registers
        (paper §4 step B)."""
        vmcs.loaded = True
        self.core.load_svt_fields(
            vmcs.read("svt_visor"),
            vmcs.read("svt_vm"),
            vmcs.read("svt_nested"),
        )

    def exit_l2_to_l0(self):
        self.core.svt_trap()

    def resume_l2(self):
        self.core.svt_resume()

    def enter_l1(self, exit_info, vcpu):
        self.core.svt_resume()

    def leave_l1(self, vcpu):
        self.core.svt_trap()

    def aux_exit_begin(self):
        self.core.svt_trap()

    def aux_exit_end(self):
        self.core.svt_resume()

    def exit_l1_single(self):
        # L1's own vCPUs (e.g. its vhost backend) run on *other* cores,
        # each with its own L0/L1 SVt context pair; their exits are
        # stall/resume events there.  We charge the cost without steering
        # this core's fetch target.
        self._charge(self.costs.svt_stall_resume, Category.STALL_RESUME)

    def resume_l1_single(self):
        self._charge(self.costs.svt_stall_resume, Category.STALL_RESUME)

    def charge_guest_wake(self, target_level):
        # Idle guests are stalled hardware contexts: delivering an event
        # is a thread resume, not a scheduler wakeup.
        self._charge(self.costs.svt_stall_resume, Category.STALL_RESUME)

    # Every lazy save/restore disappears: state lives in the PRF.

    def charge_l0_lazy_nested(self):
        pass

    def charge_l0_lazy_direct(self):
        pass

    def charge_l1_lazy(self):
        pass

    def charge_l0_single_lazy(self):
        pass

    def l1_writer(self, l2_vcpu):
        """L1 updates L2 with ``ctxtst lvl=1`` — resolved through
        SVt_nested because a guest hypervisor is executing (is_vm == 1)."""
        def write(register, value):
            ctxt_write(self.core, 1, register, value)
        return write

    def l0_writer(self, vcpu, lvl=1):
        """L0 updates a guest with ``ctxtst`` — lvl 1 hits SVt_vm, lvl 2
        SVt_nested (is_vm == 0 while L0 runs)."""
        def write(register, value):
            ctxt_write(self.core, lvl, register, value)
        return write


def make_engine(mode, sim, tracer, costs, core=None, channels=None,
                placement="smt", mechanism="mwait", obs=None,
                faults=None, watchdog=None):
    """Factory used by :class:`repro.core.system.Machine`."""
    ExecutionMode.validate(mode)
    if mode == ExecutionMode.BASELINE:
        return BaselineEngine(sim, tracer, costs, obs=obs)
    if mode == ExecutionMode.SW_SVT:
        if channels is None:
            raise ConfigError("SW SVt needs a PairedChannels instance")
        return SwSvtEngine(sim, tracer, costs, channels,
                           placement=placement, mechanism=mechanism,
                           obs=obs, faults=faults, watchdog=watchdog)
    if core is None:
        raise ConfigError("HW SVt needs an SmtCore")
    return HwSvtEngine(sim, tracer, costs, core, obs=obs)
