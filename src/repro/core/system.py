"""The :class:`Machine` facade — a booted nested stack in one mode.

This is the library's main entry point::

    from repro import Machine, ExecutionMode
    from repro.cpu import isa

    machine = Machine(mode=ExecutionMode.HW_SVT)
    result = machine.run_program(isa.Program([isa.cpuid()], repeat=100))
    print(result.elapsed_ns / result.instructions)

A machine owns one simulated SMT core (three hardware contexts — L0, L1,
L2 — in HW SVt mode, two otherwise), the interrupt controller, the L0 and
L1 hypervisors, the L1 and L2 virtual machines, and the
:class:`~repro.virt.nested.NestedStack` that executes Algorithm 1.
Programs are streams of abstract instructions (`repro.cpu.isa`); the
machine classifies each against the *effective* trap configuration
(vmcs02 for L2 — L1's wishes merged with L0's policy) and routes exits
through the stack.
"""

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass

from repro.config import paper_machine
from repro.core.channel import PairedChannels
from repro.core.mode import ExecutionMode
from repro.core.switch import make_engine
from repro.cpu import costmodels
from repro.cpu.interrupts import InterruptController
from repro.cpu.isa import Op
from repro.cpu.smt import SmtCore
from repro.errors import ConfigError, EptFault, VirtualizationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import Watchdog
from repro.cpu import segments
from repro.obs.observer import ambient as obs_ambient
from repro.sim import kernel as simkernel
from repro.sim import sanitizer
from repro.sim.engine import Simulator
from repro.sim.trace import Category, Tracer
from repro.virt.exits import ExitInfo, ExitReason
from repro.virt.hypervisor import Hypervisor, cpuid_leaf_values
from repro.virt.nested import NestedStack
from repro.virt.vm import VirtualMachine


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :meth:`Machine.run_program` call."""

    elapsed_ns: int
    instructions: int
    exits: int
    start_ns: int
    end_ns: int

    @property
    def ns_per_instruction(self):
        return self.elapsed_ns / self.instructions if self.instructions else 0.0


class Machine:
    """A full simulated host running the paper's L0/L1/L2 stack."""

    def __init__(self, mode=ExecutionMode.BASELINE, costs=None, config=None,
                 wait_mechanism="mwait", placement="smt", keep_events=False,
                 engine_factory=None, observer=None, faults=None,
                 watchdog=None, kernel=None):
        """``engine_factory(sim, tracer, costs, core, channels)`` replaces
        the mode's stock switch engine — the hook ablation studies use to
        model hybrid designs (e.g. SVt contexts multiplexed past the SMT
        width, paper §3.1).

        ``observer`` (a :class:`repro.obs.Observer`) turns on span
        tracing and/or metrics; when ``None`` the machine adopts an
        ambient capture observer if one is active (the experiment
        runner's per-cell metrics path) and otherwise runs the exact
        pre-observability fast path.

        ``faults`` (a :class:`repro.faults.FaultPlan` or prebuilt
        :class:`repro.faults.FaultInjector`) arms the chaos layer: SW
        SVt command rings may drop/duplicate/delay/corrupt commands or
        lose wakeups per the plan's rates.  ``watchdog`` guards every
        blocking ring wait: ``None`` installs a default
        :class:`repro.faults.Watchdog` whenever faults are armed,
        ``False`` disables recovery (blocked waits raise
        :class:`~repro.errors.DeadlockError` with a structured report),
        and a :class:`~repro.faults.Watchdog` instance is used as-is.

        ``kernel`` selects the simulation kernel: ``"segment"`` (the
        fast path — batched charging and compiled segment replay) or
        ``"legacy"`` (the original per-instruction loop).  ``None``
        reads the process-wide choice from ``REPRO_SIM_KERNEL`` (see
        :mod:`repro.sim.kernel`); both produce byte-identical results
        and traces."""
        self.mode = ExecutionMode.validate(mode)
        self.kernel = (simkernel.active_kernel() if kernel is None
                       else simkernel.validate(kernel))
        #: Instructions executed (stepped or segment-replayed) — the
        #: bench harness's instructions/sec numerator.
        self.instructions_retired = 0
        self.costs = costmodels.resolve(costs)
        self.config = config or paper_machine()
        self.sim = Simulator()
        if observer is None:
            observer = obs_ambient()
        self.obs = observer
        self.tracer = Tracer(keep_events=keep_events,
                             clock=self._read_clock)
        if observer is not None:
            observer.bind(self.sim)
            self.sim.obs = observer
            self.tracer.observer = observer
        # Runtime ordering sanitizer (REPRO_SIM_SANITIZE=1): observes
        # shared-state accesses against the new machine's clock; a no-op
        # global None when the flag is unset (repro.sim.sanitizer).
        sanitizer.maybe_install(self._read_clock, observer)

        n_contexts = 3 if mode == ExecutionMode.HW_SVT else 2
        self.core = SmtCore(self.sim, self.costs, self.tracer,
                            n_contexts=n_contexts, obs=observer)
        self.interrupts = InterruptController(self.sim, n_contexts,
                                              self.costs, obs=observer)

        self.l0 = Hypervisor("L0", 0)
        self.l1 = Hypervisor("L1", 1)
        self.l1_vm = VirtualMachine(
            "L1-vm", 1,
            ram_mb=64,
            n_vcpus=self.config.vm(1).vcpus,
        )
        self.l2_vm = VirtualMachine(
            "L2-vm", 2,
            ram_mb=32,
            n_vcpus=self.config.vm(2).vcpus,
            # L1's EPT for L2 points into L1's guest-physical RAM: L2's
            # 32 MB live at offset 16 MB inside L1's 64 MB.
            ram_target_base=16 * 1024 * 1024,
        )
        # Demand-paged L2 memory comes from L1's free RAM above that
        # window (48..64 MB of L1 guest-physical space).
        self.l2_vm.backing_pool_base = 48 * 1024 * 1024
        self.l0.add_guest(self.l1_vm)
        self.l1.add_guest(self.l2_vm)

        # -- chaos layer (docs/robustness.md) ---------------------------
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults, obs=observer)
        self.faults = faults
        if watchdog is None and faults is not None:
            watchdog = Watchdog(obs=observer)
        elif watchdog is False or watchdog is None:
            watchdog = None
        self.watchdog = watchdog

        self.channels = None
        if mode == ExecutionMode.SW_SVT:
            self.channels = PairedChannels(
                self.l2_vm.vcpu.name, placement=placement, obs=observer,
                clock=self._read_clock, faults=faults,
            )
        if engine_factory is not None:
            self.engine = engine_factory(
                self.sim, self.tracer, self.costs, self.core, self.channels
            )
            # Ablation factories keep their legacy signature; attach the
            # observer afterwards so their charges still hit the metrics.
            if observer is not None and getattr(
                    self.engine, "obs", None) is None:
                self.engine.obs = observer
        else:
            self.engine = make_engine(
                mode, self.sim, self.tracer, self.costs,
                core=self.core, channels=self.channels,
                placement=placement, mechanism=wait_mechanism,
                obs=observer, faults=faults, watchdog=watchdog,
            )

        self.stack = NestedStack(
            self.sim, self.tracer, self.costs, self.engine,
            self.l0, self.l1, self.l1_vm, self.l2_vm,
            interrupts=self.interrupts, obs=observer,
        )
        self.stack.boot()

        if mode == ExecutionMode.HW_SVT:
            # L0 loads each level's state into its hardware context with
            # cross-context stores (paper §4 "Configuring L1").  External
            # interrupts all land on L0's context (paper §3.1).
            self.l1_vm.vcpu.bind_context(self.core.context(1))
            self.l2_vm.vcpu.bind_context(self.core.context(2))
            self.interrupts.redirect_all_to(0)

        # Hook invoked for every interrupt taken while a guest runs:
        # ``irq_router(machine, vector) -> True`` when consumed.  Workload
        # models (e.g. the video player) install their own.
        self.irq_router = None

        # Deferred I/O notifications: device completions must not re-enter
        # the exit machinery mid-exit, so they queue here and drain
        # between instructions (see :meth:`service_io`).
        self._deferred = deque()

        if mode == ExecutionMode.HW_SVT:
            # Enter steady state: L2 running in its context.
            self.engine.resume_l2()

        simkernel.adopt_machine(self)

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------

    def run_program(self, program, level=2):
        """Execute an instruction stream at a virtualization level.

        ``level`` 0 runs native (Fig. 6's L0 bar), 1 runs as a plain
        single-level guest, 2 runs as the nested guest.
        """
        if level not in (0, 1, 2):
            raise ConfigError(f"no virtualization level {level}")
        start = self.sim.now
        exits_before = self._total_exits()
        span = (self.obs.span("run_program", level=level,
                              mode=str(self.mode))
                if self.obs is not None else nullcontext())
        # The segment/batch kernels batch charges, which would coarsen
        # per-instruction observability (span streams, kept trace
        # events); those paths keep the instruction-exact legacy loop.
        # Programs with few batchable instructions also step: compiling
        # them costs more than the batched replay saves
        # (segments.COMPILE_MIN_INSTRUCTIONS counts ALU/PAUSE work),
        # and both paths are byte-identical by contract either way.
        fast = (self.kernel != simkernel.LEGACY and self.obs is None
                and not self.tracer.keep_events
                and (segments.batchable_dynamic(program)
                     >= segments.COMPILE_MIN_INSTRUCTIONS))
        with span:
            if fast:
                count = self._run_segments(program, level)
            else:
                count = 0
                for instruction in program:
                    self.run_instruction(instruction, level)
                    count += 1
        return RunResult(
            elapsed_ns=self.sim.now - start,
            instructions=count,
            exits=self._total_exits() - exits_before,
            start_ns=start,
            end_ns=self.sim.now,
        )

    def _run_segments(self, program, level):
        """Fast-path program execution over the compiled plan.

        Stepped instructions go through :meth:`run_instruction`
        unchanged; segments replay through :meth:`_replay_segment`.
        Returns the executed instruction count (same contract as the
        legacy loop).
        """
        plan = segments.compile_program(program, self.mode, level,
                                        self.costs)
        if plan.single is not None:
            self._replay_segment(plan.single, level,
                                 passes=program.repeat)
            return plan.count * program.repeat
        instructions = program.instructions
        for _ in range(program.repeat):
            for node in plan.nodes:
                if type(node) is int:
                    self.run_instruction(instructions[node], level)
                else:
                    self._replay_segment(node, level, passes=1)
        return plan.count * program.repeat

    def _replay_segment(self, segment, level, passes=1):
        """Charge one segment's cost span, honouring event boundaries.

        Equivalent to running the segment's ALU/PAUSE instructions
        through the legacy loop: the deferred-I/O and interrupt-window
        checks re-run wherever an event can fire (segment entry and
        after any instruction whose charge fired one), and the whole
        remaining span is charged in one call when the next scheduled
        deadline lies at or beyond its end — the legacy loop would have
        made the same checks with the same (empty) outcomes in between.
        """
        sim = self.sim
        costs = segment.costs
        suffix = segment.suffix
        total = segment.total
        n = len(costs)
        index = 0
        retired = 0
        while passes:
            self._segment_boundary(level)
            remaining = suffix[index] + total * (passes - 1)
            if remaining == 0:
                # Zero-cost tail: time cannot pass, so no event can
                # fire and the per-instruction checks stay no-ops.
                retired += (n - index) + n * (passes - 1)
                break
            next_due = sim.peek_next_time()
            if next_due is None or next_due - sim.now >= remaining:
                self._charge(remaining, Category.GUEST_WORK)
                retired += (n - index) + n * (passes - 1)
                break
            # An event falls strictly inside the remaining span: step
            # one instruction (exactly the legacy cadence) so the
            # boundary checks re-run right after it fires.
            cost = costs[index]
            if cost:
                self._charge(cost, Category.GUEST_WORK)
            retired += 1
            index += 1
            if index == n:
                index = 0
                passes -= 1
        self.instructions_retired += retired

    def _segment_boundary(self, level):
        """The checks a segment boundary owes the legacy loop: drain
        deferred I/O, then take any pending interrupts.  Shared by
        :meth:`_replay_segment` and the batch replay tier
        (:func:`repro.sim.batch.replay_cells`), so both kernels run the
        identical boundary sequence in the identical order."""
        if self._deferred:
            self.service_io()
        self._take_pending_interrupts(level)

    def run_instruction(self, instruction, level=2):
        """Execute one instruction at a level (exits included)."""
        self.instructions_retired += 1
        if self._deferred:
            self.service_io()
        self._take_pending_interrupts(level)
        if instruction.work_ns:
            self._charge(instruction.work_ns, Category.GUEST_WORK)
        if level == 0:
            self._execute_native(instruction)
            return
        if instruction.kind == Op.CPUID:
            # Guest-side share of the trapped instruction (Table 1 part 0).
            self._charge(self.costs.cpuid_guest_work, Category.GUEST_WORK)
        exit_info = self._classify(instruction, level)
        if exit_info is None:
            self._execute_locally(instruction, level)
            return
        if level == 2:
            self.stack.l2_exit(exit_info)
        else:
            self.stack.l1_exit(exit_info)

    def elapse(self, ns, category=Category.IDLE):
        """Let simulated time pass (device/wire waits, idle gaps)."""
        self._charge(ns, category)

    def run_until_idle(self, limit=None, max_events=None):
        """Drain scheduled events (device completions, timers).
        ``max_events`` forwards the engine's livelock cycle budget."""
        return self.sim.run_until_idle(limit, max_events=max_events)

    # ------------------------------------------------------------------
    # Deferred I/O servicing
    # ------------------------------------------------------------------

    def post_deferred(self, callback):
        """Queue work (e.g. an interrupt-injection chain) to run at the
        next safe point — never inside an in-flight VM exit."""
        self._deferred.append(callback)

    def service_io(self, budget=100_000):
        """Run queued I/O notifications now.  Chains may enqueue more;
        everything drains before returning.  ``budget`` bounds the drain
        against self-perpetuating chains (a deferred callback endlessly
        re-posting itself would otherwise livelock the machine)."""
        drained = 0
        while self._deferred:
            if drained >= budget:
                raise VirtualizationError(
                    f"service_io: deferred chain exceeded its budget of "
                    f"{budget} callbacks (livelocked I/O chain?)"
                )
            self._deferred.popleft()()
            drained += 1

    @property
    def has_pending_io(self):
        return bool(self._deferred)

    def wait_until(self, predicate, limit_ns=1_000_000_000):
        """Idle the machine until ``predicate()`` holds, servicing timer
        and device events as simulated time passes.  Models the guest
        blocking on I/O completion."""
        deadline = self.sim.now + limit_ns
        while not predicate():
            if self._deferred:
                self.service_io()
                continue
            next_event = self.sim.peek_next_time()
            if next_event is None:
                raise VirtualizationError(
                    "wait_until: no pending events; predicate can never hold"
                )
            if next_event > deadline:
                raise VirtualizationError("wait_until: limit exceeded")
            # Idle until the event fires (its callback typically posts a
            # deferred chain, serviced on the next loop turn).
            self._charge(max(0, next_event - self.sim.now), Category.IDLE)
        return self.sim.now

    # ------------------------------------------------------------------
    # Classification: does this instruction exit at this level?
    # ------------------------------------------------------------------

    def _classify(self, instruction, level):
        kind = instruction.kind
        vm = self.l2_vm if level == 2 else self.l1_vm
        vcpu = vm.vcpu
        qual = dict(instruction.operands)

        if kind == Op.ALU or kind == Op.PAUSE:
            return None
        if kind == Op.CPUID:
            return ExitInfo(ExitReason.CPUID, qual, guest_rip=vcpu.rip)
        if kind == Op.VMCALL:
            return ExitInfo(ExitReason.VMCALL, qual, guest_rip=vcpu.rip)
        if kind in (Op.RDMSR, Op.WRMSR):
            reason = (ExitReason.MSR_READ if kind == Op.RDMSR
                      else ExitReason.MSR_WRITE)
            msr = instruction.operand("msr")
            if self._msr_traps(msr, level):
                return ExitInfo(reason, qual, guest_rip=vcpu.rip)
            return None
        if kind in (Op.MMIO_READ, Op.MMIO_WRITE):
            gpa = instruction.operand("addr")
            qual["gpa"] = gpa
            qual["write"] = kind == Op.MMIO_WRITE
            if vm.ept.lookup_mmio(gpa) is not None:
                return ExitInfo(ExitReason.EPT_MISCONFIG, qual,
                                guest_rip=vcpu.rip)
            try:
                vm.ept.translate(gpa)
            except EptFault:
                # Unbacked guest-physical page: demand-paging fault.
                return ExitInfo(ExitReason.EPT_VIOLATION, qual,
                                guest_rip=vcpu.rip)
            return None
        if kind in (Op.IO_READ, Op.IO_WRITE):
            qual["write"] = kind == Op.IO_WRITE
            return ExitInfo(ExitReason.IO_INSTRUCTION, qual,
                            guest_rip=vcpu.rip)
        if kind == Op.HLT:
            return ExitInfo(ExitReason.HLT, qual, guest_rip=vcpu.rip)
        if kind in (Op.VMPTRLD, Op.VMREAD, Op.VMWRITE, Op.VMRESUME,
                    Op.INVEPT):
            # VMX instructions by a guest always trap (the nested case).
            return ExitInfo(getattr(ExitReason, kind.upper()), qual,
                            guest_rip=vcpu.rip)
        if kind == Op.RDTSC:
            # Paper §2.1's example: L1 may give its guest direct TSC
            # access, but L0's policy can force a trap regardless (used
            # for VM scheduling and migration).
            vmcs = self.stack.vmcs02 if level == 2 else self.stack.vmcs01
            if vmcs.force_tsc_exit:
                qual["tsc"] = self._virtual_tsc()
                return ExitInfo(ExitReason.RDTSC, qual,
                                guest_rip=vcpu.rip)
            return None
        if kind in (Op.MONITOR, Op.MWAIT):
            return None  # configured not to exit in this stack
        if kind in (Op.CTXTLD, Op.CTXTST):
            return None  # handled functionally by the engine/writers
        raise VirtualizationError(f"cannot classify instruction {kind!r}")

    def _msr_traps(self, msr, level):
        vmcs = self.stack.vmcs02 if level == 2 else self.stack.vmcs01
        if msr in vmcs.trapped_msrs:
            return True
        return msr in self.l0.policy.forced_msr_traps

    # ------------------------------------------------------------------
    # Non-exiting execution
    # ------------------------------------------------------------------

    def _execute_native(self, instruction):
        """Level 0: nothing traps; emulate architectural effects only."""
        if instruction.kind == Op.CPUID:
            eax, ebx, ecx, edx = cpuid_leaf_values(
                instruction.operand("leaf"), 0
            )
            host = self.core.context(0)
            host.write("rax", eax)
            host.write("rbx", ebx)
            host.write("rcx", ecx)
            host.write("rdx", edx)
            self._charge(self.costs.cpuid_guest_work, Category.GUEST_WORK)
        elif instruction.kind == Op.WRMSR:
            self._charge(self.costs.timer_program, Category.GUEST_WORK)

    def _virtual_tsc(self):
        """TSC ticks at the configured core frequency."""
        return int(self.sim.now * self.config.host.freq_ghz)

    def _execute_locally(self, instruction, level):
        """A guest instruction that does not trap (untrapped MSR, RAM
        access...)."""
        vm = self.l2_vm if level == 2 else self.l1_vm
        if instruction.kind == Op.RDTSC:
            # Direct (non-trapping) TSC read, plus any offset the
            # hypervisor configured.
            vmcs = self.stack.vmcs02 if level == 2 else self.stack.vmcs01
            value = self._virtual_tsc() + vmcs.read("tsc_offset")
            vm.vcpu.write("rax", value & 0xFFFFFFFF)
            vm.vcpu.write("rdx", (value >> 32) & 0xFFFFFFFF)
            self._charge(self.costs.memory_touch, Category.GUEST_WORK)
            return
        if instruction.kind == Op.WRMSR:
            vm.vcpu.write_msr(instruction.operand("msr"),
                              instruction.operand("value"))
            self._charge(self.costs.memory_touch, Category.GUEST_WORK)
        elif instruction.kind == Op.RDMSR:
            vm.vcpu.write("rax", vm.vcpu.read_msr(instruction.operand("msr")))
            self._charge(self.costs.memory_touch, Category.GUEST_WORK)

    # ------------------------------------------------------------------
    # Interrupts
    # ------------------------------------------------------------------

    def _take_pending_interrupts(self, level):
        """Between instructions, a pending interrupt forces an exit to
        L0 (or a custom router consumes it)."""
        target_ctx = 0
        # svtlint: disable=SVT005 — bounded in practice: each iteration
        # acks exactly one pending interrupt, and handlers only add new
        # ones via sim events that cannot fire while this loop spins.
        while self.interrupts.has_pending(target_ctx):
            vector, _raised_at = self.interrupts.ack(target_ctx)
            if self.irq_router is not None and self.irq_router(self, vector):
                continue
            if level == 2:
                self.stack.l2_exit(ExitInfo(
                    ExitReason.EXTERNAL_INTERRUPT,
                    qualification={"vector": vector},
                ))
            elif level == 1:
                self.stack.l1_exit(ExitInfo(
                    ExitReason.EXTERNAL_INTERRUPT,
                    qualification={"vector": vector},
                ))
            else:
                self._charge(self.costs.irq_delivery, Category.INTERRUPT)

    def _total_exits(self):
        return (sum(self.stack.exit_counts.values())
                + sum(self.stack.aux_exit_counts.values()))

    def _read_clock(self):
        """Zero-argument clock handed to the tracer's span API."""
        return self.sim.now

    def _charge(self, ns, category):
        if ns:
            self.sim.charge(ns)
            self.tracer.record(category, ns)

    def __repr__(self):
        return f"Machine(mode={self.mode!r}, t={self.sim.now} ns)"
