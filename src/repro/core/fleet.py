"""Fleets of simulated stacks (multi-vCPU / multi-VM experiments).

The paper's Table-4 guests have several vCPUs and §4.1 sketches
per-context resources so "different SVt contexts of the same core [can]
be used for different independent VMs".  A :class:`Fleet` instantiates N
independent machines (one per vCPU or per VM) and dispatches work across
them, aggregating time and trace accounting — the abstraction behind the
memcached model's "2 usable vCPUs" and a harness for scaling studies.
"""

from dataclasses import dataclass

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.errors import ConfigError


@dataclass(frozen=True)
class FleetResult:
    """Aggregate outcome of a dispatched batch."""

    programs: int
    makespan_ns: int        # time until the last machine finished
    total_busy_ns: int      # summed busy time across machines
    total_exits: int

    @property
    def utilization(self):
        if self.makespan_ns == 0:
            return 0.0
        return self.total_busy_ns / self.makespan_ns


class Fleet:
    """N independent simulated stacks with least-loaded dispatch."""

    def __init__(self, size, mode=ExecutionMode.BASELINE, costs=None,
                 **machine_kwargs):
        if size < 1:
            raise ConfigError("fleet needs at least one machine")
        self.machines = [
            Machine(mode=mode, costs=costs, **machine_kwargs)
            for _ in range(size)
        ]
        self.mode = mode
        self.dispatched = [0] * size

    @property
    def size(self):
        return len(self.machines)

    def least_loaded(self):
        """Index of the machine with the earliest local clock."""
        return min(range(self.size),
                   key=lambda i: self.machines[i].sim.now)

    def dispatch(self, program, level=2):
        """Run one program on the least-loaded machine; returns
        (machine_index, RunResult)."""
        index = self.least_loaded()
        result = self.machines[index].run_program(program, level=level)
        self.dispatched[index] += 1
        return index, result

    def run_batch(self, programs, level=2):
        """Dispatch a batch; returns a :class:`FleetResult`."""
        start_clocks = [m.sim.now for m in self.machines]
        exits_before = sum(self._exits(m) for m in self.machines)
        count = 0
        for program in programs:
            self.dispatch(program, level=level)
            count += 1
        busy = sum(
            machine.sim.now - start
            for machine, start in zip(self.machines, start_clocks)
        )
        makespan = max(
            machine.sim.now - start
            for machine, start in zip(self.machines, start_clocks)
        )
        return FleetResult(
            programs=count,
            makespan_ns=makespan,
            total_busy_ns=busy,
            total_exits=sum(self._exits(m)
                            for m in self.machines) - exits_before,
        )

    def broadcast(self, program, level=2):
        """Run ``program`` once on *every* machine; returns a
        :class:`FleetResult`.

        The machines are independent contexts by construction (one per
        vCPU / VM), so the batch kernel's flat cell replay
        (:func:`repro.sim.batch.replay_cells`) applies directly: under
        ``REPRO_SIM_KERNEL=batch`` eligible machines are charged in
        one loop, and every machine ends in exactly the state its own
        ``run_program`` call would have produced (ineligible ones take
        that path literally)."""
        from repro.sim.batch import replay_cells

        start_clocks = [m.sim.now for m in self.machines]
        exits_before = sum(self._exits(m) for m in self.machines)
        replay_cells([(machine, program) for machine in self.machines],
                     level=level)
        for index in range(self.size):
            self.dispatched[index] += 1
        busy = sum(
            machine.sim.now - start
            for machine, start in zip(self.machines, start_clocks)
        )
        makespan = max(
            machine.sim.now - start
            for machine, start in zip(self.machines, start_clocks)
        )
        return FleetResult(
            programs=self.size,
            makespan_ns=makespan,
            total_busy_ns=busy,
            total_exits=sum(self._exits(m)
                            for m in self.machines) - exits_before,
        )

    def merged_tracer(self):
        merged = self.machines[0].tracer
        for machine in self.machines[1:]:
            merged = merged.merged_with(machine.tracer)
        return merged

    @staticmethod
    def _exits(machine):
        return (sum(machine.stack.exit_counts.values())
                + sum(machine.stack.aux_exit_counts.values()))

    def __repr__(self):
        return f"Fleet({self.size} x {self.mode})"
