"""Prototype-footprint audit (paper Table 3).

The paper's Table 3 counts the lines its SW SVt prototype added to QEMU
(+654/-10), Linux/KVM (+2432/-51) and other kernel code (+227/-2).  The
equivalent audit here counts the modules of this repository that play
each codebase's role, for a scale comparison.
"""

from pathlib import Path

import repro

#: Paper Table 3: codebase -> (lines added, lines removed).
PAPER = {
    "QEMU": (654, 10),
    "Linux / KVM": (2432, 51),
    "Linux / other": (227, 2),
}

#: Our modules playing each codebase's role.
EQUIVALENTS = {
    # ivshmem command rings + device plumbing lived in QEMU.
    "QEMU": ("core/channel.py", "io/device.py"),
    # Exit handling, SVt-thread logic, reflection changes lived in KVM.
    "Linux / KVM": ("core/switch.py", "core/sw_prototype.py",
                    "core/cross_context.py"),
    # Pairing/scheduling hooks lived in generic kernel code.
    "Linux / other": ("core/wait.py",),
}


def loc_of(relative_path):
    """Line count of one module, relative to the repro package root."""
    root = Path(repro.__file__).parent
    with (root / relative_path).open() as handle:
        return sum(1 for _ in handle)


def audit():
    """``{role: total_loc}`` over the equivalence map."""
    return {
        role: sum(loc_of(path) for path in paths)
        for role, paths in EQUIVALENTS.items()
    }
