"""Time-breakdown accounting (paper Table 1 and the §6.2/§6.3 profiles)."""

from repro.sim.trace import Category


def table1_rows(tracer, operations=1):
    """Render a tracer's totals as the paper's Table 1 rows.

    Lazy save/restore is folded into the L0/L1 handler rows, exactly as
    the paper folds it ("some of the context switching costs in (1) and
    (4) are folded into (3) and (5)").  Returns
    ``[(label, us, percent)]``.
    """
    per_op = {
        key: tracer.totals.get(key, 0) / operations
        for key in tracer.totals
    }
    rows = [
        ("0 L2", per_op.get(Category.GUEST_WORK, 0)),
        ("1 Switch L2<->L0", per_op.get(Category.SWITCH_L2_L0, 0)),
        ("2 Transform vmcs02/vmcs12",
         per_op.get(Category.VMCS_TRANSFORM, 0)),
        ("3 L0 handler",
         per_op.get(Category.L0_HANDLER, 0)
         + per_op.get(Category.L0_LAZY_SWITCH, 0)),
        ("4 Switch L0<->L1", per_op.get(Category.SWITCH_L0_L1, 0)),
        ("5 L1 handler",
         per_op.get(Category.L1_HANDLER, 0)
         + per_op.get(Category.L1_LAZY_SWITCH, 0)),
    ]
    total = sum(ns for _, ns in rows) or 1
    return [(label, ns / 1000.0, 100.0 * ns / total) for label, ns in rows]


def exit_reason_profile(stack):
    """Share of exit-handling time per reason (paper §6.2/§6.3 profiling:
    "L0 spends 4.8%-19.3% of the overall time serving EPT_MISCONFIG
    traps...").  Returns ``{reason: fraction}`` sorted descending."""
    total = sum(stack.exit_ns.values()) + sum(stack.aux_exit_ns.values())
    if total == 0:
        return {}
    shares = {
        reason: ns / total for reason, ns in stack.exit_ns.items()
    }
    for reason, ns in stack.aux_exit_ns.items():
        shares[f"aux:{reason}"] = ns / total
    return dict(sorted(shares.items(), key=lambda item: -item[1]))


def vmcs_access_share(stack):
    """Fraction of exit-handling time spent *in the L0 handlers* of L1's
    VMCS accesses (paper §6.2: "of all time spent handling VM traps in
    L0, only about 4% is spent in the VM trap handlers triggered by VMCS
    accesses in L1").  Handler time only — the switch cost around each
    access is context switching, not handling."""
    total = sum(stack.exit_ns.values()) + sum(stack.aux_exit_ns.values())
    if total == 0:
        return 0.0
    handler_ns = sum(
        stack.aux_exit_counts.get(kind, 0) * stack.costs.l0_pure(kind)
        for kind in ("VMREAD", "VMWRITE")
    )
    return handler_ns / total
