"""Trace replay: re-price a recorded run under other cost models.

The simulator charges every nanosecond to a :class:`Category` through a
cost model (:mod:`repro.cpu.costs`), and — for a fixed workload — the
*control flow* never depends on the constants: a nested ``cpuid`` makes
the same crossings under any pricing.  That means a recorded trace can
be **re-priced** under a different registered model
(:mod:`repro.cpu.costmodels`) without re-running the simulation: derive
how many unit operations each category holds from the recording model's
unit price, then multiply by the new model's price.

This generalizes :func:`repro.analysis.hw_model.scale_sw_to_hw` (which
rescales one trace into one *mode*) into "any trace under any *model*",
and is what makes the ``repro dse`` design-space driver cheap: record
the three modes once, then sweep hundreds of candidate models over the
recordings.

Why totals, not counts
----------------------

``ops`` per category is derived as ``total // unit_price`` (with an
exact-divisibility check), **not** from ``Tracer.counts``:

* the L0 handler charge is split into two records per nested exit
  (inject before entering L1, the remainder after — see
  ``repro.virt.nested._reflect_to_l1``), so the record count is 2× the
  semantic operation count;
* HW SVt records zero-ns ``STALL_RESUME`` entries for VMPTRLD's free
  field caching (``svt_vmptrld_cache = 0``), inflating the count
  without moving the total.

Totals divide out both artifacts exactly.

Known limits (documented, asserted in tests)
--------------------------------------------

* Repricing assumes the target model does not change *control flow*.
  All registered models only re-cost the same events, so this holds;
  a model that (say) changed watchdog behaviour would not be
  replayable.
* Categories without a single unit price in the cost model
  (``interrupt``, ``io_*``, ``watchdog``, ``idle``) are carried over
  unchanged — a re-priced trace of an interrupt-heavy workload is only
  as good as that approximation.  :func:`reprice` reports them in
  ``carried``.
* Zero-priced sites under the *recording* model (e.g. a model with
  ``svt_stall_resume = 0``) leave no total to divide, so their ops are
  unrecoverable; record under a model that prices them (the default
  ``xeon-paper`` does).
* :func:`svt_projection` predicts HW SVt from a baseline/SW trace; it
  cannot see the ``ctxtst`` register writes HW SVt adds
  (``CROSS_CONTEXT``, ~1 ns each), so it under-predicts by that much.
"""

from dataclasses import dataclass, field

from repro.core.mode import ExecutionMode
from repro.cpu import costmodels, isa
from repro.errors import ConfigError
from repro.sim.trace import Category


class ReplayError(ConfigError):
    """A trace cannot be re-priced (inexact division, bad context)."""


#: Categories carried over verbatim because no single cost-model
#: constant prices them (see module docstring).
UNPRICED = frozenset({
    Category.INTERRUPT,
    Category.IO_WIRE,
    Category.IO_DEVICE,
    Category.WATCHDOG,
    Category.IDLE,
})


@dataclass(frozen=True)
class RecordedTrace:
    """One recorded run: per-category totals plus pricing context.

    ``totals``/``counts`` are post-warmup deltas (the §6 measurement
    protocol — the first HW SVt resume differs, so it is excluded just
    as :func:`repro.workloads.cpuid.run` excludes it).  The context
    fields pin everything the unit-price table needs: the exit reason,
    the virtualization level (nested vs. single-level handler tables),
    and the SW SVt channel placement/mechanism.
    """

    mode: str
    level: int
    iterations: int
    model_id: str
    reason: str = "CPUID"
    placement: str = "smt"
    mechanism: str = "mwait"
    totals: dict = field(default_factory=dict)
    counts: dict = field(default_factory=dict)

    def total_ns(self):
        return sum(self.totals.values())

    def ns_per_op(self):
        return self.total_ns() / self.iterations


@dataclass(frozen=True)
class RepricedTrace:
    """The result of :func:`reprice`: new totals plus an audit trail."""

    trace: RecordedTrace
    model_id: str
    totals: dict
    #: Unit-operation count derived per priced category.
    ops: dict
    #: Categories copied verbatim (no unit price in the model).
    carried: tuple

    def total_ns(self):
        return sum(self.totals.values())

    def ns_per_op(self):
        return self.total_ns() / self.trace.iterations


def unit_price(model, category, *, level=2, reason="CPUID",
               placement="smt", mechanism="mwait"):
    """The cost-model constant behind one record in ``category``.

    Returns ``None`` for categories in :data:`UNPRICED`.  Prices mirror
    the charge sites exactly: the switch/transform categories charge
    per *crossing* (the ``*_each`` halves), the handlers per semantic
    operation, the channel per one-way hop.
    """
    if category in UNPRICED:
        return None
    table = {
        Category.SWITCH_L2_L0: model.switch_l2_l0_each,
        Category.VMCS_TRANSFORM: model.vmcs_transform_each,
        Category.SWITCH_L0_L1: model.switch_l0_l1_each,
        Category.L1_HANDLER: model.l1_pure(reason),
        Category.L1_LAZY_SWITCH: model.l1_lazy_switch,
        Category.STALL_RESUME: model.svt_stall_resume,
        Category.CROSS_CONTEXT: model.ctxt_access,
        Category.CHANNEL: model.channel_one_way(placement, mechanism),
        Category.GUEST_WORK: model.cpuid_guest_work,
    }
    if category == Category.L0_HANDLER:
        return (model.l0_pure(reason) if level == 2
                else model.l0_single(reason))
    if category == Category.L0_LAZY_SWITCH:
        return (model.l0_lazy_switch if level == 2
                else model.l0_single_lazy)
    try:
        return table[category]
    except KeyError:
        raise ReplayError(
            f"no unit price for trace category {category!r}"
        ) from None


def record_cpuid(mode=ExecutionMode.BASELINE, level=2, iterations=50,
                 costs=None, placement="smt", mechanism="mwait"):
    """Record one cpuid-loop run as a :class:`RecordedTrace`.

    Mirrors :func:`repro.workloads.cpuid.run`: one warm-up pass
    (excluded from the recording), then ``iterations`` measured passes.
    """
    # Local import: system -> costmodels -> (tests ->) replay would
    # otherwise make this module part of the machine's import cycle.
    from repro.core.system import Machine

    model = costmodels.resolve(costs)
    machine = Machine(mode=mode, costs=model, placement=placement,
                      wait_mechanism=mechanism)
    program = isa.Program([isa.cpuid()], repeat=1)
    machine.run_program(program, level=level)
    totals_before = machine.tracer.snapshot()
    counts_before = dict(machine.tracer.counts)
    machine.run_program(isa.Program([isa.cpuid()], repeat=iterations),
                        level=level)
    totals = {
        category: machine.tracer.totals[category] - totals_before.get(
            category, 0)
        for category in machine.tracer.totals
    }
    counts = {
        category: machine.tracer.counts[category] - counts_before.get(
            category, 0)
        for category in machine.tracer.counts
    }
    return RecordedTrace(
        mode=str(mode),
        level=level,
        iterations=iterations,
        model_id=model.model_id,
        reason="CPUID",
        placement=placement,
        mechanism=mechanism,
        totals={k: v for k, v in totals.items() if v or counts.get(k)},
        counts={k: v for k, v in counts.items() if v},
    )


def _derive_ops(trace, source):
    """Unit-operation count per priced category, from exact division."""
    ops = {}
    for category, total in trace.totals.items():
        price = unit_price(
            source, category, level=trace.level, reason=trace.reason,
            placement=trace.placement, mechanism=trace.mechanism,
        )
        if price is None:
            continue
        if price == 0:
            if total:
                raise ReplayError(
                    f"category {category!r} holds {total} ns but the "
                    f"recording model {source.model_id!r} prices it at "
                    "0 — operation count is unrecoverable"
                )
            ops[category] = 0
            continue
        if total % price:
            raise ReplayError(
                f"category {category!r}: total {total} ns is not a "
                f"multiple of {source.model_id!r}'s unit price {price}"
                " — the trace was not recorded under this model"
            )
        ops[category] = total // price
    return ops


def reprice(trace, model, placement=None, mechanism=None):
    """Re-price ``trace`` under ``model`` without re-simulating.

    ``model`` may be a registered name or a :class:`CostModel`.
    ``placement``/``mechanism`` optionally re-route the SW SVt channel
    while repricing (a what-if the recording's control flow supports,
    since hop *count* does not depend on either).
    """
    source = costmodels.get_model(trace.model_id)
    target = costmodels.resolve(model)
    placement = trace.placement if placement is None else placement
    mechanism = trace.mechanism if mechanism is None else mechanism
    ops = _derive_ops(trace, source)

    totals = {}
    carried = []
    for category, total in trace.totals.items():
        if category in ops:
            price = unit_price(
                target, category, level=trace.level, reason=trace.reason,
                placement=placement, mechanism=mechanism,
            )
            totals[category] = ops[category] * price
        else:
            totals[category] = total
            carried.append(category)
    return RepricedTrace(
        trace=trace,
        model_id=target.model_id,
        totals=totals,
        ops=ops,
        carried=tuple(sorted(carried)),
    )


def svt_projection(trace, model=None):
    """Predicted HW SVt total from a baseline or SW SVt trace.

    The §6 methodology (:func:`repro.analysis.hw_model.scale_sw_to_hw`)
    made *fractional* scaling assumptions; with the unit-operation
    counts recovered by replay the projection is structural instead:
    every removable crossing (explicit switches, lazy save/restore,
    channel hops) is dropped and replaced by one hardware stall/resume
    event per crossing, priced by the target model.  Known limit: the
    ``ctxtst`` register writes HW SVt adds (~1 ns each) are invisible
    to a baseline/SW recording, so this slightly under-predicts.
    """
    target = costmodels.resolve(model)
    source = costmodels.get_model(trace.model_id)
    ops = _derive_ops(trace, source)

    removable = (
        Category.SWITCH_L2_L0,
        Category.SWITCH_L0_L1,
        Category.L0_LAZY_SWITCH,
        Category.L1_LAZY_SWITCH,
        Category.CHANNEL,
    )
    crossings = (
        ops.get(Category.SWITCH_L2_L0, 0)
        + ops.get(Category.SWITCH_L0_L1, 0)
        + ops.get(Category.CHANNEL, 0)
    )
    total = 0
    for category, recorded in trace.totals.items():
        if category in removable:
            continue
        if category in ops:
            price = unit_price(
                target, category, level=trace.level, reason=trace.reason,
                placement=trace.placement, mechanism=trace.mechanism,
            )
            total += ops[category] * price
        else:
            total += recorded
    total += crossings * target.svt_stall_resume
    return total
