"""Analysis utilities: breakdowns, the paper's HW-model methodology,
figure rendering, the Table-3 footprint audit, and report formatting."""

from repro.analysis.breakdown import (
    exit_reason_profile,
    table1_rows,
    vmcs_access_share,
)
from repro.analysis.figures import bar_chart, grouped_bar_chart, line_plot
from repro.analysis.hw_model import predicted_speedup, scale_sw_to_hw
from repro.analysis.loc import audit as loc_audit
from repro.analysis.report import format_table, render_result, speedup_row

__all__ = [
    "bar_chart",
    "exit_reason_profile",
    "format_table",
    "render_result",
    "grouped_bar_chart",
    "line_plot",
    "loc_audit",
    "predicted_speedup",
    "scale_sw_to_hw",
    "speedup_row",
    "table1_rows",
    "vmcs_access_share",
]
