"""Plain-text table rendering for the benchmark harness.

The benchmarks print measured-vs-paper rows; keeping the formatting here
makes the bench files read like the paper's tables.
"""


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table; returns the string."""
    columns = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in text_rows))
        if text_rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(widths[i])
                           for i, c in enumerate(columns)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)


def speedup_row(label, baseline_value, measured, paper, unit=""):
    """One Fig.-7-style row: measured baseline + speedups vs paper's."""
    measured_sw, measured_hw = measured
    paper_base, paper_sw, paper_hw = paper
    return (
        label,
        f"{baseline_value:.1f}{unit} (paper {paper_base:.0f}{unit})",
        f"{measured_sw:.2f}x (paper {paper_sw:.2f}x)",
        f"{measured_hw:.2f}x (paper {paper_hw:.2f}x)",
    )


def fmt_us(ns):
    """Nanoseconds -> 'X.XX us' string."""
    return f"{ns / 1000.0:.2f} us"
