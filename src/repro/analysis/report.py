"""Plain-text rendering: tables, and whole experiment ``Result``s.

The benchmarks print measured-vs-paper rows; keeping the formatting here
makes the bench files read like the paper's tables.  :func:`render_result`
is the pure renderer the CLI uses over the experiment runtime's
structured results — no experiment logic lives here, only presentation.
"""


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table; returns the string."""
    columns = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in text_rows))
        if text_rows else len(columns[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(c.ljust(widths[i])
                           for i, c in enumerate(columns)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(len(row))))
    return "\n".join(lines)


def speedup_row(label, baseline_value, measured, paper, unit=""):
    """One Fig.-7-style row: measured baseline + speedups vs paper's."""
    measured_sw, measured_hw = measured
    paper_base, paper_sw, paper_hw = paper
    return (
        label,
        f"{baseline_value:.1f}{unit} (paper {paper_base:.0f}{unit})",
        f"{measured_sw:.2f}x (paper {paper_sw:.2f}x)",
        f"{measured_hw:.2f}x (paper {paper_hw:.2f}x)",
    )


def fmt_us(ns):
    """Nanoseconds -> 'X.XX us' string."""
    return f"{ns / 1000.0:.2f} us"


def _render_table(table):
    """One structured table -> text (plain grid or horizontal bars)."""
    from repro.analysis.figures import bar_chart

    if table.kind == "bars":
        return bar_chart(
            [(row.label, row.values[0]) for row in table.rows],
            unit=table.unit,
            title=table.title,
        )
    with_paper = any(row.paper for row in table.rows)
    columns = list(table.columns) + (["Paper"] if with_paper else [])
    rows = [
        (row.label, *row.values) + ((row.paper,) if with_paper else ())
        for row in table.rows
    ]
    return format_table(columns, rows, title=table.title)


def render_result(result):
    """Render a :class:`repro.exp.result.Result` as terminal text.

    Pure presentation: tables (or bar groups), then any series as a
    line plot (render hints come from ``result.meta``), then the notes.
    """
    from repro.analysis.figures import line_plot

    blocks = [_render_table(table) for table in result.tables]
    if result.series:
        hints = result.meta_dict
        blocks.append(line_plot(
            {series.name: list(series.points)
             for series in result.series},
            y_ceiling=hints.get("y_ceiling"),
            x_label=hints.get("x_label", ""),
            y_label=hints.get("y_label", ""),
            title=hints.get("plot_title"),
        ))
    blocks.extend(result.notes)
    return "\n\n".join(blocks)
