"""The paper's HW-SVt modelling methodology (paper §6, first page).

*"'HW SVt' shows an approximation of the hardware implementation of SVt.
We modeled it by obtaining detailed timing measurements of each VM trap
event and the cost of the communication channels in SW SVt; we then
compared these numbers to the VM trap breakdown numbers in Table 1, and
scaled the speedup assuming that every VM trap from L2 and L1 would not
pay the cost of context switching."*

:func:`scale_sw_to_hw` applies exactly that scaling to a traced SW SVt
run, as a cross-check of our direct HW SVt simulation — the ablation
bench `benchmarks/test_ablation_hw_model.py` compares the two.
"""

from repro.sim.trace import Category


def removable_context_switch_ns(tracer):
    """Time in a trace that §6's methodology calls context switching:
    the explicit switches, the lazy save/restore folded into handlers,
    the SW SVt channel hops, and idle-wake scheduler costs."""
    return tracer.total(
        Category.SWITCH_L2_L0,
        Category.SWITCH_L0_L1,
        Category.L0_LAZY_SWITCH,
        Category.L1_LAZY_SWITCH,
        Category.CHANNEL,
    )


# paper: §6 — share of interrupt-delivery time that is scheduler wakeup
# (HW SVt resumes a stalled hardware context instead of waking a thread).
def scale_sw_to_hw(tracer, interrupt_wake_share=0.85):
    """Predicted HW SVt time from a SW SVt (or baseline) trace.

    Removes every context-switch category plus the scheduler-wakeup share
    of interrupt delivery (HW SVt resumes a stalled hardware context
    instead of waking a thread).  Returns predicted total ns.
    """
    total = tracer.total()
    removed = removable_context_switch_ns(tracer)
    removed += int(
        tracer.totals.get(Category.INTERRUPT, 0) * interrupt_wake_share
    )
    return total - removed


def predicted_speedup(tracer):
    """Speedup the paper's methodology would report for this trace."""
    total = tracer.total()
    predicted = scale_sw_to_hw(tracer)
    return total / predicted if predicted else float("inf")
