"""Plain-text figure rendering (bar charts and line plots).

Good enough to eyeball the paper's figures in a terminal; used by the
CLI and the examples.  No external plotting dependencies.
"""

from repro.errors import ConfigError


def bar_chart(items, width=50, unit="", title=None, reference=None):
    """Horizontal bar chart.

    ``items`` is ``[(label, value)]``; bars scale to the maximum value.
    ``reference`` optionally draws a marker column at that value (e.g.
    an SLA line).  Returns the rendered string.
    """
    items = list(items)
    if not items:
        raise ConfigError("bar chart needs at least one item")
    peak = max(value for _, value in items)
    if reference is not None:
        peak = max(peak, reference)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label, _ in items)
    lines = []
    if title:
        lines.append(title)
    for label, value in items:
        filled = int(round(value / peak * width))
        bar = "#" * filled
        if reference is not None:
            ref_col = int(round(reference / peak * width))
            if ref_col >= len(bar):
                bar = bar.ljust(ref_col) + "|"
        lines.append(
            f"{str(label):>{label_width}}  {bar}  {value:g}{unit}"
        )
    return "\n".join(lines)


def grouped_bar_chart(groups, width=40, unit="", title=None):
    """Groups of labelled bars, like the paper's Fig. 7/10.

    ``groups`` is ``[(group_label, [(series_label, value)])]``.
    """
    groups = list(groups)
    if not groups:
        raise ConfigError("grouped chart needs at least one group")
    peak = max(
        value for _, bars in groups for _, value in bars
    ) or 1.0
    series_width = max(
        len(str(name)) for _, bars in groups for name, _ in bars
    )
    lines = []
    if title:
        lines.append(title)
    for group_label, bars in groups:
        lines.append(f"{group_label}:")
        for name, value in bars:
            filled = int(round(value / peak * width))
            lines.append(
                f"  {str(name):>{series_width}}  {'#' * filled}  "
                f"{value:g}{unit}"
            )
    return "\n".join(lines)


def line_plot(series, width=60, height=16, title=None, x_label="",
              y_label="", y_ceiling=None):
    """Multi-series scatter/line plot on a character grid.

    ``series`` is ``{name: [(x, y)]}``; each series gets a distinct
    glyph.  ``y_ceiling`` clamps the vertical range (tail latencies
    explode; the interesting region is near the SLA).
    """
    if not series:
        raise ConfigError("line plot needs at least one series")
    glyphs = "ox+*@%"
    points = [
        (x, y) for values in series.values() for x, y in values
    ]
    if not points:
        raise ConfigError("line plot needs at least one point")
    xs = [p[0] for p in points]
    ys = [min(p[1], y_ceiling) if y_ceiling else p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, (name, values) in zip(glyphs, series.items()):
        for x, y in values:
            if y_ceiling is not None:
                y = min(y, y_ceiling)
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:g}{y_label}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"{x_lo:g} .. {x_hi:g} {x_label}")
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in zip(glyphs, series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
