"""repro.faults — deterministic fault injection + recovery machinery.

The chaos layer of the reproduction: seeded fault plans
(:class:`~repro.faults.plan.FaultPlan`), the per-site deterministic
injector (:class:`~repro.faults.injector.FaultInjector`), sim-clock
watchdogs with bounded backoff and graceful SW-SVt -> BASELINE
degradation (:class:`~repro.faults.watchdog.Watchdog`), and the
generalized §5.3 chaos scenarios (`repro.faults.scenario`).

See ``docs/robustness.md`` for the fault taxonomy and recovery
contracts.
"""

from repro.faults.backoff import BackoffPolicy
from repro.faults.injector import FaultInjector, VmcsCorruption
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.watchdog import DegradeEvent, Watchdog

__all__ = [
    "BackoffPolicy",
    "DegradeEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "VmcsCorruption",
    "Watchdog",
]
