"""Sim-clock watchdogs: bounded backoff, strikes, graceful degradation.

Every blocking wait in the SW SVt protocol gets a :class:`Watchdog`.
When the awaited command does not surface, the waiter *strikes*: it
charges a bounded-exponential backoff wait on the simulated clock,
retransmits, and tries again.  After ``max_strikes`` consecutive
failures on one exchange the protocol gives up **gracefully**: the
switch engine records a :class:`DegradeEvent` and falls back from the
SW SVt reflection path to the stock BASELINE switch path for the rest
of the run (correct, just slower) instead of hanging.

All arithmetic is integral and parameter-driven — no wall clock, no
randomness — so recovery timing is as deterministic as the faults that
trigger it.  Defaults: the first timeout covers several SMT-placement
round trips (`repro.cpu.costs` channel costs are ~100-200 ns one-way),
doubles per strike, and caps an order of magnitude later.
"""

from dataclasses import dataclass

from repro.faults.backoff import BackoffPolicy


@dataclass(frozen=True)
class DegradeEvent:
    """One SW-SVt -> BASELINE downgrade, recorded by the switch engine."""

    at_ns: int
    site: str        # which wait gave up ("enter_l1", "leave_l1", ...)
    strikes: int     # consecutive failures that exhausted the budget
    reason: str = ""

    def to_dict(self):
        return {"at_ns": self.at_ns, "site": self.site,
                "strikes": self.strikes, "reason": self.reason}


class Watchdog:
    """Per-wait strike/backoff bookkeeping (the engine charges time).

    Usage, per blocking exchange::

        watchdog.start()
        while not arrived():
            if watchdog.exhausted:
                ...degrade...
                break
            wait_ns = watchdog.strike()   # charge this, then retransmit
        else:
            watchdog.succeed()

    ``strike`` returns the backoff to wait before the retry:
    ``timeout_ns * backoff_factor**strike`` capped at
    ``max_backoff_ns``.  ``succeed`` closes the exchange and reports
    whether it needed retries (a *recovery*).
    """

    def __init__(self, timeout_ns=2_000, backoff_factor=2,
                 max_backoff_ns=32_000, max_strikes=5, obs=None):
        if timeout_ns <= 0:
            raise ValueError(f"timeout_ns must be > 0: {timeout_ns}")
        if backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be >= 1: {backoff_factor}"
            )
        if max_backoff_ns < timeout_ns:
            raise ValueError("max_backoff_ns must be >= timeout_ns")
        if max_strikes < 1:
            raise ValueError(f"max_strikes must be >= 1: {max_strikes}")
        #: The schedule itself, shared with every other retry path
        #: (the serve supervisor reuses the same policy object shape).
        self.policy = BackoffPolicy(
            base_ns=timeout_ns, factor=backoff_factor,
            cap_ns=max_backoff_ns, max_attempts=max_strikes,
        )
        self.timeout_ns = timeout_ns
        self.backoff_factor = backoff_factor
        self.max_backoff_ns = max_backoff_ns
        self.max_strikes = max_strikes
        self.obs = obs
        #: Strikes on the exchange currently in flight.
        self.strikes = 0
        # -- lifetime counters --------------------------------------------
        self.exchanges = 0
        self.total_strikes = 0
        self.recoveries = 0
        self.exhaustions = 0

    # -- per-exchange protocol --------------------------------------------

    def start(self):
        """Open a new blocking exchange."""
        self.strikes = 0
        self.exchanges += 1

    def backoff_ns(self, strike):
        """Backoff before retry number ``strike`` (0-based), bounded."""
        return self.policy.delay_ns(strike)

    def strike(self):
        """Record one failed wait; returns the backoff to charge."""
        wait = self.backoff_ns(self.strikes)
        self.strikes += 1
        self.total_strikes += 1
        if self.obs is not None:
            self.obs.count("watchdog_strikes_total")
        return wait

    @property
    def exhausted(self):
        """True once the exchange has burned every strike."""
        return self.strikes >= self.max_strikes

    def succeed(self):
        """Close the exchange; True when it recovered after retries."""
        recovered = self.strikes > 0
        if recovered:
            self.recoveries += 1
            if self.obs is not None:
                self.obs.count("watchdog_recoveries_total")
        self.strikes = 0
        return recovered

    def give_up(self):
        """Close the exchange as exhausted (degradation follows)."""
        self.exhaustions += 1
        strikes = self.strikes
        self.strikes = 0
        if self.obs is not None:
            self.obs.count("watchdog_exhaustions_total")
        return strikes

    def counters(self):
        return {
            "exchanges": self.exchanges,
            "strikes": self.total_strikes,
            "recoveries": self.recoveries,
            "exhaustions": self.exhaustions,
        }
