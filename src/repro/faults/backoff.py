"""Reusable deterministic backoff schedules (:class:`BackoffPolicy`).

PR 4's watchdog carried its bounded-exponential schedule as inline
constants; this module lifts it into one frozen, reusable policy object
shared by every retry path in the tree:

* the sim-clock :class:`~repro.faults.watchdog.Watchdog` (SW SVt ring
  exchanges) delegates its ``backoff_ns`` arithmetic here, byte-for-byte
  identical to the inline formula it replaces;
* the ``repro.serve`` worker supervisor reuses the same policy (at
  millisecond scale) for crash-retry pacing, with **fingerprint-seeded
  jitter**: the jitter for attempt *k* of request *key* derives from
  ``crc32(key:k)`` — fully deterministic, independent of scheduling,
  yet de-synchronized across distinct requests so a retry storm does
  not re-collide.

All arithmetic is integral; a policy makes no draws and holds no state.
Like the rest of ``repro.faults`` the schedule is as deterministic as
the faults that trigger it (``docs/robustness.md``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff: ``base * factor**attempt``, capped.

    ``delay_ns(attempt)`` reproduces the PR 4 watchdog schedule exactly
    (no jitter by default, so existing sim timings stay byte-identical).
    With ``jitter_tenths > 0`` and a ``key``, a deterministic jitter of
    up to ``delay * jitter_tenths / 10`` is added on top, derived from
    ``crc32(key:attempt)`` — the serve supervisor passes the request
    fingerprint so identical replays back off identically.
    """

    # paper: §5.2 — the first timeout covers several SMT-placement
    # channel round trips (repro.cpu.costs: ~100-200 ns one-way).
    base_ns: int = 2_000
    # synthetic: doubling per strike is the classic bounded-exponential
    # shape; integral so sim-clock charges stay exact.
    factor: int = 2
    # synthetic: caps an order of magnitude above the first timeout,
    # matching the PR 4 watchdog's inline 32_000 ns ceiling.
    cap_ns: int = 32_000
    # synthetic: five strikes exhaust a watchdog exchange (PR 4
    # default); the serve supervisor uses the same budget for retries.
    max_attempts: int = 5
    # synthetic: jitter defaults off so watchdog schedules (and every
    # committed sim artifact) stay byte-identical to PR 4.
    jitter_tenths: int = 0

    def __post_init__(self) -> None:
        if self.base_ns <= 0:
            raise ValueError(f"base_ns must be > 0: {self.base_ns}")
        if self.factor < 1:
            raise ValueError(f"factor must be >= 1: {self.factor}")
        if self.cap_ns < self.base_ns:
            raise ValueError("cap_ns must be >= base_ns")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1: {self.max_attempts}")
        if not 0 <= self.jitter_tenths <= 10:
            raise ValueError(
                f"jitter_tenths must be in [0, 10]: {self.jitter_tenths}")

    def delay_ns(self, attempt: int,
                 key: Optional[str] = None) -> int:
        """Backoff before retry ``attempt`` (0-based), bounded.

        Without ``key`` (or with jitter off) this is exactly
        ``min(base_ns * factor**attempt, cap_ns)`` — the watchdog
        formula.  With both, a deterministic jitter in
        ``[0, delay * jitter_tenths // 10]`` is added, so the total
        stays within ``cap_ns * (10 + jitter_tenths) / 10``.
        """
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0: {attempt}")
        delay = min(self.base_ns * self.factor ** attempt, self.cap_ns)
        if key is not None and self.jitter_tenths:
            span = delay * self.jitter_tenths // 10
            if span:
                digest = zlib.crc32(f"{key}:{attempt}".encode("utf-8"))
                delay += digest % (span + 1)
        return delay

    def schedule(self, key: Optional[str] = None) -> tuple:
        """Every delay of one full exchange, in order."""
        return tuple(self.delay_ns(attempt, key=key)
                     for attempt in range(self.max_attempts))

    def exhausted(self, attempts: int) -> bool:
        """True once ``attempts`` retries have burned the budget."""
        return attempts >= self.max_attempts
