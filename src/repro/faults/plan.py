"""Fault plans: what to break, how often, and with which seed.

A :class:`FaultPlan` is a frozen description of an adversarial
environment — per-fault-class rates plus one seed.  It contains **no**
mutable state and **no** randomness of its own: the paired
:class:`~repro.faults.injector.FaultInjector` forks one deterministic
stream (`repro.sim.rng`) per fault site from the plan's seed, so the
same plan replays bit-for-bit on any machine and at any ``--jobs``
count, and adding a new fault class never perturbs the draws of the
existing ones.

Fault taxonomy (see ``docs/robustness.md``):

* **ring faults** — drop / duplicate / delay / corrupt a ``Command`` in
  a SW SVt command ring (`repro.core.channel`);
* **lost wakeups** — the command lands in the ring but the parked
  waiter's mwait/mutex wake is lost (`repro.core.wait`);
* **spurious interrupts** — IPIs/vectors fired at arbitrary sim times
  (`repro.cpu.interrupts`), generalizing the §5.3 interleaving;
* **VMCS corruption** — flip or clear SVt/control fields
  (`repro.virt.vmcs`).
"""

from dataclasses import dataclass, field, replace


class FaultKind:
    """String constants naming every injectable fault class."""

    RING_DROP = "ring_drop"
    RING_DUPLICATE = "ring_duplicate"
    RING_DELAY = "ring_delay"
    RING_CORRUPT = "ring_corrupt"
    LOST_WAKEUP = "lost_wakeup"
    SPURIOUS_IRQ = "spurious_irq"
    VMCS_FLIP = "vmcs_flip"
    #: Serve-tier fault: kill a worker process mid-request (the serve
    #: supervisor consults the injector once per dispatch).
    WORKER_KILL = "worker_kill"

    #: Ring-level faults, decided per push.
    RING = (RING_DROP, RING_DUPLICATE, RING_DELAY, RING_CORRUPT,
            LOST_WAKEUP)
    ALL = RING + (SPURIOUS_IRQ, VMCS_FLIP, WORKER_KILL)


@dataclass(frozen=True)
class FaultPlan:
    """Frozen description of one adversarial environment.

    ``rate`` is the headline per-opportunity fault probability; each
    class can be overridden individually via ``rates``.  ``rate=0.0``
    (the default) is the contract-checked no-op plan: an injector built
    from it makes no draws and perturbs nothing, so the zero-fault cell
    of the chaos matrix reproduces seed results exactly.
    """

    seed: int = 0
    rate: float = 0.0
    #: Per-class overrides: {FaultKind.*: probability}.
    rates: tuple = field(default_factory=tuple)
    #: How long a delayed command stays invisible (ns, sim clock).
    delay_ns: int = 4_000
    #: Spurious interrupts per microsecond of scheduled horizon,
    #: scaled by the spurious rate.
    spurious_per_us: float = 0.05
    #: Upper bound of spurious interrupts per schedule call.
    max_spurious: int = 32

    def __post_init__(self):
        for name, value in (("rate", self.rate),):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        normalized = tuple(sorted(dict(self.rates).items()))
        for kind, value in normalized:
            if kind not in FaultKind.ALL:
                raise ValueError(f"unknown fault kind {kind!r}")
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"rate for {kind} must be in [0, 1]: {value}"
                )
        object.__setattr__(self, "rates", normalized)
        if self.delay_ns < 0:
            raise ValueError(f"delay_ns must be >= 0: {self.delay_ns}")

    def rate_for(self, kind):
        """Effective probability for one fault class."""
        if kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {kind!r}")
        return dict(self.rates).get(kind, self.rate)

    @property
    def is_zero(self):
        """True when no fault class can ever fire (the no-op plan)."""
        return all(self.rate_for(kind) == 0.0 for kind in FaultKind.ALL)

    def with_seed(self, seed):
        """Same plan, different stream seed (one per chaos cell)."""
        return replace(self, seed=seed)

    def to_dict(self):
        return {
            "seed": self.seed,
            "rate": self.rate,
            "rates": dict(self.rates),
            "delay_ns": self.delay_ns,
            "spurious_per_us": self.spurious_per_us,
            "max_spurious": self.max_spurious,
        }
