"""The seeded fault injector: one decision engine for every fault site.

All randomness flows through :class:`repro.sim.rng.DeterministicRng`
streams forked from the plan's seed — one independent stream per fault
*site* (per ring, per interrupt controller, per VMCS), keyed by a
stable label.  Two properties follow:

* a fixed plan replays bit-for-bit, independent of process count or
  scheduling (the streams are derived from ``crc32(seed:label)``, never
  from call interleaving across sites);
* the zero-rate plan makes **no draws at all** (`decide` short-circuits
  on ``plan.is_zero``), so enabling the fault layer with rate 0.0 is
  byte-identical to not wiring it in.

The injector is also the resilience scoreboard: every injection is
counted per :class:`~repro.faults.plan.FaultKind`, and the recovery
machinery (watchdog retries, VMCS scrubbing, degradation) reports each
fault's final outcome back via :meth:`resolve_ring` /
:meth:`note_recovered` / :meth:`note_degraded` /
:meth:`note_deadlocked`.  Counters mirror into `repro.obs` when an
observer is attached (``faults_injected_total`` and friends).
"""

from dataclasses import dataclass

from repro.faults.plan import FaultKind, FaultPlan
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class VmcsCorruption:
    """Record of one injected VMCS fault (for detection/repair)."""

    vmcs_name: str
    fault: str          # "flip" | "clear"
    field: str
    old_value: int
    new_value: int


class FaultInjector:
    """Plan-driven fault decisions plus the resilience scoreboard."""

    def __init__(self, plan=None, obs=None):
        self.plan = plan or FaultPlan()
        self.obs = obs
        self._streams = {}
        #: Ring faults injected but not yet resolved, per ring name.
        self._open_ring_faults = {}
        #: Unrepaired VMCS corruptions, per VMCS name.
        self._open_vmcs = {}
        # -- scoreboard ---------------------------------------------------
        self.injected = {}     # kind -> count
        self.recovered = {}    # kind -> count
        self.degraded = 0      # SW SVt -> BASELINE downgrades
        self.deadlocked = 0    # runs that ended in a DeadlockReport

    # -- streams ---------------------------------------------------------

    def stream(self, label):
        """The per-site deterministic stream named ``label``."""
        rng = self._streams.get(label)
        if rng is None:
            rng = DeterministicRng(self.plan.seed).fork(label)
            self._streams[label] = rng
        return rng

    # -- bookkeeping ------------------------------------------------------

    def _count_injected(self, kind, n=1):
        self.injected[kind] = self.injected.get(kind, 0) + n
        if self.obs is not None:
            self.obs.count("faults_injected_total", n, kind=kind)

    def note_injected(self, kind, n=1):
        """Public injection counter for scenario-driven faults (the
        injector did not draw them itself)."""
        self._count_injected(kind, n)

    def note_recovered(self, kind, n=1):
        self.recovered[kind] = self.recovered.get(kind, 0) + n
        if self.obs is not None:
            self.obs.count("faults_recovered_total", n, kind=kind)

    def note_degraded(self):
        self.degraded += 1
        if self.obs is not None:
            self.obs.count("svt_degraded_total")

    def note_deadlocked(self):
        self.deadlocked += 1
        if self.obs is not None:
            self.obs.count("deadlocks_total")

    @property
    def total_injected(self):
        return sum(self.injected.values())

    @property
    def total_recovered(self):
        return sum(self.recovered.values())

    def counters(self):
        """Plain-dict scoreboard (JSON-ready, deterministic order)."""
        return {
            "injected": dict(sorted(self.injected.items())),
            "recovered": dict(sorted(self.recovered.items())),
            "degraded": self.degraded,
            "deadlocked": self.deadlocked,
        }

    # -- ring faults ------------------------------------------------------

    def ring_fault(self, ring_name):
        """Decide the fault (if any) for one command push.

        Returns a :class:`FaultKind.RING` member or ``None``.  One draw
        per push: a uniform sample walked through the cumulative
        per-class rates in fixed ``FaultKind.RING`` order.
        """
        if self.plan.is_zero:
            return None
        draw = self.stream(f"ring:{ring_name}").random()
        edge = 0.0
        for kind in FaultKind.RING:
            edge += self.plan.rate_for(kind)
            if draw < edge:
                self._count_injected(kind)
                self._open_ring_faults.setdefault(ring_name,
                                                  []).append(kind)
                return kind
        return None

    def open_ring_faults(self, ring_name):
        """Injected-but-unresolved faults on one ring (oldest first)."""
        return list(self._open_ring_faults.get(ring_name, []))

    def resolve_ring(self, ring_name, outcome):
        """Close every open fault on a ring as ``"recovered"`` or
        ``"degraded"`` (degraded faults are *not* counted recovered —
        the downgrade itself is recorded via :meth:`note_degraded`)."""
        open_faults = self._open_ring_faults.pop(ring_name, [])
        if outcome == "recovered":
            for kind in open_faults:
                self.note_recovered(kind)
        elif outcome != "degraded":
            raise ValueError(f"unknown ring outcome {outcome!r}")
        return len(open_faults)

    def delay_ns(self):
        """Invisibility window for a delayed command."""
        return self.plan.delay_ns

    def corrupt_payload(self, payload, ring_name):
        """Deterministically scramble one payload entry in place.

        Returns the corrupted key.  The command's seal (checksum) was
        computed before this mutation, so receivers detect the damage
        via :meth:`repro.core.channel.Command.verify`.
        """
        rng = self.stream(f"corrupt:{ring_name}")
        if payload:
            key = sorted(payload)[rng.randint(0, len(payload) - 1)]
        else:
            key = "corrupted"
        payload[key] = rng.randint(0, 2 ** 32 - 1)
        return key

    # -- spurious interrupts ----------------------------------------------

    def schedule_spurious(self, interrupts, horizon_ns, contexts,
                          vectors=None):
        """Schedule plan-driven spurious interrupts over a horizon.

        Generalizes the §5.3 scenario: instead of one scripted IPI, a
        rate-scaled number of interrupts land at arbitrary (seeded) sim
        times on arbitrary contexts.  Returns the number scheduled.
        """
        rate = self.plan.rate_for(FaultKind.SPURIOUS_IRQ)
        if rate == 0.0 or horizon_ns <= 0 or not contexts:
            return 0
        rng = self.stream("spurious")
        expected = (horizon_ns / 1000.0) * self.plan.spurious_per_us * rate
        count = int(expected)
        if rng.bernoulli(expected - count):
            count += 1
        count = min(count, self.plan.max_spurious)
        from repro.cpu.interrupts import Vectors

        vectors = vectors or (Vectors.SPURIOUS, Vectors.IPI_RESCHEDULE,
                              Vectors.IPI_TLB_SHOOTDOWN)
        for _ in range(count):
            at = rng.randint(0, max(0, horizon_ns - 1))
            context = contexts[rng.randint(0, len(contexts) - 1)]
            vector = vectors[rng.randint(0, len(vectors) - 1)]
            interrupts.inject_spurious(context, vector, delay=at)
            self._count_injected(FaultKind.SPURIOUS_IRQ)
        return count

    # -- worker kills (serve supervisor) ----------------------------------

    def worker_kill(self, worker_name):
        """Decide whether to kill worker ``worker_name`` this dispatch.

        One bernoulli draw per consultation on the worker's own stream,
        so the kill schedule is a pure function of (seed, worker name,
        consultation index) — independent of request arrival order.
        The caller (the serve supervisor) counts the kill as recovered
        via :meth:`note_recovered` once the retried request completes.
        """
        rate = self.plan.rate_for(FaultKind.WORKER_KILL)
        if rate == 0.0:
            return False
        if not self.stream(f"worker:{worker_name}").bernoulli(rate):
            return False
        self._count_injected(FaultKind.WORKER_KILL)
        return True

    # -- VMCS corruption --------------------------------------------------

    #: Scalar fields safe to flip (never dict-valued exit info).
    VMCS_CANDIDATES = (
        "svt_visor", "svt_vm", "svt_nested",
        "tsc_offset", "exception_bitmap",
        "pin_based_controls", "proc_based_controls",
    )

    def corrupt_vmcs(self, vmcs):
        """Maybe flip or clear one VMCS field; returns the corruption
        record (or ``None`` when the draw says no fault)."""
        if self.plan.rate_for(FaultKind.VMCS_FLIP) == 0.0:
            return None
        rng = self.stream(f"vmcs:{vmcs.name}")
        if not rng.bernoulli(self.plan.rate_for(FaultKind.VMCS_FLIP)):
            return None
        candidates = self.VMCS_CANDIDATES
        name = candidates[rng.randint(0, len(candidates) - 1)]
        old = vmcs.read(name)
        if rng.bernoulli(0.5):
            fault, new = "flip", old ^ (1 << rng.randint(0, 31))
        else:
            fault, new = "clear", 0
        if new == old:          # clearing an already-zero field
            new = old ^ 1
            fault = "flip"
        vmcs.write(name, new, force=True)
        self._count_injected(FaultKind.VMCS_FLIP)
        self._open_vmcs[vmcs.name] = self._open_vmcs.get(vmcs.name, 0) + 1
        return VmcsCorruption(vmcs_name=vmcs.name, fault=fault,
                              field=name, old_value=old, new_value=new)

    def resolve_vmcs(self, vmcs_name):
        """Close every open corruption on one VMCS as recovered (the
        scrubber restored a clean snapshot); returns how many."""
        count = self._open_vmcs.pop(vmcs_name, 0)
        if count:
            self.note_recovered(FaultKind.VMCS_FLIP, count)
        return count
