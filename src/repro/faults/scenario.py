"""Chaos scenarios: end-to-end fault drills over the simulated stack.

Three layers, composable:

* :class:`VmcsScrubber` — detect-and-repair for injected VMCS
  corruption (diff against a clean snapshot, restore, count recovery);
* :class:`GeneralizedDeadlockScenario` — the §5.3 interleaving with the
  scripted IPI replaced by *plan-driven* spurious IPIs at seeded sim
  times, runnable with or without watchdog recovery.  Without a
  watchdog it reproduces the deadlock and captures the structured
  :class:`~repro.sim.engine.DeadlockReport`; with one, every blocked
  exchange either recovers (SVT_BLOCKED-style injection after backoff)
  or degrades, never hangs;
* :func:`run_chaos_cell` — one cell of the resilience matrix: a nested
  cpuid loop on a :class:`~repro.core.system.Machine` with the fault
  plan armed (ring faults under SW SVt, spurious interrupts and VMCS
  corruption everywhere), returning the injection/recovery scoreboard.
"""

from dataclasses import dataclass, field

from repro.core.channel import PairedChannels
from repro.errors import DeadlockError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan
from repro.sim.engine import Simulator

#: Livelock budget for chaos runs: generous (a chaos cell fires a few
#: hundred events) but finite, so a self-rescheduling bug is loud.
CHAOS_MAX_EVENTS = 100_000


class VmcsScrubber:
    """Detect-and-repair for VMCS corruption faults.

    Snapshots the clean state once (re-arm after legitimate writes with
    :meth:`rearm`); :meth:`scrub` diffs live values against the
    snapshot, restores any damage, and reports the repair back to the
    injector's scoreboard.
    """

    def __init__(self, vmcs, faults=None):
        self.vmcs = vmcs
        self.faults = faults
        self._clean = vmcs.snapshot()
        #: One tuple of repaired field names per scrub that found damage.
        self.repairs = []

    def rearm(self):
        """Adopt the current values as the new clean reference."""
        self._clean = self.vmcs.snapshot()

    def scrub(self):
        """Repair any divergence from the clean snapshot; returns the
        repaired field names (empty when the VMCS was intact)."""
        changed = self.vmcs.restore(self._clean) if (
            self.vmcs.diff(self._clean)) else []
        if changed:
            self.repairs.append(tuple(changed))
            if self.faults is not None:
                self.faults.resolve_vmcs(self.vmcs.name)
        return changed


@dataclass
class GeneralizedDeadlockResult:
    """Outcome of one :class:`GeneralizedDeadlockScenario` run."""

    completed: bool
    degraded: bool
    finished_at_ns: int
    ipis_injected: int
    ipis_recovered: int
    watchdog_strikes: int
    timeline: list = field(default_factory=list)
    #: Structured report when the run deadlocked (None otherwise).
    report: object = None


class GeneralizedDeadlockScenario:
    """§5.3 generalized: seeded spurious IPIs instead of one scripted one.

    The SVt-thread in L1_1 is handling a CMD_VM_TRAP when kernel
    threads preempt it at *plan-seeded* times, each IPI-ing the L1_0
    vCPU and synchronously waiting.  L0_0 blocks on CMD_VM_RESUME:

    * ``watchdog=None`` — L0_0 waits blindly; the first preemption
      wedges the stack and the run returns a captured
      :class:`~repro.sim.engine.DeadlockReport` naming the waiters.
    * with a :class:`~repro.faults.watchdog.Watchdog` — each backoff
      expiry re-checks for interrupts targeting parked vCPUs and
      injects the SVT_BLOCKED trap (the paper's fix, now driven by the
      recovery machinery instead of a scripted poll); exhaustion
      degrades instead of hanging.
    """

    HANDLING_NS = 5_000
    ACK_NS = 400
    RESCHEDULE_NS = 100

    def __init__(self, plan=None, watchdog=None, obs=None):
        self.plan = plan or FaultPlan()
        self.injector = FaultInjector(self.plan, obs=obs)
        self.watchdog = watchdog
        self.sim = Simulator()
        self.obs = obs
        if obs is not None:
            obs.bind(self.sim)
            self.sim.obs = obs
        self.channels = PairedChannels("chaos.vcpu0", obs=obs,
                                       clock=lambda: self.sim.now)
        self.timeline = []
        self._svt_preempted = False
        self._svt_remaining = self.HANDLING_NS
        self._handling_since = 0
        self._ipi_pending = False
        self._completed = False
        self._degraded = False
        self._recovered = 0
        self._completion_handle = None

    def _log(self, message):
        self.timeline.append((self.sim.now, message))

    def _ipi_times(self):
        """Seeded preemption times within the handling window."""
        rate = self.plan.rate_for(FaultKind.SPURIOUS_IRQ)
        if rate == 0.0:
            return []
        rng = self.injector.stream("deadlock:ipis")
        count = max(1, min(self.plan.max_spurious,
                           int(round(rate * 4))))
        return sorted(rng.randint(1, self.HANDLING_NS - 1)
                      for _ in range(count))

    def run(self):
        self.channels.send_trap({"exit_reason": "EPT_MISCONFIG"},
                                now=self.sim.now)
        self.channels.take_request()
        self._log("L0_0 sent CMD_VM_TRAP, waiting for CMD_VM_RESUME")
        self.sim.park("L0_0", waits_on=self.channels.response.name,
                      blocked_on="L1_1.svt")
        self._completion_handle = self.sim.after(
            self.HANDLING_NS, self._svt_thread_finishes
        )
        ipi_times = self._ipi_times()
        for when in ipi_times:
            self.sim.at(when, self._preempt)
        if self.watchdog is not None:
            self.watchdog.start()
            self.sim.after(self.watchdog.backoff_ns(0),
                           self._watchdog_fires)
        report = None
        try:
            self.sim.run_until_idle(max_events=CHAOS_MAX_EVENTS)
        except DeadlockError as err:
            report = err.report
            self.injector.note_deadlocked()
        return GeneralizedDeadlockResult(
            completed=self._completed,
            degraded=self._degraded,
            finished_at_ns=self.sim.now,
            ipis_injected=len(ipi_times),
            ipis_recovered=self._recovered,
            watchdog_strikes=(self.watchdog.total_strikes
                              if self.watchdog is not None else 0),
            timeline=list(self.timeline),
            report=report,
        )

    # -- the adversary -----------------------------------------------------

    def _preempt(self):
        if self._completed or self._degraded or self._svt_preempted:
            return
        self._svt_preempted = True
        self._svt_remaining = max(
            1, self._svt_remaining - (self.sim.now - self._handling_since)
        )
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None
        self.injector.note_injected(FaultKind.SPURIOUS_IRQ)
        self._ipi_pending = True
        self._log("kernel thread preempts SVt-thread, IPIs L1_0, waits")
        self.sim.park("L1_1.svt", waits_on="cpu (preempted)",
                      blocked_on="L1_1.kernel")
        self.sim.park("L1_1.kernel", waits_on="IPI ack from L1_0",
                      blocked_on="L1_0")
        self.sim.park("L1_0", waits_on="being scheduled",
                      blocked_on="L0_0")

    # -- the recovery machinery --------------------------------------------

    def _watchdog_fires(self):
        """One backoff expiry of L0_0's guarded wait."""
        if self._completed or self._degraded:
            return
        if self.watchdog.exhausted:
            strikes = self.watchdog.give_up()
            self._degraded = True
            self.injector.note_degraded()
            self._log(f"watchdog exhausted after {strikes} strikes; "
                      "degrading to BASELINE switch path")
            # Abandoning the reflection path unblocks everyone: L0_0
            # handles the exit itself; the SVt machinery is retired.
            for name in ("L0_0", "L1_0", "L1_1.kernel", "L1_1.svt"):
                self.sim.unpark(name)
            return
        self.watchdog.strike()
        if self._ipi_pending:
            self._ipi_pending = False
            self._log("watchdog check: pending IPI for parked L1_0; "
                      "injecting SVT_BLOCKED")
            self.sim.after(self.ACK_NS, self._l10_acks_ipi)
        self.sim.after(self.watchdog.backoff_ns(self.watchdog.strikes),
                       self._watchdog_fires)

    def _l10_acks_ipi(self):
        self._recovered += 1
        self.injector.note_recovered(FaultKind.SPURIOUS_IRQ)
        self._log("L1_0 handled the IPI and yielded back")
        self.sim.unpark("L1_0")
        self.sim.unpark("L1_1.kernel")
        self.sim.after(self.RESCHEDULE_NS, self._svt_thread_resumes)

    def _svt_thread_resumes(self):
        if self._completed or self._degraded:
            return
        self._svt_preempted = False
        self._handling_since = self.sim.now
        self.sim.unpark("L1_1.svt")
        self._log("SVt-thread rescheduled, resumes trap handling")
        self._completion_handle = self.sim.after(
            max(1, self._svt_remaining), self._svt_thread_finishes
        )

    def _svt_thread_finishes(self):
        if self._svt_preempted or self._degraded:
            return
        self.channels.send_resume({"regs": {}}, now=self.sim.now)
        self.channels.take_response()
        self._completed = True
        if self.watchdog is not None:
            self.watchdog.succeed()
        self.sim.unpark("L0_0")
        self._log("SVt-thread sent CMD_VM_RESUME; L0_0 resumes L2")


# ---------------------------------------------------------------------------
# The resilience-matrix cell
# ---------------------------------------------------------------------------

def run_chaos_cell(mode, plan, iterations=40, watchdog=None):
    """One chaos cell: a nested cpuid loop under an armed fault plan.

    Ring faults bite only under SW SVt (the rings exist only there);
    spurious interrupts and VMCS corruption apply to every mode.
    Returns a plain dict (JSON-ready) with the resilience scoreboard.
    """
    from repro.core.system import Machine
    from repro.cpu import isa

    machine = Machine(mode=mode, faults=plan, watchdog=watchdog)
    injector = machine.faults
    scrubber = VmcsScrubber(machine.stack.vmcs02, faults=injector)
    # The adversary's interrupt barrage over the expected run horizon.
    horizon_ns = max(10_000, iterations * 12_000)
    contexts = list(range(3 if mode == "hw_svt" else 2))
    injector.schedule_spurious(machine.interrupts, horizon_ns, contexts)

    machine.run_program(isa.Program([isa.cpuid()]))      # warmup
    deadlock_report = None
    completed = 0
    start = machine.sim.now
    end = start
    try:
        for _ in range(iterations):
            injector.corrupt_vmcs(machine.stack.vmcs02)
            scrubber.scrub()
            machine.run_program(isa.Program([isa.cpuid()]))
            completed += 1
        machine.run_until_idle(max_events=CHAOS_MAX_EVENTS)
        # Timing stops here: the drain below only flushes interrupts
        # that arrived after the last measured instruction.
        end = machine.sim.now
        machine.run_program(isa.Program([isa.alu(100)]))
    except DeadlockError as err:
        end = machine.sim.now
        injector.note_deadlocked()
        deadlock_report = err.report.to_dict() if err.report else None
    elapsed = end - start

    spurious_seen = injector.injected.get(FaultKind.SPURIOUS_IRQ, 0)
    if deadlock_report is None and spurious_seen:
        # The run absorbed every spurious interrupt through the normal
        # exit path — that *is* the recovery for this fault class.
        already = injector.recovered.get(FaultKind.SPURIOUS_IRQ, 0)
        injector.note_recovered(FaultKind.SPURIOUS_IRQ,
                                spurious_seen - already)

    engine = machine.engine
    return {
        "mode": mode,
        "plan": plan.to_dict(),
        "iterations": iterations,
        "completed_iterations": completed,
        "elapsed_ns": elapsed,
        "ns_per_op": (elapsed / completed) if completed else 0.0,
        "counters": injector.counters(),
        "injected_total": injector.total_injected,
        "recovered_total": injector.total_recovered,
        "degraded": getattr(engine, "degraded", False),
        "degrade_events": [event.to_dict() for event in
                           getattr(engine, "degrade_events", [])],
        "watchdog": (machine.watchdog.counters()
                     if machine.watchdog is not None else None),
        "deadlock": deadlock_report,
        "retransmissions": (machine.channels.retransmissions
                            if machine.channels is not None else 0),
    }
