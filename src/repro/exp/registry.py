"""Experiment base class and decorator-based registry.

Every paper artifact (tables, figures, section studies, ablations) is an
:class:`Experiment` subclass registered with :func:`register`.  The CLI,
the parallel runner, the cache and the benchmarks all look experiments up
here, so an experiment added once is automatically part of
``python -m repro all``, ``list``, the JSON output and the smoke run —
nothing can be silently dropped from ``all`` again.

An experiment declares:

* ``name`` / ``title`` / ``description`` — identity and one-line docs.
* ``defaults`` — its parameter schema as ``{name: default}``; callers may
  only override declared parameters (typos fail loudly).
* ``smoke`` — parameter overrides for fast smoke runs.
* ``cells(params)`` — the independent units of work (mode, sweep point,
  seed...); the runner fans cells out across processes.
* ``run_cell(cell, params)`` — compute one cell; must return plain
  picklable data and must not share simulator state with other cells.
* ``merge(params, payloads)`` — assemble the cells (always presented in
  ``cells()`` order, regardless of completion order) into a
  :class:`~repro.exp.result.Result`.
"""

from dataclasses import dataclass, field

from repro.errors import ConfigError

_REGISTRY = {}
_LOADED = False


@dataclass(frozen=True)
class RunContext:
    """What an experiment run sees: its resolved parameters."""

    params: tuple = ()

    @classmethod
    def create(cls, params=None):
        params = params or {}
        return cls(params=tuple(sorted(params.items())))

    @property
    def params_dict(self):
        return dict(self.params)

    def get(self, key, default=None):
        return dict(self.params).get(key, default)

    def __getitem__(self, key):
        return dict(self.params)[key]


class Experiment:
    """Base class for registered experiments."""

    name = None
    title = ""
    description = ""
    defaults = {}
    smoke = {}

    # -- parameters ------------------------------------------------------

    def resolve(self, overrides=None, strict=False):
        """Defaults merged with ``overrides``.

        Unknown override keys are ignored unless ``strict`` (the CLI
        passes one shared namespace to every experiment; tests pass
        ``strict=True`` to catch typos).
        """
        params = dict(self.defaults)
        for key, value in (overrides or {}).items():
            if key in self.defaults:
                if value is not None:
                    params[key] = value
            elif strict:
                raise ConfigError(
                    f"experiment {self.name!r} has no parameter {key!r}"
                )
        return params

    # -- execution -------------------------------------------------------

    def cells(self, params):
        """Independent work units; override to enable parallel fan-out."""
        return ("all",)

    def run_cell(self, cell, params):
        raise NotImplementedError

    def merge(self, params, payloads):
        raise NotImplementedError

    def run(self, ctx):
        """Serial reference path: run every cell in order, then merge."""
        params = ctx.params_dict
        payloads = {
            cell: self.run_cell(cell, params)
            for cell in self.cells(params)
        }
        return self.merge(params, payloads)


def register(cls):
    """Class decorator: instantiate and add to the registry."""
    if not issubclass(cls, Experiment):
        raise ConfigError(f"{cls!r} is not an Experiment subclass")
    if not cls.name:
        raise ConfigError(f"experiment class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"duplicate experiment name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def unregister(name):
    """Remove an experiment (test hook)."""
    _REGISTRY.pop(name, None)


def ensure_loaded():
    """Import the bundled experiment modules exactly once."""
    global _LOADED
    if not _LOADED:
        _LOADED = True
        import repro.exp.experiments  # noqa: F401  (side effect: register)


def get(name):
    """Look an experiment up by name."""
    ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {name!r}; known: {', '.join(names())}"
        ) from None


def names():
    """Sorted names of every registered experiment."""
    ensure_loaded()
    return sorted(_REGISTRY)


def experiments():
    """All registered experiments, sorted by name."""
    ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
