"""Experiment base class and decorator-based registry.

Every paper artifact (tables, figures, section studies, ablations) is an
:class:`Experiment` subclass registered with :func:`register`.  The CLI,
the parallel runner, the cache and the benchmarks all look experiments up
here, so an experiment added once is automatically part of
``python -m repro all``, ``list``, the JSON output and the smoke run —
nothing can be silently dropped from ``all`` again.

An experiment declares:

* ``name`` / ``title`` / ``description`` — identity and one-line docs.
* ``defaults`` — its parameter schema as ``{name: default}``; callers may
  only override declared parameters (typos fail loudly).
* ``smoke`` — parameter overrides for fast smoke runs.
* ``cells(params)`` — the independent units of work (mode, sweep point,
  seed...); the runner fans cells out across processes.
* ``run_cell(cell, params)`` — compute one cell; must return plain
  picklable data and must not share simulator state with other cells.
* ``merge(params, payloads)`` — assemble the cells (always presented in
  ``cells()`` order, regardless of completion order) into a
  :class:`~repro.exp.result.Result`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, ClassVar, Mapping, Optional, TypeVar

from repro.cpu import costmodels
from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.exp.result import Result

_REGISTRY: dict[str, "Experiment"] = {}
_LOADED = False

#: Parameters *every* experiment accepts without declaring them.  The
#: runner, the serial reference path and the bench harness install
#: ``cost_model`` as the ambient default
#: (:func:`repro.cpu.costmodels.use_default`) around each cell, so any
#: machine a cell builds without an explicit ``costs=`` prices under
#: the selected model.
UNIVERSAL_DEFAULTS: dict[str, Any] = {
    "cost_model": costmodels.DEFAULT_MODEL,
}


@dataclass(frozen=True)
class RunContext:
    """What an experiment run sees: its resolved parameters."""

    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(cls, params: Optional[Mapping[str, Any]] = None) \
            -> RunContext:
        params = params or {}
        return cls(params=tuple(sorted(params.items())))

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def get(self, key: str, default: Any = None) -> Any:
        return dict(self.params).get(key, default)

    def __getitem__(self, key: str) -> Any:
        return dict(self.params)[key]


class Experiment:
    """Base class for registered experiments."""

    name: ClassVar[Optional[str]] = None
    title: ClassVar[str] = ""
    description: ClassVar[str] = ""
    defaults: ClassVar[dict[str, Any]] = {}
    smoke: ClassVar[dict[str, Any]] = {}

    # -- parameters ------------------------------------------------------

    def all_defaults(self) -> dict[str, Any]:
        """:data:`UNIVERSAL_DEFAULTS` merged under ``defaults``."""
        return {**UNIVERSAL_DEFAULTS, **self.defaults}

    def resolve(self, overrides: Optional[Mapping[str, Any]] = None,
                strict: bool = False) -> dict[str, Any]:
        """Defaults (universal and declared) merged with ``overrides``.

        Unknown override keys are ignored unless ``strict`` (the CLI
        passes one shared namespace to every experiment; tests pass
        ``strict=True`` to catch typos).
        """
        params = self.all_defaults()
        for key, value in (overrides or {}).items():
            if key in params:
                if value is not None:
                    params[key] = value
            elif strict:
                raise ConfigError(
                    f"experiment {self.name!r} has no parameter {key!r}"
                )
        return params

    # -- execution -------------------------------------------------------

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        """Independent work units; override to enable parallel fan-out."""
        return ("all",)

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        raise NotImplementedError

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        raise NotImplementedError

    def run(self, ctx: RunContext) -> Result:
        """Serial reference path: run every cell in order, then merge."""
        params = ctx.params_dict
        with costmodels.use_default(params.get("cost_model")):
            payloads = {
                cell: self.run_cell(cell, params)
                for cell in self.cells(params)
            }
            return self.merge(params, payloads)


_ExperimentClass = TypeVar("_ExperimentClass", bound="type[Experiment]")


def register(cls: _ExperimentClass) -> _ExperimentClass:
    """Class decorator: instantiate and add to the registry."""
    if not issubclass(cls, Experiment):
        raise ConfigError(f"{cls!r} is not an Experiment subclass")
    if not cls.name:
        raise ConfigError(f"experiment class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"duplicate experiment name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def unregister(name: str) -> None:
    """Remove an experiment (test hook)."""
    _REGISTRY.pop(name, None)


def ensure_loaded() -> None:
    """Import the bundled experiment modules exactly once."""
    # Import-once latch, not cell state: workers re-run it idempotently
    # after fork/spawn, so losing the write is harmless.
    global _LOADED  # svtlint: disable=SVT003
    if not _LOADED:
        _LOADED = True
        import repro.exp.experiments  # noqa: F401  (side effect: register)


def get(name: str) -> Experiment:
    """Look an experiment up by name."""
    ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {name!r}; known: {', '.join(names())}"
        ) from None


def names() -> list[str]:
    """Sorted names of every registered experiment."""
    ensure_loaded()
    return sorted(_REGISTRY)


def experiments() -> list[Experiment]:
    """All registered experiments, sorted by name."""
    ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
