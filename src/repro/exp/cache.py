"""On-disk result cache under ``results/cache/``.

``python -m repro all`` re-runs only what changed: a cached result is
reused when the *key* matches, and the key folds in everything a result
depends on —

* the experiment name,
* the resolved parameters (canonical JSON),
* the cost-model fingerprint (any change to a default timing constant
  invalidates every cached result), plus the ``model_id`` and constants
  digest of the model the run actually prices under (the
  ``cost_model`` parameter resolved through
  :mod:`repro.cpu.costmodels`),
* the code fingerprint (a content hash over every ``repro`` source
  module — edit any simulator file and the cache misses),
* the kernel tag (engine generation + active simulation kernel, see
  :mod:`repro.sim.kernel`) — results computed by a pre-segment engine
  can never be served after an engine change, and ``segment`` /
  ``legacy`` runs never share entries even though they are
  byte-identical by contract.

Entries are one JSON file per (experiment, key) holding the serialized
:class:`~repro.exp.result.Result` plus the key material for debugging.
Corrupt or stale-schema entries read as misses.

**Negative entries.**  A request that failed with a *deterministic*
simulation error (a ``ReproError``: bad config, modelled deadlock, …)
may be remembered via :meth:`ResultCache.store_error` so a long-lived
service does not recompute a failure per retry.  Error sentinels carry
a distinct schema (``repro-cache-error/1``) at the same path a Result
would use, so :meth:`ResultCache.load` — whose schema check rejects
them — can **never** serve one as a Result; only the explicit
:meth:`ResultCache.load_error` probe sees them, and a later
:meth:`ResultCache.store` of a real Result overwrites the sentinel.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.cpu import costmodels
from repro.cpu.costs import CostModel
from repro.exp.result import Result, canonical_json
from repro.sim.kernel import kernel_tag

SCHEMA = "repro-cache/1"
#: Negative entries (deterministic failures) — never a Result.
ERROR_SCHEMA = "repro-cache-error/1"


def default_cache_dir() -> Path:
    """``<repo>/results/cache`` next to the installed package."""
    import repro

    return Path(repro.__file__).resolve().parents[2] / "results" / "cache"


def cost_model_fingerprint(model: Optional[CostModel] = None) -> str:
    """Digest of every timing constant of ``model`` (the registry's
    default when omitted).  ``model_id`` is a field, so two models with
    identical constants but different names fingerprint apart."""
    doc = dataclasses.asdict(costmodels.resolve(model))
    payload = json.dumps(doc, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def registry_fingerprint() -> str:
    """Digest over *every* registered model — any constant of any
    model, or the registered set itself, changing invalidates keys
    that fold this in."""
    doc = {name: dataclasses.asdict(costmodels.get_model(name))
           for name in costmodels.model_names()}
    payload = json.dumps(doc, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Content hash over every ``repro`` source file (path + bytes)."""
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


class ResultCache:
    """Content-addressed result store."""

    def __init__(self, root: Union[str, Path, None] = None,
                 cost_fingerprint: Optional[str] = None,
                 code_version: Optional[str] = None) -> None:
        self.root = Path(root) if root else default_cache_dir()
        self._cost_fp = cost_fingerprint or cost_model_fingerprint()
        self._code_fp = code_version or code_fingerprint()

    # -- keys ------------------------------------------------------------

    def key(self, name: str, params: Mapping[str, Any]) -> str:
        model = costmodels.resolve(params.get("cost_model"))
        material = json.dumps(
            {
                "experiment": name,
                "params": dict(params),
                "cost_model": self._cost_fp,
                # The model the run actually prices under: its stable
                # id plus a digest of its constants, so renaming a
                # model and perturbing one both miss.
                "cost_model_id": model.model_id,
                "cost_model_fp": cost_model_fingerprint(model),
                "code": self._code_fp,
                "kernel": kernel_tag(),
            },
            sort_keys=True,
        ).encode()
        return hashlib.sha256(material).hexdigest()[:24]

    def path_for(self, name: str, params: Mapping[str, Any]) -> Path:
        return self.root / f"{name}-{self.key(name, params)}.json"

    # -- access ----------------------------------------------------------

    def load(self, name: str,
             params: Mapping[str, Any]) -> Optional[Result]:
        """Cached :class:`Result` for this key, or ``None`` on a miss."""
        path = self.path_for(name, params)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if doc.get("schema") != SCHEMA or doc.get("key") != self.key(
                name, params):
            return None
        try:
            return Result.from_dict(doc["result"])
        except Exception:
            return None

    def store(self, name: str, params: Mapping[str, Any],
              result: Result) -> Path:
        """Write one entry; returns its path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(name, params)
        doc = {
            "schema": SCHEMA,
            "experiment": name,
            "key": self.key(name, params),
            "params": dict(params),
            "cost_model_id":
                costmodels.resolve(params.get("cost_model")).model_id,
            "cost_model_fingerprint": self._cost_fp,
            "code_fingerprint": self._code_fp,
            "kernel": kernel_tag(),
            "result": result.to_dict(),
        }
        # svtlint: disable=SVT008 — deliberate: the env-derived kernel
        # tag keys the entry so kernels never alias; both kernels are
        # proven byte-identical (tests/exp/test_kernel_differential),
        # so no entropy reaches Result bytes.
        path.write_text(canonical_json(doc))
        return path

    # -- negative entries -------------------------------------------------

    def store_error(self, name: str, params: Mapping[str, Any],
                    error: str) -> Path:
        """Remember a deterministic failure for this key.

        The sentinel lives at the same path the Result would, under the
        distinct :data:`ERROR_SCHEMA`, so :meth:`load` reads it as a
        miss (schema mismatch) and can never serve it as a Result.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(name, params)
        doc = {
            "schema": ERROR_SCHEMA,
            "experiment": name,
            "key": self.key(name, params),
            "params": dict(params),
            "error": error,
        }
        # svtlint: disable=SVT008 — deliberate: same env-derived key
        # scheme as store(); the sentinel carries only the error text,
        # never Result bytes, and load() rejects it by schema.
        path.write_text(canonical_json(doc))
        return path

    def load_error(self, name: str,
                   params: Mapping[str, Any]) -> Optional[str]:
        """The remembered error message for this key, or ``None``."""
        path = self.path_for(name, params)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if doc.get("schema") != ERROR_SCHEMA or doc.get("key") != self.key(
                name, params):
            return None
        error = doc.get("error")
        return error if isinstance(error, str) else None

    def clear(self, name: Optional[str] = None) -> int:
        """Drop every entry (or just one experiment's)."""
        if not self.root.is_dir():
            return 0
        pattern = f"{name}-*.json" if name else "*.json"
        removed = 0
        for path in self.root.glob(pattern):
            path.unlink()
            removed += 1
        return removed
