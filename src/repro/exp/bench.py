"""`repro bench` — the wall-clock perf-regression harness.

Times every registered experiment under the segment (fast-path) kernel
and, for the speedup column, under the legacy per-instruction kernel,
at smoke and/or full parameters.  Each (experiment, kernel) pair runs
its cells serially ``repeats`` times and reports the **minimum** wall
clock (min-of-N filters scheduler noise without averaging it in),
alongside simulation throughput: events fired per second and
instructions retired per second, collected through
:func:`repro.sim.kernel.collect_stats`.

The document is written to ``BENCH_sim.json`` at the repo root — the
perf-trajectory artifact every later perf PR is measured against — and
:func:`compare` checks a fresh run against a committed baseline with a
configurable regression threshold (CI's bench-smoke job gates on it).

Wall-clock numbers are machine-dependent by nature; the artifact is a
trajectory on comparable hardware, not a determinism surface.  Nothing
here feeds a :class:`~repro.exp.result.Result`.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional

from repro.cpu import costmodels
from repro.exp import registry
from repro.sim import kernel as simkernel

#: Schema tag of the BENCH_sim.json document.
SCHEMA = "repro-bench/1"

#: Default regression threshold: fail when a section/experiment wall
#: clock exceeds the baseline by more than this fraction.
DEFAULT_THRESHOLD = 0.25

#: Noise floor for regression comparison: entries where both current
#: and baseline wall clocks sit under this are pure scheduler jitter
#: (a 3 ms experiment "regressing" by 30% is one cache miss) and are
#: never flagged.
MIN_COMPARE_WALL_S = 0.005

#: Absolute slack for regression comparison: a flagged entry must be
#: slower by at least this many seconds on top of the relative
#: threshold.  Smoke cells run in tens of milliseconds, where a 25%
#: relative excursion is routine scheduler jitter; genuine fast-path
#: breakage (e.g. the segment kernel silently degrading to the legacy
#: cadence) costs hundreds of milliseconds and clears this easily.
MIN_REGRESSION_DELTA_S = 0.05


def default_bench_path() -> Path:
    """``<repo>/BENCH_sim.json`` next to the installed package."""
    import repro

    return Path(repro.__file__).resolve().parents[2] / "BENCH_sim.json"


def _resolve_params(experiment: registry.Experiment, smoke: bool,
                    overrides: Optional[Mapping[str, Any]],
                    ) -> dict[str, Any]:
    params = experiment.all_defaults()
    if smoke:
        params.update(experiment.smoke)
    for key, value in (overrides or {}).items():
        if key in params and value is not None:
            params[key] = value
    return params


def _time_cells(experiment: registry.Experiment,
                params: Mapping[str, Any], kernel: str, repeats: int,
                ) -> tuple[float, int, int, dict[str, float]]:
    """Min-of-N wall clock for one (experiment, kernel) pair.

    Returns ``(wall_s, events_fired, instructions, cell_walls)``.  Each
    cell is timed individually (min over the repeats per cell, so the
    acceptance-level per-cell speedups are visible in the artifact);
    ``wall_s`` is the min over repeats of the summed cell walls.  The
    counters come from the last repeat and are deterministic (identical
    every repeat), unlike the wall clock.
    """
    cells = experiment.cells(dict(params))
    wall = float("inf")
    cell_walls = {cell: float("inf") for cell in cells}
    events = 0
    instructions = 0
    with simkernel.use_kernel(kernel), \
            costmodels.use_default(params.get("cost_model")):
        for _ in range(max(1, repeats)):
            total = 0.0
            with simkernel.collect_stats() as stats:
                for cell in cells:
                    # Wall-clock is the measurement here, not a hidden
                    # nondeterminism: it never reaches a Result.
                    started = time.perf_counter()  # svtlint: disable=SVT001
                    experiment.run_cell(cell, dict(params))
                    took = time.perf_counter() - started  # svtlint: disable=SVT001
                    total += took
                    cell_walls[cell] = min(cell_walls[cell], took)
            wall = min(wall, total)
            events = stats.events_fired
            instructions = stats.instructions
    return wall, events, instructions, cell_walls


def bench_section(names: Iterable[str], smoke: bool, repeats: int = 3,
                  legacy: bool = True,
                  overrides: Optional[Mapping[str, Any]] = None,
                  ) -> dict[str, Any]:
    """One parameter section (smoke or full) of the bench document."""
    experiments: dict[str, Any] = {}
    total_wall = 0.0
    total_legacy = 0.0
    for name in sorted(dict.fromkeys(names)):
        experiment = registry.get(name)
        params = _resolve_params(experiment, smoke, overrides)
        wall, events, instructions, cell_walls = _time_cells(
            experiment, params, simkernel.SEGMENT, repeats)
        entry: dict[str, Any] = {
            "cells": len(experiment.cells(params)),
            "wall_s": round(wall, 4),
            "cell_wall_s": {cell: round(took, 4)
                            for cell, took in cell_walls.items()},
            "events": events,
            "events_per_s": round(events / wall) if wall else 0,
            "instructions": instructions,
            "instructions_per_s": (round(instructions / wall)
                                   if wall else 0),
        }
        total_wall += wall
        if legacy:
            legacy_wall, _, _, legacy_cells = _time_cells(
                experiment, params, simkernel.LEGACY, repeats)
            entry["legacy_wall_s"] = round(legacy_wall, 4)
            entry["speedup"] = (round(legacy_wall / wall, 2)
                                if wall else 0.0)
            entry["cell_speedup"] = {
                cell: (round(legacy_cells[cell] / took, 2) if took
                       else 0.0)
                for cell, took in cell_walls.items()
            }
            total_legacy += legacy_wall
        experiments[name] = entry
    totals: dict[str, Any] = {"wall_s": round(total_wall, 4)}
    if legacy:
        totals["legacy_wall_s"] = round(total_legacy, 4)
        totals["speedup"] = (round(total_legacy / total_wall, 2)
                             if total_wall else 0.0)
    return {"experiments": experiments, "totals": totals}


def bench_document(names: Optional[Iterable[str]] = None,
                   sections: Iterable[str] = ("smoke", "full"),
                   repeats: int = 3, legacy: bool = True,
                   overrides: Optional[Mapping[str, Any]] = None,
                   ) -> dict[str, Any]:
    """The full ``repro-bench/1`` document."""
    registry.ensure_loaded()
    names = sorted(names or registry.names())
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "kernel_version": simkernel.KERNEL_VERSION,
        "repeats": repeats,
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        "sections": {},
    }
    for section in sections:
        if section not in ("smoke", "full"):
            raise ValueError(f"unknown bench section {section!r}")
        doc["sections"][section] = bench_section(
            names, smoke=(section == "smoke"), repeats=repeats,
            legacy=legacy, overrides=overrides)
    return doc


def compare(current: Mapping[str, Any], baseline: Mapping[str, Any],
            threshold: float = DEFAULT_THRESHOLD) -> list[dict[str, Any]]:
    """Wall-clock regressions of ``current`` versus ``baseline``.

    Compares every (section, experiment) present in both documents;
    an entry regresses when its segment-kernel wall clock exceeds the
    baseline's by more than ``threshold`` (a fraction) *and* by at
    least :data:`MIN_REGRESSION_DELTA_S` in absolute terms.  Entries
    where both walls are under :data:`MIN_COMPARE_WALL_S` are skipped
    as noise.  Returns the regressions sorted worst-first.
    """
    regressions: list[dict[str, Any]] = []
    base_sections = baseline.get("sections", {})
    for section, payload in current.get("sections", {}).items():
        base_experiments = base_sections.get(section, {}).get(
            "experiments", {})
        for name, entry in payload.get("experiments", {}).items():
            base_entry = base_experiments.get(name)
            if base_entry is None:
                continue
            wall = float(entry.get("wall_s", 0.0))
            base_wall = float(base_entry.get("wall_s", 0.0))
            if base_wall <= 0.0:
                continue
            if (wall < MIN_COMPARE_WALL_S
                    and base_wall < MIN_COMPARE_WALL_S):
                continue
            if wall - base_wall < MIN_REGRESSION_DELTA_S:
                continue
            ratio = wall / base_wall
            if ratio > 1.0 + threshold:
                regressions.append({
                    "section": section,
                    "experiment": name,
                    "wall_s": wall,
                    "baseline_wall_s": base_wall,
                    "ratio": round(ratio, 3),
                })
    return sorted(regressions, key=lambda r: -float(r["ratio"]))


def render(doc: Mapping[str, Any]) -> str:
    """Human-readable summary of a bench document."""
    lines: list[str] = []
    for section, payload in doc.get("sections", {}).items():
        lines.append(f"[{section}]")
        header = (f"  {'experiment':<18} {'cells':>5} {'wall_s':>9} "
                  f"{'legacy_s':>9} {'speedup':>8} {'best':>7} "
                  f"{'events/s':>12} {'instr/s':>12}")
        lines.append(header)
        for name, entry in sorted(payload["experiments"].items()):
            cell_speedups = entry.get("cell_speedup", {})
            best = max(cell_speedups.values(), default=0.0)
            lines.append(
                f"  {name:<18} {entry['cells']:>5} "
                f"{entry['wall_s']:>9.4f} "
                f"{entry.get('legacy_wall_s', 0.0):>9.4f} "
                f"{entry.get('speedup', 0.0):>7.2f}x "
                f"{best:>6.2f}x "
                f"{entry['events_per_s']:>12,} "
                f"{entry['instructions_per_s']:>12,}"
            )
        totals = payload["totals"]
        speedup = totals.get("speedup")
        suffix = f", speedup {speedup:.2f}x" if speedup else ""
        lines.append(
            f"  total: {totals['wall_s']:.2f}s segment"
            + (f" vs {totals['legacy_wall_s']:.2f}s legacy"
               if "legacy_wall_s" in totals else "")
            + suffix
        )
    return "\n".join(lines)
