"""`repro bench` — the wall-clock perf-regression harness.

Times every registered experiment under each simulation kernel —
``segment`` (the per-cell fast path), ``batch`` (the sweep-level
compile-once tier) and ``legacy`` (the per-instruction reference) — at
smoke and/or full parameters.  Each (experiment, kernel) pair runs its
cells serially ``repeats`` times and reports the **minimum** wall
clock (min-of-N filters scheduler noise without averaging it in),
alongside simulation throughput (events fired and instructions retired
per second, via :func:`repro.sim.kernel.collect_stats`), the
segment-compile memo traffic (:func:`repro.cpu.segments.memo_stats`)
and the batch-tier occupancy (:func:`repro.sim.batch.batch_stats`).

The document is written to ``BENCH_sim.json`` at the repo root — the
perf-trajectory artifact every later perf PR is measured against — and
:func:`compare` checks a fresh run against a committed baseline with a
configurable regression threshold, while :func:`check_floors` holds
the document to the absolute speedup bars of the batch-kernel work
(CI's bench-smoke job gates on both).

Wall-clock numbers are machine-dependent by nature; the artifact is a
trajectory on comparable hardware, not a determinism surface.  Nothing
here feeds a :class:`~repro.exp.result.Result`.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional

from repro.cpu import costmodels, segments
from repro.exp import registry
from repro.sim import batch as simbatch
from repro.sim import kernel as simkernel

#: Schema tag of the BENCH_sim.json document.  ``repro-bench/2`` nests
#: per-kernel timings under each experiment (``entry["kernels"]``)
#: instead of v1's segment-plus-legacy columns.
SCHEMA = "repro-bench/2"

#: Default regression threshold: fail when a section/experiment wall
#: clock exceeds the baseline by more than this fraction.
DEFAULT_THRESHOLD = 0.25

#: Noise floor for regression comparison: entries where both current
#: and baseline wall clocks sit under this are pure scheduler jitter
#: (a 3 ms experiment "regressing" by 30% is one cache miss) and are
#: never flagged.
MIN_COMPARE_WALL_S = 0.005

#: Absolute slack for regression comparison: a flagged entry must be
#: slower by at least this many seconds on top of the relative
#: threshold.  Smoke cells run in tens of milliseconds, where a 25%
#: relative excursion is routine scheduler jitter; genuine fast-path
#: breakage (e.g. the segment kernel silently degrading to the legacy
#: cadence) costs hundreds of milliseconds and clears this easily.
MIN_REGRESSION_DELTA_S = 0.05

#: Absolute speedup floors (see ``docs/performance.md``, "Batch
#: kernel"): the full-parameter fig8 sweep — the tentpole workload the
#: batch kernel was built for — must hold >= 10x over the legacy
#: kernel and >= 3x over the segment kernel; and *no* experiment may
#: lose wall clock by moving from segment to batch (or from legacy to
#: segment) above the noise floor.  :func:`check_floors` enforces all
#: of these with :data:`MIN_REGRESSION_DELTA_S` of absolute slack so
#: scheduler jitter on a few-ms experiment cannot fail CI.
FIG8_BATCH_VS_LEGACY_FLOOR = 10.0
FIG8_BATCH_VS_SEGMENT_FLOOR = 3.0


def default_bench_path() -> Path:
    """``<repo>/BENCH_sim.json`` next to the installed package."""
    import repro

    return Path(repro.__file__).resolve().parents[2] / "BENCH_sim.json"


def _resolve_params(experiment: registry.Experiment, smoke: bool,
                    overrides: Optional[Mapping[str, Any]],
                    ) -> dict[str, Any]:
    params = experiment.all_defaults()
    if smoke:
        params.update(experiment.smoke)
    for key, value in (overrides or {}).items():
        if key in params and value is not None:
            params[key] = value
    return params


def _time_cells(experiment: registry.Experiment,
                params: Mapping[str, Any], kernel: str, repeats: int,
                ) -> dict[str, Any]:
    """Min-of-N wall clock for one (experiment, kernel) pair.

    Each cell is timed individually (min over the repeats per cell, so
    the acceptance-level per-cell speedups are visible in the
    artifact); ``wall_s`` is the min over repeats of the summed cell
    walls.  The throughput counters come from the last repeat and are
    deterministic (identical every repeat), unlike the wall clock.

    The per-process memos (segment compile memo, memcached
    service-time memo, batch-tier counters) are reset on entry so
    every kernel is timed from the same cold start — the first repeat
    pays any one-off compile/measure cost and min-of-N excludes it
    identically for all kernels — and their traffic over the timed
    repeats is reported in the entry.
    """
    from repro.workloads import memcached

    cells = experiment.cells(dict(params))
    wall = float("inf")
    cell_walls = {cell: float("inf") for cell in cells}
    events = 0
    instructions = 0
    segments.reset_memo_stats()
    simbatch.reset_batch_stats()
    memcached.reset_service_memo()
    with simkernel.use_kernel(kernel), \
            costmodels.use_default(params.get("cost_model")):
        for _ in range(max(1, repeats)):
            total = 0.0
            with simkernel.collect_stats() as stats:
                for cell in cells:
                    # Wall-clock is the measurement here, not a hidden
                    # nondeterminism: it never reaches a Result.
                    started = time.perf_counter()  # svtlint: disable=SVT001
                    experiment.run_cell(cell, dict(params))
                    took = time.perf_counter() - started  # svtlint: disable=SVT001
                    total += took
                    cell_walls[cell] = min(cell_walls[cell], took)
            wall = min(wall, total)
            events = stats.events_fired
            instructions = stats.instructions
    entry: dict[str, Any] = {
        "wall_s": round(wall, 4),
        "cell_wall_s": {cell: round(took, 4)
                        for cell, took in cell_walls.items()},
        "events": events,
        "events_per_s": round(events / wall) if wall else 0,
        "instructions": instructions,
        "instructions_per_s": (round(instructions / wall)
                               if wall else 0),
        "memo": segments.memo_stats(),
    }
    if kernel == simkernel.BATCH:
        entry["batch"] = simbatch.batch_stats()
    return entry


def _ratio(numerator: Optional[float], denominator: Optional[float],
           ) -> Optional[float]:
    if not numerator or not denominator:
        return None
    return round(float(numerator) / float(denominator), 2)


def bench_section(names: Iterable[str], smoke: bool, repeats: int = 3,
                  kernels: Iterable[str] = simkernel.KERNELS,
                  overrides: Optional[Mapping[str, Any]] = None,
                  ) -> dict[str, Any]:
    """One parameter section (smoke or full) of the bench document."""
    kernels = [simkernel.validate(kernel)
               for kernel in dict.fromkeys(kernels)]
    experiments: dict[str, Any] = {}
    totals_by_kernel = {kernel: 0.0 for kernel in kernels}
    for name in sorted(dict.fromkeys(names)):
        experiment = registry.get(name)
        params = _resolve_params(experiment, smoke, overrides)
        by_kernel = {
            kernel: _time_cells(experiment, params, kernel, repeats)
            for kernel in kernels
        }
        for kernel in kernels:
            totals_by_kernel[kernel] += by_kernel[kernel]["wall_s"]
        walls = {kernel: by_kernel[kernel]["wall_s"]
                 for kernel in kernels}
        entry: dict[str, Any] = {
            "cells": len(experiment.cells(params)),
            "kernels": by_kernel,
        }
        speedup = _ratio(walls.get(simkernel.LEGACY),
                         walls.get(simkernel.SEGMENT))
        if speedup is not None:
            entry["speedup"] = speedup
            seg_cells = by_kernel[simkernel.SEGMENT]["cell_wall_s"]
            leg_cells = by_kernel[simkernel.LEGACY]["cell_wall_s"]
            entry["cell_speedup"] = {
                cell: (round(leg_cells[cell] / took, 2) if took
                       else 0.0)
                for cell, took in seg_cells.items()
            }
        batch_speedup = _ratio(walls.get(simkernel.LEGACY),
                               walls.get(simkernel.BATCH))
        if batch_speedup is not None:
            entry["batch_speedup"] = batch_speedup
        batch_vs_segment = _ratio(walls.get(simkernel.SEGMENT),
                                  walls.get(simkernel.BATCH))
        if batch_vs_segment is not None:
            entry["batch_vs_segment"] = batch_vs_segment
        experiments[name] = entry
    totals: dict[str, Any] = {
        "wall_s": {kernel: round(total, 4)
                   for kernel, total in totals_by_kernel.items()},
    }
    for label, num, den in (
        ("speedup", simkernel.LEGACY, simkernel.SEGMENT),
        ("batch_speedup", simkernel.LEGACY, simkernel.BATCH),
        ("batch_vs_segment", simkernel.SEGMENT, simkernel.BATCH),
    ):
        ratio = _ratio(totals_by_kernel.get(num),
                       totals_by_kernel.get(den))
        if ratio is not None:
            totals[label] = ratio
    return {"experiments": experiments, "totals": totals}


def bench_document(names: Optional[Iterable[str]] = None,
                   sections: Iterable[str] = ("smoke", "full"),
                   repeats: int = 3,
                   kernels: Optional[Iterable[str]] = None,
                   legacy: bool = True,
                   overrides: Optional[Mapping[str, Any]] = None,
                   ) -> dict[str, Any]:
    """The full ``repro-bench/2`` document.

    ``kernels`` selects the kernel subset to time (default: all
    three); ``legacy=False`` is shorthand for dropping the legacy
    kernel from that subset (the slowest column by an order of
    magnitude).
    """
    registry.ensure_loaded()
    names = sorted(names or registry.names())
    chosen = list(dict.fromkeys(kernels or simkernel.KERNELS))
    if not legacy:
        chosen = [kernel for kernel in chosen
                  if kernel != simkernel.LEGACY]
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "kernel_version": simkernel.KERNEL_VERSION,
        "repeats": repeats,
        "kernels": [simkernel.validate(kernel) for kernel in chosen],
        "python": ".".join(str(part) for part in sys.version_info[:3]),
        "sections": {},
    }
    for section in sections:
        if section not in ("smoke", "full"):
            raise ValueError(f"unknown bench section {section!r}")
        doc["sections"][section] = bench_section(
            names, smoke=(section == "smoke"), repeats=repeats,
            kernels=chosen, overrides=overrides)
    return doc


def _entry_walls(entry: Mapping[str, Any]) -> dict[str, float]:
    """Per-kernel walls of a v2 entry (v1 entries map to segment)."""
    kernels = entry.get("kernels")
    if kernels:
        return {kernel: float(timing.get("wall_s", 0.0))
                for kernel, timing in kernels.items()}
    walls = {simkernel.SEGMENT: float(entry.get("wall_s", 0.0))}
    if "legacy_wall_s" in entry:
        walls[simkernel.LEGACY] = float(entry["legacy_wall_s"])
    return walls


def compare(current: Mapping[str, Any], baseline: Mapping[str, Any],
            threshold: float = DEFAULT_THRESHOLD) -> list[dict[str, Any]]:
    """Wall-clock regressions of ``current`` versus ``baseline``.

    Compares every (section, experiment, kernel) present in both
    documents; an entry regresses when its wall clock exceeds the
    baseline's by more than ``threshold`` (a fraction) *and* by at
    least :data:`MIN_REGRESSION_DELTA_S` in absolute terms.  Entries
    where both walls are under :data:`MIN_COMPARE_WALL_S` are skipped
    as noise.  Returns the regressions sorted worst-first.
    """
    regressions: list[dict[str, Any]] = []
    base_sections = baseline.get("sections", {})
    for section, payload in current.get("sections", {}).items():
        base_experiments = base_sections.get(section, {}).get(
            "experiments", {})
        for name, entry in payload.get("experiments", {}).items():
            base_entry = base_experiments.get(name)
            if base_entry is None:
                continue
            walls = _entry_walls(entry)
            base_walls = _entry_walls(base_entry)
            for kernel, wall in walls.items():
                base_wall = base_walls.get(kernel, 0.0)
                if base_wall <= 0.0:
                    continue
                if (wall < MIN_COMPARE_WALL_S
                        and base_wall < MIN_COMPARE_WALL_S):
                    continue
                if wall - base_wall < MIN_REGRESSION_DELTA_S:
                    continue
                ratio = wall / base_wall
                if ratio > 1.0 + threshold:
                    regressions.append({
                        "section": section,
                        "experiment": name,
                        "kernel": kernel,
                        "wall_s": wall,
                        "baseline_wall_s": base_wall,
                        "ratio": round(ratio, 3),
                    })
    return sorted(regressions, key=lambda r: -float(r["ratio"]))


def check_floors(doc: Mapping[str, Any]) -> list[dict[str, Any]]:
    """Absolute speedup-floor violations in a bench document.

    The bars (docs/performance.md, "Batch kernel"), each applied with
    :data:`MIN_REGRESSION_DELTA_S` of absolute slack and only above
    the :data:`MIN_COMPARE_WALL_S` noise floor:

    * no experiment may run slower under the batch kernel than under
      the segment kernel (batch_vs_segment >= 1.0);
    * no experiment may run slower under the segment kernel than under
      the legacy kernel (speedup >= 1.0 — the compile gate's job);
    * the full-parameter fig8 sweep must clear
      :data:`FIG8_BATCH_VS_LEGACY_FLOOR` over legacy and
      :data:`FIG8_BATCH_VS_SEGMENT_FLOOR` over segment.
    """
    failures: list[dict[str, Any]] = []

    def fail(section: str, name: str, bar: str, floor: float,
             fast: float, slow: float) -> None:
        failures.append({
            "section": section, "experiment": name, "bar": bar,
            "floor": floor, "reference_wall_s": fast,
            "wall_s": slow,
            "ratio": round(fast / slow, 3) if slow else 0.0,
        })

    for section, payload in doc.get("sections", {}).items():
        for name, entry in payload.get("experiments", {}).items():
            walls = _entry_walls(entry)
            seg = walls.get(simkernel.SEGMENT)
            bat = walls.get(simkernel.BATCH)
            leg = walls.get(simkernel.LEGACY)
            if (seg is not None and bat is not None
                    and seg >= MIN_COMPARE_WALL_S
                    and bat > seg + MIN_REGRESSION_DELTA_S):
                fail(section, name, "batch_vs_segment", 1.0, seg, bat)
            if (leg is not None and seg is not None
                    and leg >= MIN_COMPARE_WALL_S
                    and seg > leg + MIN_REGRESSION_DELTA_S):
                fail(section, name, "speedup", 1.0, leg, seg)
            if section == "full" and name == "fig8":
                if (leg and bat and bat * FIG8_BATCH_VS_LEGACY_FLOOR
                        > leg + MIN_REGRESSION_DELTA_S):
                    fail(section, name, "fig8_batch_vs_legacy",
                         FIG8_BATCH_VS_LEGACY_FLOOR, leg, bat)
                if (seg and bat and bat * FIG8_BATCH_VS_SEGMENT_FLOOR
                        > seg + MIN_REGRESSION_DELTA_S):
                    fail(section, name, "fig8_batch_vs_segment",
                         FIG8_BATCH_VS_SEGMENT_FLOOR, seg, bat)
    return failures


def _fmt_wall(value: Optional[float]) -> str:
    """Wall-clock column: a dash when the kernel was not benched."""
    return "-" if value is None else f"{value:.4f}"


def _fmt_ratio(value: Optional[float]) -> str:
    """Speedup column: a dash when the comparison kernel is absent."""
    return "-" if value is None else f"{value:.2f}x"


def render(doc: Mapping[str, Any]) -> str:
    """Human-readable summary of a bench document."""
    lines: list[str] = []
    for section, payload in doc.get("sections", {}).items():
        lines.append(f"[{section}]")
        header = (f"  {'experiment':<18} {'cells':>5} {'segment_s':>9} "
                  f"{'batch_s':>9} {'legacy_s':>9} {'speedup':>8} "
                  f"{'batch':>7} {'events/s':>12} {'instr/s':>12}")
        lines.append(header)
        for name, entry in sorted(payload["experiments"].items()):
            walls = _entry_walls(entry)
            timing = entry.get("kernels", {}).get(
                simkernel.SEGMENT, entry)
            lines.append(
                f"  {name:<18} {entry['cells']:>5} "
                f"{_fmt_wall(walls.get(simkernel.SEGMENT)):>9} "
                f"{_fmt_wall(walls.get(simkernel.BATCH)):>9} "
                f"{_fmt_wall(walls.get(simkernel.LEGACY)):>9} "
                f"{_fmt_ratio(entry.get('speedup')):>8} "
                f"{_fmt_ratio(entry.get('batch_vs_segment')):>7} "
                f"{timing.get('events_per_s', 0):>12,} "
                f"{timing.get('instructions_per_s', 0):>12,}"
            )
        totals = payload["totals"]
        walls = totals.get("wall_s", {})
        if isinstance(walls, Mapping):
            parts = [f"{walls.get(kernel, 0.0):.2f}s {kernel}"
                     for kernel in simkernel.KERNELS
                     if kernel in walls]
            summary = " vs ".join(parts)
        else:
            summary = f"{float(walls):.2f}s segment"
        ratios = ", ".join(
            f"{label} {totals[label]:.2f}x"
            for label in ("speedup", "batch_speedup",
                          "batch_vs_segment")
            if totals.get(label)
        )
        lines.append(f"  total: {summary}"
                     + (f"  ({ratios})" if ratios else ""))
        memo_lines = []
        for name, entry in sorted(payload["experiments"].items()):
            for kernel, timing in entry.get("kernels", {}).items():
                memo = timing.get("memo", {})
                batch = timing.get("batch", {})
                if batch.get("native_calls") or memo.get("wipes"):
                    memo_lines.append(
                        f"  {name}/{kernel}: memo {memo.get('hits', 0)}h"
                        f"/{memo.get('misses', 0)}m"
                        f"/{memo.get('wipes', 0)}w, native "
                        f"{batch.get('native_calls', 0)} call(s)"
                    )
        lines.extend(memo_lines)
    return "\n".join(lines)
