"""Parallel experiment runner with deterministic assembly.

The unit of parallelism is a *cell*: one (experiment, mode, seed,
sweep-point) combination as declared by ``Experiment.cells``.  Cells are
independent by contract — each builds its own ``Machine``; no simulator
state crosses a cell boundary — so they fan out over a
``ProcessPoolExecutor`` with ``--jobs N``.

Determinism: payloads are merged strictly in ``cells()`` order and
experiments are assembled in sorted-name order, so the output document is
byte-identical whether cells ran serially, in any interleaving, or on any
number of workers.  Wall-clock timings are collected alongside but kept
*out* of the result document (they go to ``results/runtime_smoke.json``
via :func:`runtime_smoke`).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional

from repro.cpu import costmodels
from repro.exp import registry
from repro.exp.cache import ResultCache, code_fingerprint, \
    cost_model_fingerprint
from repro.exp.result import Result, canonical_json
from repro.obs.export import metrics_document
from repro.obs.metrics import merge_snapshots
from repro.obs.observer import capture_metrics
from repro.sim import kernel as simkernel
from repro.sim import sanitizer

#: Top-level schema of the ``--json`` document.
DOCUMENT_SCHEMA = "repro-results/1"


@dataclass(frozen=True)
class ExperimentRun:
    """One experiment's outcome inside a batch run."""

    name: str
    result: Result
    cached: bool
    seconds: float          # summed cell compute time (0.0 when cached)
    #: Merged per-cell metrics snapshot (``collect_metrics`` runs only;
    #: ``None`` otherwise).  Deliberately NOT part of the canonical
    #: result document — see :meth:`RunReport.metrics_document`.
    metrics: Optional[dict[str, Any]] = None


@dataclass
class RunReport:
    """Everything a batch run produced."""

    runs: list[ExperimentRun] = field(default_factory=list)
    jobs: int = 1
    cache_dir: str = ""
    cache_enabled: bool = False
    cache_keys: dict[str, str] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: Rendered runtime-sanitizer reports (``REPRO_SIM_SANITIZE=1``
    #: runs only; empty otherwise).  Deliberately NOT part of the
    #: canonical result document — the flag must not change a byte of
    #: output; the CLI surfaces these on stderr and exits nonzero.
    sanitizer_reports: list[str] = field(default_factory=list)

    @property
    def results(self) -> dict[str, Result]:
        return {run.name: run.result for run in self.runs}

    @property
    def served(self) -> list[str]:
        return sorted(run.name for run in self.runs if run.cached)

    @property
    def computed(self) -> list[str]:
        return sorted(run.name for run in self.runs if not run.cached)

    def to_document(self) -> dict[str, Any]:
        """The ``--json`` document — a pure function of the experiment
        set and code state, never of scheduling or cache temperature.

        ``meta.cache.entries`` maps each experiment to the cache key
        that backs its result; a freshly computed result is stored under
        that key before the document is emitted, so a cold ``--jobs 4``
        run, a warm ``--jobs 1`` run and any rerun in between are
        byte-identical.  The per-invocation hit/miss split stays out of
        the document (the CLI reports it on stderr) precisely to keep
        that property; ``RunReport.served``/``computed`` expose it
        programmatically.
        """
        return {
            "schema": DOCUMENT_SCHEMA,
            "code_fingerprint": code_fingerprint(),
            "cost_model_fingerprint": cost_model_fingerprint(),
            "experiments": {
                run.name: run.result.to_dict() for run in self.runs
            },
            "meta": {
                "cache": {
                    "enabled": self.cache_enabled,
                    "dir": self.cache_dir,
                    "entries": dict(sorted(self.cache_keys.items())),
                },
            },
        }

    def to_json(self) -> str:
        return canonical_json(self.to_document())

    def metrics_document(self) -> dict[str, Any]:
        """Aggregate every run's metrics into one flat JSON document.

        Metrics are simulation-derived (counters of deterministic
        events), so the document is as reproducible as the results —
        but it is a *separate* artifact: keeping it out of
        :meth:`to_document` preserves the result schema and the cache's
        byte-identity guarantee.
        """
        snapshots = [run.metrics for run in self.runs
                     if run.metrics is not None]
        return metrics_document(
            snapshots,
            meta={"experiments": sorted(
                run.name for run in self.runs if run.metrics is not None
            )},
        )


def _execute_cell(name: str, cell: str, params: dict[str, Any],
                  collect_metrics: bool = False) \
        -> tuple[str, str, Any, float, Optional[dict[str, Any]],
                 list[str]]:
    """Worker entry point: one cell in a fresh simulator.

    Module-level so it pickles; re-resolves the experiment through the
    registry so it also works under the ``spawn`` start method.  With
    ``collect_metrics`` the cell runs under an ambient metrics capture
    (`repro.obs.observer.capture_metrics`): every machine the cell
    builds adopts the capture observer, and its snapshot travels back
    with the payload.  The capture stack is per-process, so pool
    workers never share observer state.

    Under ``REPRO_SIM_SANITIZE=1`` the cell's runtime-sanitizer reports
    travel back rendered (strings pickle across the pool boundary);
    draining per cell keeps attribution cell-accurate and resets the
    process-global log between cells sharing a worker.
    """
    experiment = registry.get(name)
    # Wall-clock here is diagnostic only (ExperimentRun.seconds feeds
    # results/runtime_smoke.json) and never enters a result document.
    started = time.perf_counter()  # svtlint: disable=SVT001
    snapshot: Optional[dict[str, Any]] = None
    with costmodels.use_default(params.get("cost_model")):
        if collect_metrics:
            with capture_metrics() as observer:
                payload = experiment.run_cell(cell, params)
            snapshot = observer.metrics_snapshot()
        else:
            payload = experiment.run_cell(cell, params)
    took = time.perf_counter() - started  # svtlint: disable=SVT001
    violations = ([report.render() for report in sanitizer.drain()]
                  if sanitizer.enabled() else [])
    return name, cell, payload, took, snapshot, violations


def _execute_cells(cells: list[tuple[str, str, dict[str, Any]]],
                   collect_metrics: bool = False) \
        -> list[tuple[str, str, Any, float, Optional[dict[str, Any]],
                      list[str]]]:
    """Worker entry point: one *group* of cells, in declared order.

    The batch kernel's scheduling unit (see :func:`_grouped`): cells
    of one experiment share workload structure, so running a group in
    one worker process lets the compile memo
    (:mod:`repro.cpu.segments`) and the service-time memo
    (:mod:`repro.workloads.memcached`) amortize across the group —
    the "compile once per sweep" contract — instead of every worker
    recompiling the structures it happens to receive.  Purely a
    scheduling change: each cell still runs through
    :func:`_execute_cell`, and assembly is keyed by (name, cell), so
    the output document is byte-identical at any grouping.
    """
    return [_execute_cell(name, cell, params, collect_metrics)
            for name, cell, params in cells]


def _grouped(cells: list[tuple[str, str, dict[str, Any]]]) \
        -> list[list[tuple[str, str, dict[str, Any]]]]:
    """Cells grouped by experiment name, group order = first
    appearance (i.e. sorted-name order, since ``cells`` is built from
    sorted plans).  The structural fingerprint available at this layer
    is the experiment itself: every cell of one experiment builds the
    same programs modulo parameters, which is exactly the population
    the compile memo serves."""
    groups: dict[str, list[tuple[str, str, dict[str, Any]]]] = {}
    for item in cells:
        groups.setdefault(item[0], []).append(item)
    return list(groups.values())


def run_experiments(names: Iterable[str],
                    overrides: Optional[Mapping[str, Any]] = None,
                    jobs: int = 1,
                    cache: Optional[ResultCache] = None,
                    smoke: bool = False,
                    collect_metrics: bool = False) -> RunReport:
    """Run a batch of experiments, reusing cached results.

    ``names`` is any iterable of registered names; ``overrides`` is one
    shared parameter namespace (each experiment takes only what it
    declares); ``cache=None`` disables caching; ``smoke`` applies each
    experiment's fast-run parameter overrides first;
    ``collect_metrics`` captures per-cell observability metrics
    (cached results carry no metrics, so the CLI disables the cache
    when asked for them).
    """
    # Diagnostic wall-clock (RunReport.wall_seconds stays out of the
    # canonical result document; see to_document's docstring).
    started = time.perf_counter()  # svtlint: disable=SVT001
    names = sorted(dict.fromkeys(names))
    report = RunReport(
        jobs=max(1, int(jobs)),
        cache_dir=str(cache.root) if cache else "",
        cache_enabled=cache is not None,
    )

    #: (name, experiment, params) triples needing computation.
    plans: list[tuple[str, registry.Experiment, dict[str, Any]]] = []
    finished: dict[str, ExperimentRun] = {}
    for name in names:
        experiment = registry.get(name)
        params = experiment.all_defaults()
        if smoke:
            params.update(experiment.smoke)
        for key, value in (overrides or {}).items():
            if key in params and value is not None:
                params[key] = value
        if cache is not None:
            report.cache_keys[name] = cache.key(name, params)
            hit = cache.load(name, params)
            if hit is not None:
                finished[name] = ExperimentRun(name, hit, True, 0.0)
                continue
        plans.append((name, experiment, params))

    cells = [
        (name, cell, params)
        for name, experiment, params in plans
        for cell in experiment.cells(params)
    ]

    payloads: dict[tuple[str, str], Any] = {}
    seconds: dict[str, float] = {}
    snapshots: dict[str, list[dict[str, Any]]] = {}
    if report.jobs > 1 and len(cells) > 1:
        # Under the batch kernel, the scheduling unit is a structural
        # group (all cells of one experiment) so the per-process memos
        # compile each structure once per worker, not once per cell.
        # Grouping is invisible in the output: assembly is keyed by
        # (name, cell) either way.
        batch_kernel = simkernel.active_kernel() == simkernel.BATCH
        outcomes: Iterable[
            tuple[str, str, Any, float, Optional[dict[str, Any]],
                  list[str]]
        ]
        with ProcessPoolExecutor(max_workers=report.jobs) as pool:
            if batch_kernel:
                groups = _grouped(cells)
                grouped = pool.map(
                    _execute_cells,
                    groups,
                    [collect_metrics] * len(groups),
                )
                outcomes = (outcome for group in grouped
                            for outcome in group)
            else:
                outcomes = pool.map(
                    _execute_cell,
                    [c[0] for c in cells],
                    [c[1] for c in cells],
                    [c[2] for c in cells],
                    [collect_metrics] * len(cells),
                )
            for name, cell, payload, took, snapshot, violations \
                    in outcomes:
                payloads[(name, cell)] = payload
                seconds[name] = seconds.get(name, 0.0) + took
                if snapshot is not None:
                    snapshots.setdefault(name, []).append(snapshot)
                report.sanitizer_reports.extend(
                    f"{name}/{cell}: {line}" for line in violations)
    else:
        for name, cell, params in cells:
            _, _, payload, took, snapshot, violations = _execute_cell(
                name, cell, params, collect_metrics
            )
            payloads[(name, cell)] = payload
            seconds[name] = seconds.get(name, 0.0) + took
            if snapshot is not None:
                snapshots.setdefault(name, []).append(snapshot)
            report.sanitizer_reports.extend(
                f"{name}/{cell}: {line}" for line in violations)

    for name, experiment, params in plans:
        ordered = {
            cell: payloads[(name, cell)]
            for cell in experiment.cells(params)
        }
        result = experiment.merge(params, ordered)
        if cache is not None:
            # svtlint: disable=SVT008 — approximation margin: the
            # wall-clock taint rides _execute_cell's return *tuple*
            # (took), never the payload element merged into the
            # Result; cached bytes are proven schedule-independent by
            # tests/exp/test_runner.py's determinism differentials.
            cache.store(name, params, result)
        metrics = None
        if collect_metrics:
            # merge_snapshots is order-independent, so the merged
            # snapshot is identical at any --jobs setting.
            metrics = merge_snapshots(snapshots.get(name, []))
        finished[name] = ExperimentRun(name, result,
                                       False, seconds.get(name, 0.0),
                                       metrics=metrics)

    report.runs = [finished[name] for name in names]
    report.wall_seconds = \
        time.perf_counter() - started  # svtlint: disable=SVT001
    return report


def runtime_smoke(names: Optional[Iterable[str]] = None, jobs: int = 4,
                  overrides: Optional[Mapping[str, Any]] = None) \
        -> dict[str, Any]:
    """Wall-clock baseline: every experiment serial vs parallel.

    Runs the whole registry twice with smoke parameters and no cache —
    once with ``--jobs 1`` and once with ``--jobs N`` — and returns a
    JSON-ready document recording per-experiment compute time and the
    serial/parallel wall-clock, seeding the perf trajectory
    (``results/runtime_smoke.json``).
    """
    names = sorted(names or registry.names())
    serial = run_experiments(names, overrides=overrides, jobs=1,
                             cache=None, smoke=True)
    parallel = run_experiments(names, overrides=overrides, jobs=jobs,
                               cache=None, smoke=True)
    parallel_seconds = {run.name: run.seconds for run in parallel.runs}
    per_experiment: dict[str, Any] = {}
    for run in serial.runs:
        experiment = registry.get(run.name)
        smoke_params = {**experiment.all_defaults(), **experiment.smoke}
        per_experiment[run.name] = {
            "serial_s": round(run.seconds, 4),
            "parallel_cell_s": round(parallel_seconds[run.name], 4),
            "cells": len(experiment.cells(smoke_params)),
        }
    return {
        "schema": "repro-runtime-smoke/1",
        "jobs": parallel.jobs,
        "experiments": per_experiment,
        "totals": {
            "serial_wall_s": round(serial.wall_seconds, 4),
            "parallel_wall_s": round(parallel.wall_seconds, 4),
            "speedup": round(
                serial.wall_seconds / parallel.wall_seconds, 2
            ) if parallel.wall_seconds else 0.0,
        },
    }
