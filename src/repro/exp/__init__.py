"""The experiment runtime: registry, structured results, runner, cache.

One subsystem orchestrates every paper artifact:

* :mod:`repro.exp.registry` — ``Experiment`` base class + decorator
  registry; anything registered is automatically part of ``all``.
* :mod:`repro.exp.result` — frozen, JSON-serializable ``Result`` /
  ``Table`` / ``Row`` / ``Series`` dataclasses with the paper's expected
  values attached.
* :mod:`repro.exp.runner` — fans independent cells out over a process
  pool (``--jobs N``) with deterministic, byte-identical assembly.
* :mod:`repro.exp.cache` — on-disk result cache keyed by (experiment,
  params, cost-model fingerprint, code version).
* :mod:`repro.exp.experiments` — the registered experiments themselves.
"""

from repro.exp.cache import ResultCache, code_fingerprint, \
    cost_model_fingerprint
from repro.exp.registry import Experiment, RunContext, get, names, \
    register
from repro.exp.result import Result, Row, Series, Table
from repro.exp.runner import RunReport, run_experiments, runtime_smoke

__all__ = [
    "Experiment",
    "Result",
    "ResultCache",
    "Row",
    "RunContext",
    "RunReport",
    "Series",
    "Table",
    "code_fingerprint",
    "cost_model_fingerprint",
    "get",
    "names",
    "register",
    "run_experiments",
    "runtime_smoke",
]
