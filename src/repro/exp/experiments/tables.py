"""The paper's tables as registered experiments (Tables 1, 3, 4)."""

from __future__ import annotations

from typing import Any

from repro.exp.registry import Experiment, register
from repro.exp.result import Result, Row, Table


@register
class Table1Breakdown(Experiment):
    """Table 1: per-part time of one baseline nested cpuid."""

    name = "table1"
    title = "Table 1: nested cpuid breakdown"
    description = "per-part time of one nested cpuid (baseline)"
    defaults = {"iterations": 50}
    smoke = {"iterations": 10}

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.workloads import cpuid

        rows = cpuid.table1_breakdown(iterations=params["iterations"])
        return [[label, us, pct] for label, us, pct in rows]

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        rows = payloads["all"]
        scalars: dict[str, Any] = {}
        for label, us, _pct in rows:
            key = label.split(" ", 1)[1].lower().replace(" ", "_") \
                .replace("<->", "_").replace("/", "_")
            scalars[f"{key}_us"] = round(us, 4)
        scalars["total_us"] = round(sum(us for _, us, _ in rows), 4)
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Table 1: nested cpuid breakdown (baseline, "
                      "paper total 10.40 us)",
                columns=("Part", "Time (us)", "Perc. (%)"),
                rows=[Row(label, (f"{us:.2f}", f"{pct:.2f}"))
                      for label, us, pct in rows],
            )],
            scalars=scalars,
            paper={"total_us": 10.40},
        )


@register
class Table3Footprint(Experiment):
    """Table 3: prototype footprint, paper LoC vs this repo's."""

    name = "table3"
    title = "Table 3: prototype footprint"
    description = "paper prototype LoC vs this repo's equivalents"

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.analysis.loc import PAPER, audit

        ours = audit()
        return [
            [role, added, removed, ours[role]]
            for role, (added, removed) in PAPER.items()
        ]

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        rows = payloads["all"]
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Table 3: prototype footprint",
                columns=("Codebase", "Paper", "This repo"),
                rows=[Row(role, (f"+{added}/-{removed}", f"{loc} LoC"))
                      for role, added, removed, loc in rows],
            )],
            scalars={
                f"{role.lower().replace(' / ', '_').replace(' ', '_')}"
                "_loc": loc
                for role, _a, _r, loc in rows
            },
            paper={
                f"{role.lower().replace(' / ', '_').replace(' ', '_')}"
                "_added": added
                for role, added, _r, _l in rows
            },
        )


@register
class Table4Machine(Experiment):
    """Table 4: the paper's testbed configuration."""

    name = "table4"
    title = "Table 4: machine parameters"
    description = "the paper's testbed topology (host, L1, L2)"

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.config import paper_machine

        return [[level, desc]
                for level, desc in paper_machine().describe()]

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        rows = payloads["all"]
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Table 4: machine parameters",
                columns=("Level", "Description"),
                rows=[Row(level, (desc,)) for level, desc in rows],
            )],
            scalars={"levels": len(rows)},
        )
