"""The paper's figures as registered experiments (Figs. 6-10).

Each experiment splits into independent cells — one per (mode, bar,
sweep-point) — so the runner can fan them out across processes; merges
are pure functions of the payloads, presented in declared cell order.
"""

from __future__ import annotations

from typing import Any

from repro.core.mode import ExecutionMode
from repro.exp.registry import Experiment, register
from repro.exp.result import Result, Row, Series, Table

_SVT_MODES = (ExecutionMode.BASELINE, ExecutionMode.SW_SVT)


@register
class Fig6Cpuid(Experiment):
    """Figure 6: cpuid execution time across the five systems."""

    name = "fig6"
    title = "Figure 6: cpuid execution time"
    description = "nested cpuid latency: L0/L1/L2 vs SW/HW SVt"
    defaults = {"iterations": 50}
    smoke = {"iterations": 10}

    #: Bar label -> how to run it (level for single-level, else mode).
    BARS = (
        ("L0", {"level": 0}),
        ("L1", {"level": 1}),
        ("L2", {"mode": ExecutionMode.BASELINE}),
        ("SW SVt", {"mode": ExecutionMode.SW_SVT}),
        ("HW SVt", {"mode": ExecutionMode.HW_SVT}),
    )

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return tuple(label for label, _ in self.BARS)

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.workloads import cpuid

        spec = dict(self.BARS)[cell]
        if "level" in spec:
            result = cpuid.run(level=spec["level"],
                               iterations=params["iterations"])
        else:
            result = cpuid.run(spec["mode"],
                               iterations=params["iterations"])
        return result.us_per_op

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        l2 = payloads["L2"]
        scalars = {
            "l0_us": payloads["L0"],
            "l1_us": payloads["L1"],
            "l2_us": payloads["L2"],
            "sw_svt_us": payloads["SW SVt"],
            "hw_svt_us": payloads["HW SVt"],
            "sw_speedup": l2 / payloads["SW SVt"],
            "hw_speedup": l2 / payloads["HW SVt"],
            "nested_overhead_vs_l0": l2 / payloads["L0"],
        }
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Figure 6: cpuid execution time "
                      "(paper: SW 1.23x, HW 1.94x)",
                columns=("System", "Time (us)"),
                rows=[Row(label, (round(payloads[label], 2),))
                      for label, _ in self.BARS],
                kind="bars",
                unit=" us",
            )],
            scalars=scalars,
            paper={"l2_us": 10.40, "sw_speedup": 1.23,
                   "hw_speedup": 1.94, "l0_us": 0.05},
        )


#: Figure 7 metric table: key -> (label, runner kwargs, higher-is-better,
#: paper (base, sw, hw)).
FIG7_METRICS = {
    "net_latency": (
        "Network latency (us)", "net_latency", False,
        (163.0, 1.10, 2.38),
    ),
    "net_bandwidth": (
        "Network bandwidth (Mbps)", "net_bandwidth", True,
        (9387.0, 1.00, 1.12),
    ),
    "disk_randrd_latency": (
        "Disk randrd latency (us)", "disk_rd_latency", False,
        (126.0, 1.30, 2.18),
    ),
    "disk_randwr_latency": (
        "Disk randwr latency (us)", "disk_wr_latency", False,
        (179.0, 1.05, 2.26),
    ),
    "disk_randrd_bandwidth": (
        "Disk randrd bandwidth (KB/s)", "disk_rd_bandwidth", True,
        (87_136.0, 1.55, 2.31),
    ),
    "disk_randwr_bandwidth": (
        "Disk randwr bandwidth (KB/s)", "disk_wr_bandwidth", True,
        (55_769.0, 1.18, 2.60),
    ),
}


@register
class Fig7Subsystems(Experiment):
    """Figure 7: I/O subsystem latency/bandwidth, 18 independent cells."""

    name = "fig7"
    title = "Figure 7: I/O subsystems"
    description = "netperf + ioping/fio latency and bandwidth speedups"
    defaults = {"net_operations": 12, "disk_operations": 10}
    smoke = {"net_operations": 6, "disk_operations": 5}

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return tuple(
            f"{metric}:{mode}"
            for metric in FIG7_METRICS
            for mode in ExecutionMode.ALL
        )

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.workloads import disk, netperf

        metric, mode = cell.split(":")
        kind = FIG7_METRICS[metric][1]
        if kind == "net_latency":
            return netperf.run_latency(
                mode, operations=params["net_operations"])
        if kind == "net_bandwidth":
            return netperf.run_bandwidth(mode)
        if kind == "disk_rd_latency":
            return disk.run_latency(
                mode, write=False, operations=params["disk_operations"])
        if kind == "disk_wr_latency":
            return disk.run_latency(
                mode, write=True, operations=params["disk_operations"])
        if kind == "disk_rd_bandwidth":
            return disk.run_bandwidth(mode, write=False)
        return disk.run_bandwidth(mode, write=True)

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        rows: list[Row] = []
        scalars: dict[str, Any] = {}
        paper: dict[str, Any] = {}
        for metric, (label, _kind, higher,
                     paper_vals) in FIG7_METRICS.items():
            base = payloads[f"{metric}:{ExecutionMode.BASELINE}"]
            sw_value = payloads[f"{metric}:{ExecutionMode.SW_SVT}"]
            hw_value = payloads[f"{metric}:{ExecutionMode.HW_SVT}"]
            if higher:
                sw, hw = sw_value / base, hw_value / base
            else:
                sw, hw = base / sw_value, base / hw_value
            paper_base, paper_sw, paper_hw = paper_vals
            rows.append(Row(
                label,
                (f"{base:.0f}", f"{sw:.2f}x", f"{hw:.2f}x"),
                paper=f"{paper_base:g} / {paper_sw:.2f} / {paper_hw:.2f}",
            ))
            scalars[f"{metric}_base"] = base
            scalars[f"{metric}_sw_speedup"] = sw
            scalars[f"{metric}_hw_speedup"] = hw
            paper[f"{metric}_base"] = paper_base
            paper[f"{metric}_sw_speedup"] = paper_sw
            paper[f"{metric}_hw_speedup"] = paper_hw
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Figure 7: I/O subsystems",
                columns=("Metric", "Baseline", "SW SVt", "HW SVt"),
                rows=rows,
            )],
            scalars=scalars,
            paper=paper,
        )


@register
class Fig8Memcached(Experiment):
    """Figure 8: memcached latency vs offered load, baseline vs SVt."""

    name = "fig8"
    title = "Figure 8: memcached latency vs load"
    description = "ETC workload sweep: avg/p99 latency against the SLA"
    defaults = {"seed": 7, "requests": 30_000}
    smoke = {"requests": 5_000}

    SLA_US = 500.0

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return _SVT_MODES

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.workloads import memcached

        result = memcached.run(cell, seed=params["seed"],
                               requests=params["requests"])
        return {
            "service_get_us": result.service_get_us,
            "service_set_us": result.service_set_us,
            "points": [[p.offered_kqps, p.avg_us, p.p99_us]
                       for p in result.points],
        }

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        base = payloads[ExecutionMode.BASELINE]
        svt = payloads[ExecutionMode.SW_SVT]
        p99_ratios = [
            bp[2] / sp[2]
            for bp, sp in zip(base["points"], svt["points"])
            if bp[2] <= self.SLA_US
        ]
        p99 = max(p99_ratios) if p99_ratios else 0.0
        avg = (base["points"][0][1] / svt["points"][0][1]
               if base["points"] and svt["points"] else 0.0)

        def max_in_sla(points: list[Any]) -> float:
            ok = [kqps for kqps, _avg, p99_us in points
                  if p99_us <= self.SLA_US]
            return max(ok) if ok else 0.0

        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Figure 8: memcached latency (us) vs load, "
                      "SLA 500 us",
                columns=("kQPS", "base avg", "base p99", "SVt avg",
                         "SVt p99"),
                rows=[
                    Row(f"{bp[0]:.1f}",
                        (f"{bp[1]:.0f}", f"{bp[2]:.0f}",
                         f"{sp[1]:.0f}", f"{sp[2]:.0f}"))
                    for bp, sp in zip(base["points"], svt["points"])
                ],
            )],
            series=[
                Series("baseline p99",
                       [(p[0], p[2]) for p in base["points"]]),
                Series("SVt p99",
                       [(p[0], p[2]) for p in svt["points"]]),
            ],
            scalars={
                "p99_improvement": p99,
                "avg_improvement": avg,
                "base_max_kqps_in_sla": max_in_sla(base["points"]),
                "svt_max_kqps_in_sla": max_in_sla(svt["points"]),
                "base_service_get_us": base["service_get_us"],
                "svt_service_get_us": svt["service_get_us"],
            },
            paper={"p99_improvement": 2.20, "avg_improvement": 1.43,
                   "sla_us": self.SLA_US},
            notes=(
                f"p99 within SLA: {p99:.2f}x (paper 2.20x); "
                f"avg: {avg:.2f}x (paper 1.43x)",
            ),
            meta={
                "plot_title": "p99 latency vs offered load "
                              "(clamped at 1000 us)",
                "y_ceiling": 1000,
                "x_label": "kQPS",
                "y_label": " us",
            },
        )


@register
class Fig9Tpcc(Experiment):
    """Figure 9: TPC-C throughput, baseline vs SVt."""

    name = "fig9"
    title = "Figure 9: TPC-C"
    description = "TPC-C/PostgreSQL transactions per minute"
    defaults = {"transactions": 3}
    smoke = {"transactions": 2}

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return _SVT_MODES

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.workloads import tpcc

        result = tpcc.run(cell, transactions=params["transactions"])
        return {"ktpm": result.ktpm, "txn_ms": result.txn_ms}

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        base = payloads[ExecutionMode.BASELINE]["ktpm"]
        svt = payloads[ExecutionMode.SW_SVT]["ktpm"]
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Figure 9: TPC-C (paper: 6.37 ktpm, 1.18x)",
                columns=("System", "ktpm", "Speedup"),
                rows=[
                    Row("Baseline", (f"{base:.2f}", "1.00x")),
                    Row("SVt", (f"{svt:.2f}", f"{svt / base:.2f}x")),
                ],
            )],
            scalars={"baseline_ktpm": base, "svt_ktpm": svt,
                     "speedup": svt / base},
            paper={"baseline_ktpm": 6.37, "speedup": 1.18},
        )


@register
class Fig10Video(Experiment):
    """Figure 10: dropped frames over five minutes of playback."""

    name = "fig10"
    title = "Figure 10: dropped frames"
    description = "soft-realtime video playback drop counts"
    defaults = {"seed": 7}

    FPS = (24, 60, 120)

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return tuple(f"{fps}:{mode}"
                     for fps in self.FPS for mode in _SVT_MODES)

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.workloads import video

        fps, mode = cell.split(":")
        result = video.run(mode, fps=int(fps), seed=params["seed"])
        return {"dropped": result.dropped, "frames": result.frames,
                "burst_us": result.burst_us}

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        from repro.workloads import video

        rows: list[Row] = []
        scalars: dict[str, Any] = {}
        for fps in self.FPS:
            base = payloads[f"{fps}:{ExecutionMode.BASELINE}"]
            svt = payloads[f"{fps}:{ExecutionMode.SW_SVT}"]
            rows.append(Row(
                f"{fps} FPS",
                (str(base["dropped"]), str(svt["dropped"])),
                paper=f"{video.PAPER[fps]['baseline']}"
                      f"/{video.PAPER[fps]['svt']}",
            ))
            scalars[f"dropped_{fps}_baseline"] = base["dropped"]
            scalars[f"dropped_{fps}_svt"] = svt["dropped"]
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Figure 10: dropped frames over 5 min",
                columns=("Rate", "Baseline drops", "SVt drops"),
                rows=rows,
            )],
            scalars=scalars,
            paper={
                f"dropped_{fps}_{system}": video.PAPER[fps][system]
                for fps in self.FPS
                for system in ("baseline", "svt")
            },
        )
