"""Registered experiments: every paper artifact plus the ablations.

Importing this package populates the registry (each module registers its
experiments at import time); ``repro.exp.registry.ensure_loaded`` does it
lazily for every entry point.
"""

from repro.exp.experiments import (  # noqa: F401  (register on import)
    ablations,
    chaos,
    figures,
    sections,
    tables,
)
