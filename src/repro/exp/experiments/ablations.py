"""Ablation drivers (studies A-C) as registered experiments.

The sweep logic used to live privately inside ``benchmarks/test_ablation_*``;
it is hoisted here so the CLI, the parallel runner and the benchmarks all
drive one implementation.  The remaining ablations (D-J) exercise
machinery that already has a registered experiment (deep nesting,
coexistence, related work, L3) or assert invariants rather than produce
tables, so they stay bench-only.
"""

from __future__ import annotations

from typing import Any

from repro.core.mode import ExecutionMode
from repro.core.system import Machine
from repro.cpu import isa
from repro.cpu.costmodels import default_model
from repro.cpu.costs import CostModel
from repro.exp.registry import Experiment, register
from repro.exp.result import Result, Row, Table

# -- shared drivers -------------------------------------------------------

#: Table-1 parts 3/5 totals (ns): the pool the lazy share is carved from.
_PART3_NS, _PART5_NS = 4890, 1960


def with_lazy_fraction(fraction: float) -> CostModel:
    """CostModel treating ``fraction`` of Table-1 parts 3/5 as lazy."""
    l0_lazy = int(_PART3_NS * fraction)
    l1_lazy = int(_PART5_NS * fraction)
    base = default_model()
    l0_pure = dict(base.l0_handler_pure)
    l1_pure = dict(base.l1_handler_pure)
    l0_pure["CPUID"] = _PART3_NS - l0_lazy
    l1_pure["CPUID"] = _PART5_NS - l1_lazy
    return base.with_overrides(
        l0_lazy_switch=l0_lazy,
        l1_lazy_switch=l1_lazy,
        l0_handler_pure=l0_pure,
        l1_handler_pure=l1_pure,
    )


def hw_speedup(costs: CostModel, iterations: int = 10) -> float:
    """Nested-cpuid baseline/HW-SVt ratio under a cost model."""
    times: dict[str, float] = {}
    for mode in (ExecutionMode.BASELINE, ExecutionMode.HW_SVT):
        machine = Machine(mode=mode, costs=costs)
        machine.run_program(isa.Program([isa.cpuid()]))
        result = machine.run_program(
            isa.Program([isa.cpuid()], repeat=iterations))
        times[mode] = result.ns_per_instruction
    return times[ExecutionMode.BASELINE] / times[ExecutionMode.HW_SVT]


def traced_run(mode: str, repeat: int = 20) -> tuple[float, Any]:
    """(ns_per_op, trace-delta) of a nested cpuid loop in ``mode``."""

    machine = Machine(mode=mode)
    machine.run_program(isa.Program([isa.cpuid()]))        # warmup
    before = machine.tracer.snapshot()
    start = machine.sim.now
    machine.run_program(isa.Program([isa.cpuid()], repeat=repeat))
    elapsed = machine.sim.now - start

    class _Delta:
        totals = {
            key: machine.tracer.totals[key] - before.get(key, 0)
            for key in machine.tracer.totals
        }

        @staticmethod
        def total(*categories: str) -> int:
            if not categories:
                return sum(_Delta.totals.values())
            return sum(_Delta.totals.get(c, 0) for c in categories)

    return elapsed / repeat, _Delta


def hw_model_cross_check(repeat: int = 20) -> dict[str, Any]:
    """Both roads to HW SVt, in ns/op: the paper's §6 scaling applied to
    baseline and SW SVt traces, and the direct simulation."""
    from repro.analysis.hw_model import scale_sw_to_hw

    _, baseline_trace = traced_run(ExecutionMode.BASELINE, repeat)
    _, sw_trace = traced_run(ExecutionMode.SW_SVT, repeat)
    direct_ns, _ = traced_run(ExecutionMode.HW_SVT, repeat)
    return {
        "scaled_from_baseline_ns": scale_sw_to_hw(baseline_trace) / repeat,
        "scaled_from_sw_ns": scale_sw_to_hw(sw_trace) / repeat,
        "direct_ns": direct_ns,
    }


def channel_cpuid_us(placement: str, mechanism: str,
                     iterations: int = 20) -> float:
    """Nested cpuid µs under SW SVt with a given channel variant."""
    machine = Machine(mode=ExecutionMode.SW_SVT, placement=placement,
                      wait_mechanism=mechanism)
    machine.run_program(isa.Program([isa.cpuid()]))
    result = machine.run_program(
        isa.Program([isa.cpuid()], repeat=iterations))
    return result.ns_per_instruction / 1000.0


# -- registered experiments ----------------------------------------------


@register
class AblationLazySplit(Experiment):
    """Ablation A: sweep the lazy/pure handler split of Table 1."""

    name = "ablation_lazy_split"
    title = "Ablation A: lazy/pure handler split"
    description = "HW SVt speedup vs the lazy share of Table-1 parts 3/5"
    defaults = {"iterations": 10}

    FRACTIONS = (0.0, 0.2, 0.423, 0.6, 0.8)

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return tuple(f"{fraction:.3f}" for fraction in self.FRACTIONS)

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        costs = with_lazy_fraction(float(cell))
        return {
            "baseline_us": costs.table1_total() / 1000.0,
            "hw_speedup": hw_speedup(costs, params["iterations"]),
        }

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Ablation A: HW SVt speedup vs lazy share "
                      "(paper 1.94x pins the calibrated 0.423)",
                columns=("lazy share of parts 3+5", "baseline (us)",
                         "HW SVt speedup"),
                rows=[
                    Row(cell,
                        (f"{payloads[cell]['baseline_us']:.2f}",
                         f"{payloads[cell]['hw_speedup']:.2f}x"))
                    for cell in self.cells(params)
                ],
            )],
            scalars={
                f"hw_speedup_at_{cell}": payloads[cell]["hw_speedup"]
                for cell in self.cells(params)
            },
            paper={"hw_speedup_at_0.423": 1.94},
        )


@register
class AblationHwModel(Experiment):
    """Ablation B: the paper's HW-model scaling vs direct simulation."""

    name = "ablation_hw_model"
    title = "Ablation B: HW-model methodologies"
    description = "paper's Sec.-6 scaling vs simulating the hardware"
    defaults = {"repeat": 20}
    smoke = {"repeat": 10}

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        return hw_model_cross_check(repeat=params["repeat"])

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        payload = payloads["all"]
        rows = [
            ("scaled from baseline trace",
             payload["scaled_from_baseline_ns"]),
            ("scaled from SW SVt trace", payload["scaled_from_sw_ns"]),
            ("direct HW SVt simulation", payload["direct_ns"]),
        ]
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Ablation B: two roads to HW SVt",
                columns=("Methodology", "nested cpuid (us)"),
                rows=[Row(label, (f"{ns / 1000.0:.2f}",))
                      for label, ns in rows],
            )],
            scalars={
                "scaled_from_baseline_us":
                    payload["scaled_from_baseline_ns"] / 1000.0,
                "scaled_from_sw_us":
                    payload["scaled_from_sw_ns"] / 1000.0,
                "direct_us": payload["direct_ns"] / 1000.0,
            },
        )


@register
class AblationWait(Experiment):
    """Ablation C: wait mechanism x placement for the SW SVt channel."""

    name = "ablation_wait"
    title = "Ablation C: wait mechanism x placement"
    description = "nested cpuid with every channel mechanism/placement"
    defaults = {"iterations": 20}
    smoke = {"iterations": 10}

    PLACEMENTS = ("smt", "core", "numa")
    MECHANISMS = ("polling", "mwait", "mutex")

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return tuple(
            f"{placement}:{mechanism}"
            for placement in self.PLACEMENTS
            for mechanism in self.MECHANISMS
        )

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        placement, mechanism = cell.split(":")
        return channel_cpuid_us(placement, mechanism,
                                params["iterations"])

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Nested cpuid with SW SVt channel variants (raw "
                      "channel cost; polling interference handled in "
                      "sec61)",
                columns=("placement",) + self.MECHANISMS,
                rows=[
                    Row(placement, tuple(
                        f"{payloads[f'{placement}:{mech}']:.2f} us"
                        for mech in self.MECHANISMS
                    ))
                    for placement in self.PLACEMENTS
                ],
            )],
            scalars={
                cell.replace(":", "_") + "_us": payloads[cell]
                for cell in self.cells(params)
            },
            paper={"smt_mwait_us": 8.46},
        )
