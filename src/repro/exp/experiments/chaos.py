"""The chaos experiment: a resilience matrix over fault rate x mode.

Each cell arms a seeded :class:`~repro.faults.plan.FaultPlan` on a fresh
:class:`~repro.core.system.Machine` and runs a nested cpuid loop while
the injector drops/duplicates/delays/corrupts ring commands (SW SVt),
fires spurious interrupts, and flips VMCS fields (all modes).  The cell
payload is the injector's scoreboard: injected/recovered counts per
fault class, watchdog activity, degradations and deadlocks.

Determinism: every cell's randomness derives from ``seed`` via per-site
streams, so the merged result is byte-identical at any ``--jobs``; the
rate-0.0 column takes no draws at all and must reproduce the fault-free
machine exactly (asserted by ``tests/faults/test_chaos_experiment.py``).
"""

from __future__ import annotations

from typing import Any

from repro.core.mode import ExecutionMode
from repro.exp.registry import Experiment, register
from repro.exp.result import Result, Row, Table
from repro.faults.plan import FaultPlan
from repro.faults.scenario import run_chaos_cell


def parse_rates(rates: str) -> tuple[float, ...]:
    """Parse the comma-separated ``rates`` parameter (a string because
    experiment params must be JSON scalars)."""
    return tuple(float(part) for part in str(rates).split(",") if part)


@register
class Chaos(Experiment):
    """Fault-rate sweep across execution modes."""

    name = "chaos"
    title = "Chaos: resilience under seeded fault injection"
    description = ("per-fault-rate injected/recovered/degraded/deadlocked "
                   "matrix across BASELINE, SW SVt and HW SVt")
    defaults = {"iterations": 30, "seed": 2019,
                "rates": "0.0,0.02,0.1,0.3"}
    smoke = {"iterations": 10, "seed": 2019, "rates": "0.0,0.1"}

    MODES = (ExecutionMode.BASELINE, ExecutionMode.SW_SVT,
             ExecutionMode.HW_SVT)

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return tuple(
            f"{mode}:{rate:g}"
            for mode in self.MODES
            for rate in parse_rates(params["rates"])
        )

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        mode, rate = cell.rsplit(":", 1)
        plan = FaultPlan(seed=int(params["seed"]), rate=float(rate))
        return run_chaos_cell(mode, plan,
                              iterations=int(params["iterations"]))

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        cells = self.cells(params)
        rows = []
        for cell in cells:
            payload = payloads[cell]
            counters = payload["counters"]
            rows.append(Row(cell, (
                str(payload["injected_total"]),
                str(payload["recovered_total"]),
                str(counters["degraded"]),
                str(counters["deadlocked"]),
                str(payload["retransmissions"]),
                f"{payload['ns_per_op'] / 1000.0:.2f}",
            )))
        injected = sum(payloads[c]["injected_total"] for c in cells)
        recovered = sum(payloads[c]["recovered_total"] for c in cells)
        degraded = sum(payloads[c]["counters"]["degraded"] for c in cells)
        deadlocked = sum(
            payloads[c]["counters"]["deadlocked"] for c in cells)
        unresolved = injected - recovered - degraded - deadlocked
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Resilience matrix (mode:rate cells; every "
                      "injected fault must end recovered, degraded or "
                      "deadlocked)",
                columns=("mode:rate", "injected", "recovered",
                         "degraded", "deadlocked", "retransmits",
                         "nested cpuid (us)"),
                rows=rows,
            )],
            scalars={
                "injected_total": injected,
                "recovered_total": recovered,
                "degraded_total": degraded,
                "deadlocked_total": deadlocked,
                "unresolved_total": unresolved,
                "recovery_ratio": (recovered / injected) if injected
                else 1.0,
            },
            notes=("rate 0.0 cells are byte-identical to a fault-free "
                   "machine (zero rng draws); see docs/robustness.md",),
        )
