"""Section studies and extensions as registered experiments.

Covers §6.1 (channel microbenchmarks), the deep-nesting and functional-L3
extensions, §3.3 SVt/SMT coexistence, and the §7 related-work comparison.
"""

from __future__ import annotations

from typing import Any

from repro.core.mode import ExecutionMode
from repro.exp.registry import Experiment, register
from repro.exp.result import Result, Row, Table


@register
class Sec61Channels(Experiment):
    """§6.1: wait-mechanism observations + the Figure-6 bridge."""

    name = "sec61"
    title = "Sec. 6.1: communication channels"
    description = "wait-mechanism observations and cpuid impact"
    defaults = {"iterations": 40}
    smoke = {"iterations": 10}

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.workloads import channels

        sweep = channels.sweep()
        baseline_us, impacts = channels.cpuid_with_mechanisms(
            iterations=params["iterations"])
        return {
            "observations": dict(sweep.observations),
            "baseline_us": baseline_us,
            "impacts": [
                [i.mechanism, i.cpuid_us, i.speedup_vs_baseline]
                for i in impacts
            ],
        }

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        payload = payloads["all"]
        observations = payload["observations"]
        scalars = {f"observation_{name}": bool(holds)
                   for name, holds in observations.items()}
        scalars["baseline_us"] = payload["baseline_us"]
        for mechanism, us, speedup in payload["impacts"]:
            scalars[f"{mechanism}_us"] = us
            scalars[f"{mechanism}_speedup"] = speedup
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[
                Table(
                    title="Sec. 6.1 observations",
                    columns=("Observation", "Holds"),
                    rows=[Row(name, ("OK" if holds else "FAIL",))
                          for name, holds in observations.items()],
                ),
                Table(
                    title=f"nested cpuid with each wait mechanism "
                          f"(baseline {payload['baseline_us']:.2f} us)",
                    columns=("Mechanism", "Time (us)", "Speedup"),
                    rows=[
                        Row(mechanism, (f"{us:6.2f}", f"{speedup:.2f}x"))
                        for mechanism, us, speedup in payload["impacts"]
                    ],
                ),
            ],
            scalars=scalars,
            paper={"mwait_speedup": 1.23},
        )


@register
class DeepNesting(Experiment):
    """Deep-nesting extension: trap cost vs virtualization depth."""

    name = "deep"
    title = "Deep nesting extension"
    description = "analytic trap cost at depth k, baseline vs SVt"
    defaults = {"depth": 5}

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.virt.deep import DeepNestingModel

        model = DeepNestingModel()
        return [[d, base_us, svt_us, speedup]
                for d, base_us, svt_us, speedup
                in model.table(max_depth=params["depth"])]

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        rows = payloads["all"]
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Deep nesting extension (aux/reflection = 2)",
                columns=("Trap from", "baseline (us)", "SVt (us)",
                         "speedup"),
                rows=[
                    Row(f"L{depth}",
                        (f"{base_us:.2f}", f"{svt_us:.2f}",
                         f"{speedup:.2f}x"))
                    for depth, base_us, svt_us, speedup in rows
                ],
            )],
            scalars={
                f"speedup_l{depth}": speedup
                for depth, _b, _s, speedup in rows
            },
        )


@register
class L3Functional(Experiment):
    """Functional third level: L2-privileged ops as depth-2 exits."""

    name = "l3"
    title = "Functional third level"
    description = "live L3 cpuid/timer cost in every execution mode"
    defaults = {"repeat": 4}

    def cells(self, params: dict[str, Any]) -> tuple[str, ...]:
        return ExecutionMode.ALL

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.core.system import Machine
        from repro.cpu import isa
        from repro.virt.hypervisor import MSR_TSC_DEADLINE
        from repro.virt.l3 import install_third_level

        repeat = params["repeat"]
        stack = install_third_level(Machine(mode=cell))
        cpuid_ns, _ = stack.run_program(
            isa.Program([isa.cpuid()], repeat=repeat))
        timer_ns, _ = stack.run_program(
            isa.Program([isa.wrmsr(MSR_TSC_DEADLINE, 10**9)],
                        repeat=repeat))
        return {"cpuid_us": cpuid_ns / (repeat * 1000.0),
                "timer_us": timer_ns / (repeat * 1000.0)}

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Functional third level (privileged L2 ops "
                      "recurse as depth-2 exits)",
                columns=("Mode", "L3 cpuid (us)", "L3 timer write (us)"),
                rows=[
                    Row(mode,
                        (f"{payloads[mode]['cpuid_us']:.2f}",
                         f"{payloads[mode]['timer_us']:.2f}"))
                    for mode in ExecutionMode.ALL
                ],
            )],
            scalars={
                f"{mode}_{op}_us": payloads[mode][f"{op}_us"]
                for mode in ExecutionMode.ALL
                for op in ("cpuid", "timer")
            },
        )


@register
class Coexist(Experiment):
    """§3.3: when does SVt beat using the sibling thread for SMT?"""

    name = "coexist"
    title = "SVt/SMT coexistence"
    description = "crossover nested-trap rate where SVt beats SMT"
    defaults = {}

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.core.coexist import CoexistConfig, crossover_trap_rate

        config = CoexistConfig()
        return {"crossover_traps_per_s": crossover_trap_rate(config),
                "smt_yield": config.smt_yield}

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        payload = payloads["all"]
        rate = payload["crossover_traps_per_s"]
        return Result.create(
            experiment=self.name,
            params=params,
            scalars=payload,
            notes=(
                f"SVt overtakes SMT above {rate:,.0f} nested traps/s "
                f"(SMT yield {payload['smt_yield']:.2f}x)",
            ),
        )


@register
class RelatedWork(Experiment):
    """§7: the alternatives priced on one nested I/O operation."""

    name = "related"
    title = "Sec. 7 related-work comparison"
    description = "SR-IOV/side-core/ELI vs SVt on one nested I/O op"
    defaults = {}

    def run_cell(self, cell: str, params: dict[str, Any]) -> Any:
        from repro.core.related_work import speedup_table

        return [[name, us, speedup, caveats]
                for name, us, speedup, caveats in speedup_table()]

    def merge(self, params: dict[str, Any],
              payloads: dict[str, Any]) -> Result:
        rows = payloads["all"]
        return Result.create(
            experiment=self.name,
            params=params,
            tables=[Table(
                title="Sec. 7 alternatives on one nested I/O operation",
                columns=("Technique", "op (us)", "Speedup", "Caveats"),
                rows=[
                    Row(name, (f"{us:.1f}", f"{speedup:.2f}x", caveats))
                    for name, us, speedup, caveats in rows
                ],
            )],
            scalars={
                f"{name}_speedup": speedup
                for name, _us, speedup, _c in rows
            },
        )
