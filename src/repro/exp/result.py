"""Structured experiment results (frozen, JSON-serializable).

Every experiment in the registry returns a :class:`Result` instead of
printing text.  A result carries:

* **tables** — presentation-ready rows (:class:`Table` of :class:`Row`),
  exactly what the CLI renders; cells are pre-formatted strings so serial
  and parallel runs emit byte-identical output.
* **series** — ``(x, y)`` curves (:class:`Series`) for the line plots.
* **scalars** — the raw machine-facing numbers benchmarks assert on.
* **paper** — the paper's expected values for those scalars, attached so
  any consumer can compute measured-vs-paper deltas without re-reading
  the paper.
* **notes** — free-form trailing lines (headline sentences).

Everything is an immutable dataclass over JSON scalars; mappings are
stored as sorted ``(key, value)`` pair tuples so instances are genuinely
frozen and hashable, and the canonical JSON encoding is deterministic:
``Result.from_dict(result.to_dict())`` round-trips exactly and
``to_json`` output is byte-stable for equal results.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Union

from repro.errors import ConfigError
from repro.obs.metrics import flatten_metrics

#: Version tag embedded in every serialized result.
SCHEMA = "repro-result/1"

#: The JSON-scalar leaves every result document is built from.
Scalar = Union[str, int, float, bool, None]

#: Frozen-mapping encoding: sorted ``(key, value)`` pairs.
Pairs = tuple[tuple[str, Scalar], ...]

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_scalar(value: Any, where: str) -> Scalar:
    if not isinstance(value, _SCALAR_TYPES):
        raise ConfigError(
            f"{where} must be a JSON scalar, got {type(value).__name__}"
        )
    return value


def freeze_mapping(
    mapping: Union[Mapping[str, Any], Pairs, None],
    where: str = "mapping",
) -> Pairs:
    """``dict`` -> sorted ``((key, value), ...)`` pair tuple."""
    if mapping is None:
        return ()
    if isinstance(mapping, tuple):
        mapping = dict(mapping)
    items = []
    for key in sorted(mapping):
        items.append((str(key), _check_scalar(mapping[key],
                                              f"{where}[{key!r}]")))
    return tuple(items)


@dataclass(frozen=True)
class Row:
    """One table row: a label, formatted cells, and the paper's value.

    ``paper`` holds the paper-reported rendering for this row ("" when
    the paper gives none); tables grow a trailing ``Paper`` column when
    any row carries one.
    """

    label: str
    values: tuple[Scalar, ...] = ()
    paper: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(
            _check_scalar(v, f"row {self.label!r} cell") for v in self.values
        ))

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"label": self.label,
                               "values": list(self.values)}
        if self.paper:
            doc["paper"] = self.paper
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> Row:
        return cls(label=doc["label"], values=tuple(doc["values"]),
                   paper=doc.get("paper", ""))


@dataclass(frozen=True)
class Table:
    """One rendered table (or bar group, per ``kind``)."""

    title: str
    columns: tuple[str, ...]
    rows: tuple[Row, ...] = ()
    kind: str = "table"        # "table" | "bars" (render hint)
    unit: str = ""             # bar-chart unit suffix

    def __post_init__(self) -> None:
        if self.kind not in ("table", "bars"):
            raise ConfigError(f"unknown table kind {self.kind!r}")
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "rows", tuple(self.rows))

    def to_dict(self) -> dict[str, Any]:
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [row.to_dict() for row in self.rows],
            "kind": self.kind,
            "unit": self.unit,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> Table:
        return cls(
            title=doc["title"],
            columns=tuple(doc["columns"]),
            rows=tuple(Row.from_dict(r) for r in doc["rows"]),
            kind=doc.get("kind", "table"),
            unit=doc.get("unit", ""),
        )


@dataclass(frozen=True)
class Series:
    """One named ``(x, y)`` curve (Fig. 8's p99-vs-load lines)."""

    name: str
    points: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(
            (float(x), float(y)) for x, y in self.points
        ))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name,
                "points": [[x, y] for x, y in self.points]}

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> Series:
        return cls(name=doc["name"],
                   points=tuple((x, y) for x, y in doc["points"]))


@dataclass(frozen=True)
class Result:
    """Complete outcome of one experiment run."""

    experiment: str
    params: Pairs = ()
    tables: tuple[Table, ...] = ()
    series: tuple[Series, ...] = ()
    scalars: Pairs = ()
    paper: Pairs = ()
    notes: tuple[str, ...] = ()
    meta: Pairs = ()           # render hints (plot title, y ceiling, ...)

    @classmethod
    def create(cls, experiment: str,
               params: Optional[Mapping[str, Any]] = None,
               tables: Iterable[Table] = (),
               series: Iterable[Series] = (),
               scalars: Optional[Mapping[str, Any]] = None,
               paper: Optional[Mapping[str, Any]] = None,
               notes: Iterable[str] = (),
               meta: Optional[Mapping[str, Any]] = None) -> Result:
        """Build a result from plain dicts/lists (the authoring API)."""
        return cls(
            experiment=experiment,
            params=freeze_mapping(params, "params"),
            tables=tuple(tables),
            series=tuple(series),
            scalars=freeze_mapping(scalars, "scalars"),
            paper=freeze_mapping(paper, "paper"),
            notes=tuple(notes),
            meta=freeze_mapping(meta, "meta"),
        )

    # -- mapping views ---------------------------------------------------

    @property
    def params_dict(self) -> dict[str, Scalar]:
        return dict(self.params)

    @property
    def scalars_dict(self) -> dict[str, Scalar]:
        return dict(self.scalars)

    @property
    def paper_dict(self) -> dict[str, Scalar]:
        return dict(self.paper)

    @property
    def meta_dict(self) -> dict[str, Scalar]:
        return dict(self.meta)

    def scalar(self, key: str) -> Scalar:
        """One measured number, by name (raises ``KeyError`` if absent)."""
        return dict(self.scalars)[key]

    def get_series(self, name: str) -> Series:
        for series in self.series:
            if series.name == name:
                return series
        raise KeyError(name)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "experiment": self.experiment,
            "params": dict(self.params),
            "tables": [t.to_dict() for t in self.tables],
            "series": [s.to_dict() for s in self.series],
            "scalars": dict(self.scalars),
            "paper": dict(self.paper),
            "notes": list(self.notes),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> Result:
        if doc.get("schema") != SCHEMA:
            raise ConfigError(
                f"unsupported result schema {doc.get('schema')!r}"
            )
        return cls.create(
            experiment=doc["experiment"],
            params=doc.get("params"),
            tables=[Table.from_dict(t) for t in doc.get("tables", [])],
            series=[Series.from_dict(s) for s in doc.get("series", [])],
            scalars=doc.get("scalars"),
            paper=doc.get("paper"),
            notes=tuple(doc.get("notes", [])),
            meta=doc.get("meta"),
        )

    def to_json(self) -> str:
        """Canonical encoding: sorted keys, 2-space indent, newline."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> Result:
        return cls.from_dict(json.loads(text))


def metrics_pairs(snapshot: Mapping[str, Any]) -> Pairs:
    """Flatten an observability metrics snapshot into frozen pairs.

    Lets an experiment attach selected per-run counters to a result's
    ``scalars``/``meta`` without breaking the frozen-mapping contract:
    histogram entries become ``key!count``/``key!sum`` integers, and the
    ordering is the deterministic one `repro.obs.metrics` guarantees.
    """
    pairs: list[tuple[str, Scalar]] = []
    for key, value in flatten_metrics(snapshot):
        pairs.append((str(key), _check_scalar(value, f"metrics[{key!r}]")))
    return tuple(pairs)


def canonical_json(doc: Any) -> str:
    """The one JSON encoding used everywhere byte-identity matters."""
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"
