"""`repro dse` — design-space exploration over SVt cost parameters.

Sweeps the design parameters the paper leaves open — context-switch
cost, mwait wake latency, stall/resume hardware cost, channel cache-line
placement — across every registered cost model, and reports where the
three systems (BASELINE / SW SVt / HW SVt) cross over.

The driver is cheap by construction: it *simulates* each base model's
three modes exactly once (:func:`repro.analysis.replay.record_cpuid`)
and then re-prices those recordings under every sweep point
(:func:`repro.analysis.replay.reprice`), which is pure integer
arithmetic — a few hundred design points cost milliseconds, not
simulations.  Replay-vs-direct parity is pinned exactly by
``tests/analysis/test_replay.py``.

Like ``repro bench`` and ``repro chaos``, this is a standalone driver,
**not** a registered experiment: its output is a design-space artifact
(``results/dse_frontier.json``, schema ``repro-dse/1``), not a paper
claim, so it stays out of ``repro all`` and the experiment registry.

The artifact is deterministic: the workload is fixed, replay arithmetic
is integral, and speedups are rounded decimals — so the committed copy
is byte-stable and CI's dse-smoke job can regenerate and validate it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from repro.core.mode import ExecutionMode
from repro.cpu import costmodels
from repro.errors import ConfigError
from repro.exp.result import canonical_json

#: Schema tag of the dse_frontier.json document.
SCHEMA = "repro-dse/1"

#: Context-switch scale axis, in tenths (integer cost arithmetic):
#: 5 -> half the base model's switch/lazy costs, 40 -> 4x.
SCALE_TENTHS = (5, 10, 20, 40)

#: mwait C1-exit wake latency axis, ns (paper §5.2 measures 60).
MWAIT_WAKE = (30, 60, 120, 240)

#: HW stall/resume event cost axis, ns.  The paper (§4) argues ~20;
#: the high end asks how slow the hardware event may get before HW SVt
#: forfeits its advantage (a nested cpuid pays four per trap).
STALL_RESUME = (10, 20, 80, 320, 1280)

#: SVt-thread placement axis (paper §6.1's three distances).
PLACEMENTS = ("smt", "core", "numa")

#: The smoke grid: one point per axis extreme, two base models.
SMOKE = {
    "models": ("xeon-paper", "fast-switch"),
    "scale_tenths": (10, 40),
    "mwait_wake": (60,),
    "stall_resume": (20, 1280),
    "placements": ("smt", "numa"),
}

#: Cost-model fields scaled by the switch axis — every constant the
#: paper's methodology (§6) counts as context switching.
_SWITCH_FIELDS = (
    "switch_l2_l0",
    "switch_l0_l1",
    "l0_lazy_switch",
    "l1_lazy_switch",
    "l0_lazy_direct",
    "l0_single_lazy",
)

_MODES = (ExecutionMode.BASELINE, ExecutionMode.SW_SVT,
          ExecutionMode.HW_SVT)


def _scaled(base: Any, tenths: int, mwait_wake: int,
            stall_resume: int) -> Any:
    """A sweep-point variant of ``base`` (plain ``with_overrides`` —
    the point is an unregistered perturbation, not a named model)."""
    overrides: dict[str, int] = {
        name: getattr(base, name) * tenths // 10
        for name in _SWITCH_FIELDS
    }
    overrides["mwait_wake"] = mwait_wake
    overrides["svt_stall_resume"] = stall_resume
    return base.with_overrides(**overrides)


def _record_base(model_name: str, iterations: int) -> dict[str, Any]:
    """Simulate the three modes once under ``model_name``."""
    from repro.analysis import replay

    return {
        mode: replay.record_cpuid(mode=mode, iterations=iterations,
                                  costs=model_name)
        for mode in _MODES
    }


def sweep(models: Sequence[str], scale_tenths: Sequence[int],
          mwait_wake: Sequence[int], stall_resume: Sequence[int],
          placements: Sequence[str],
          iterations: int = 50) -> list[dict[str, Any]]:
    """All design points: reprice each base recording per grid cell."""
    from repro.analysis import replay

    points: list[dict[str, Any]] = []
    for model_name in models:
        base = costmodels.get_model(model_name)
        traces = _record_base(model_name, iterations)
        for tenths in scale_tenths:
            for wake in mwait_wake:
                for stall in stall_resume:
                    target = _scaled(base, tenths, wake, stall)
                    for placement in placements:
                        ns = {
                            mode: replay.reprice(
                                traces[mode], target,
                                placement=placement,
                            ).total_ns() // iterations
                            for mode in _MODES
                        }
                        ranking = sorted(ns, key=lambda m: (ns[m], m))
                        points.append({
                            "model": model_name,
                            "switch_scale_tenths": tenths,
                            "mwait_wake": wake,
                            "svt_stall_resume": stall,
                            "placement": placement,
                            "ns_per_op": dict(ns),
                            "ranking": ">".join(ranking),
                            "sw_speedup": round(
                                ns[ExecutionMode.BASELINE]
                                / ns[ExecutionMode.SW_SVT], 4),
                            "hw_speedup": round(
                                ns[ExecutionMode.BASELINE]
                                / ns[ExecutionMode.HW_SVT], 4),
                            "winner": ranking[0],
                        })
    return points


def _frontier(points: Sequence[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Ranking transitions along the switch-scale axis.

    For each (model, mwait, stall, placement) series ordered by
    increasing switch cost, record where the BASELINE/SW/HW *ordering*
    changes — not just the winner, so an SW-vs-BASELINE flip behind a
    leading HW SVt still registers (the numa-placement series are the
    canonical case: the channel's cross-socket hops outprice the very
    switches they replace until the switch axis scales up).  A series
    that never re-ranks contributes one entry with an empty
    ``crossovers`` list, so consumers can tell "stable" from "not
    swept".
    """
    series: dict[tuple[Any, ...], list[Mapping[str, Any]]] = {}
    for point in points:
        key = (point["model"], point["mwait_wake"],
               point["svt_stall_resume"], point["placement"])
        series.setdefault(key, []).append(point)

    frontier: list[dict[str, Any]] = []
    for key in sorted(series):
        ordered = sorted(series[key],
                         key=lambda p: p["switch_scale_tenths"])
        crossovers: list[dict[str, Any]] = []
        for before, after in zip(ordered, ordered[1:]):
            if before["ranking"] != after["ranking"]:
                crossovers.append({
                    "at_scale_tenths": after["switch_scale_tenths"],
                    "from": before["ranking"],
                    "to": after["ranking"],
                })
        model, wake, stall, placement = key
        frontier.append({
            "model": model,
            "mwait_wake": wake,
            "svt_stall_resume": stall,
            "placement": placement,
            "rankings": [p["ranking"] for p in ordered],
            "crossovers": crossovers,
        })
    return frontier


def build_document(models: Sequence[str],
                   scale_tenths: Sequence[int] = SCALE_TENTHS,
                   mwait_wake: Sequence[int] = MWAIT_WAKE,
                   stall_resume: Sequence[int] = STALL_RESUME,
                   placements: Sequence[str] = PLACEMENTS,
                   iterations: int = 50) -> dict[str, Any]:
    """The full ``repro-dse/1`` document for one sweep."""
    points = sweep(models, scale_tenths, mwait_wake, stall_resume,
                   placements, iterations=iterations)
    winners: dict[str, int] = {mode: 0 for mode in _MODES}
    for point in points:
        winners[point["winner"]] += 1
    return {
        "schema": SCHEMA,
        "workload": {"kind": "cpuid", "level": 2,
                     "iterations": iterations},
        "models": sorted(models),
        "axes": {
            "switch_scale_tenths": list(scale_tenths),
            "mwait_wake": list(mwait_wake),
            "svt_stall_resume": list(stall_resume),
            "placement": list(placements),
        },
        "points": points,
        "frontier": _frontier(points),
        "summary": {
            "n_points": len(points),
            "wins": winners,
        },
    }


def validate_document(doc: Mapping[str, Any]) -> None:
    """Schema check used by tests and CI's dse-smoke job."""
    if doc.get("schema") != SCHEMA:
        raise ConfigError(
            f"dse document schema {doc.get('schema')!r} != {SCHEMA!r}")
    for section in ("workload", "models", "axes", "points", "frontier",
                    "summary"):
        if section not in doc:
            raise ConfigError(f"dse document missing {section!r}")
    if not doc["points"]:
        raise ConfigError("dse document has no design points")
    point_keys = {"model", "switch_scale_tenths", "mwait_wake",
                  "svt_stall_resume", "placement", "ns_per_op",
                  "ranking", "sw_speedup", "hw_speedup", "winner"}
    for point in doc["points"]:
        missing = point_keys - set(point)
        if missing:
            raise ConfigError(f"dse point missing {sorted(missing)}")
        if set(point["ns_per_op"]) != set(_MODES):
            raise ConfigError("dse point prices wrong mode set")
        if point["winner"] not in _MODES:
            raise ConfigError(f"unknown winner {point['winner']!r}")
    if doc["summary"]["n_points"] != len(doc["points"]):
        raise ConfigError("dse summary point count mismatch")


def default_out_path() -> Path:
    """``<repo>/results/dse_frontier.json`` next to the package."""
    import repro

    root = Path(repro.__file__).resolve().parents[2]
    return root / "results" / "dse_frontier.json"


def render(doc: Mapping[str, Any]) -> str:
    """Terminal summary: wins per system plus each crossover found."""
    lines = [
        "repro dse — SVt design-space sweep "
        f"({doc['summary']['n_points']} points, "
        f"models: {', '.join(doc['models'])})",
        "",
        "wins per system (lowest ns/op):",
    ]
    for mode in _MODES:
        lines.append(f"  {mode:10s} {doc['summary']['wins'][mode]:5d}")
    crossed = [entry for entry in doc["frontier"] if entry["crossovers"]]
    lines.append("")
    lines.append(f"crossovers along the switch-cost axis "
                 f"({len(crossed)} of {len(doc['frontier'])} series):")
    for entry in crossed:
        for crossover in entry["crossovers"]:
            lines.append(
                f"  {entry['model']:14s} placement={entry['placement']:5s}"
                f" mwait={entry['mwait_wake']:4d}"
                f" stall={entry['svt_stall_resume']:4d}"
                f" at scale {crossover['at_scale_tenths']/10:.1f}x:"
                f" {crossover['from']} -> {crossover['to']}"
            )
    if not crossed:
        lines.append("  (none in this grid)")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro dse",
        description="sweep SVt design parameters by re-pricing recorded "
                    "traces; write the crossover frontier artifact",
    )
    parser.add_argument("--models", nargs="+", metavar="NAME",
                        choices=costmodels.model_names(),
                        help="base cost models to sweep "
                             "(default: every registered model)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grid for CI (two models, axis "
                             "extremes only)")
    parser.add_argument("--iterations", type=int, default=50,
                        help="recorded cpuid iterations per mode "
                             "(default 50)")
    parser.add_argument("--out", type=Path, default=None,
                        help="artifact path (default "
                             "results/dse_frontier.json; '-' skips "
                             "writing)")
    parser.add_argument("--json", action="store_true",
                        help="print the canonical JSON document to "
                             "stdout instead of the summary")
    args = parser.parse_args(argv)

    if args.smoke:
        doc = build_document(
            models=list(args.models or SMOKE["models"]),
            scale_tenths=SMOKE["scale_tenths"],
            mwait_wake=SMOKE["mwait_wake"],
            stall_resume=SMOKE["stall_resume"],
            placements=SMOKE["placements"],
            iterations=args.iterations,
        )
    else:
        doc = build_document(
            models=list(args.models or costmodels.model_names()),
            iterations=args.iterations,
        )
    validate_document(doc)

    out = default_out_path() if args.out is None else args.out
    if str(out) != "-":
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(canonical_json(doc))
    if args.json:
        sys.stdout.write(canonical_json(doc))
    else:
        sys.stdout.write(render(doc))
        if str(out) != "-":
            sys.stdout.write(f"\nwrote {out}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
