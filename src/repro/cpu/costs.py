"""Every timing constant in the simulator, calibrated to the paper.

The anchor is paper **Table 1** (time breakdown of one nested ``cpuid``,
total 10.40 µs)::

    part 0  L2 work                    0.05 us
    part 1  switch L2<->L0             0.81 us
    part 2  transform vmcs02/vmcs12    1.29 us
    part 3  L0 handler                 4.89 us
    part 4  switch L0<->L1             1.40 us
    part 5  L1 handler                 1.96 us

Paper §2.3 (last paragraph) and §6 note that parts 3 and 5 *fold in* lazy
register/VMCS save-restore that is really context-switch cost.  We split
them so the three execution modes price switching differently:

* part 3 = ``l0_handler_pure[CPUID]`` (2.82 µs) + ``l0_lazy_switch`` (2.07 µs)
* part 5 = ``l1_handler_pure[CPUID]`` (1.12 µs) + ``l1_lazy_switch`` (0.84 µs)

With this split the three modes land exactly on the paper's Figure 6:

* baseline nested cpuid = 10.40 µs,
* **HW SVt** drops every explicit and lazy switch, keeping 4 stall/resume
  events (20 ns each): 5.36 µs → 1.94× (paper: 1.94×),
* **SW SVt** drops only the L0↔L1 switch and L1's lazy share, paying one
  command-ring round trip (2 × 150 ns): 8.46 µs → 1.23× (paper: 1.23×).

All other constants (per-exit-reason handler times, channel/wait
mechanics, interrupt costs) are effective values chosen so the subsystem
and application results land near the paper's reported shapes; each is a
single number here so ablations can sweep them.
"""

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError


def _default_l0_pure():
    """Pure (non-lazy) L0 nested-handler time by exit reason, ns.

    CPUID is the Table-1 calibration point.  The others are scaled by the
    relative complexity KVM's handlers exhibit: virtio MMIO emulation and
    VMCS shadowing (vmptrld) are heavy, interrupt window work is light.
    """
    # paper: Table 1 part 3 (CPUID anchor, §2.3 lazy split); other
    # reasons are effective values scaled per §6.2's subsystem shapes.
    return {
        "CPUID": 2820,
        "MSR_READ": 2300,
        "MSR_WRITE": 2500,
        "IO_INSTRUCTION": 3100,
        "EPT_MISCONFIG": 3400,
        "EPT_VIOLATION": 3800,
        "VMCALL": 2000,
        "VMPTRLD": 5200,
        # VMREAD/VMWRITE emulation is a short field-permission check plus
        # a shadow-area copy — the aux traps of Alg. 1 lines 8-10 are
        # frequent but individually light.
        "VMREAD": 500,
        "VMWRITE": 620,
        "VMRESUME": 2900,
        "INVEPT": 2100,
        "EXTERNAL_INTERRUPT": 1150,
        "INTERRUPT_WINDOW": 900,
        "RDTSC": 900,
        "HLT": 850,
        "PREEMPTION_TIMER": 950,
        "CR_ACCESS": 1700,
        "CTXT_ACCESS": 1400,
        "SVT_BLOCKED": 700,
    }


def _default_l1_pure():
    """Pure L1 guest-hypervisor handler time by exit reason, ns."""
    # paper: Table 1 part 5 (CPUID anchor, §2.3 lazy split); other
    # reasons are effective values scaled per §6.2's subsystem shapes.
    return {
        "CPUID": 1120,
        "MSR_READ": 950,
        "MSR_WRITE": 1050,
        "IO_INSTRUCTION": 1900,
        "EPT_MISCONFIG": 2400,
        "EPT_VIOLATION": 2700,
        "VMCALL": 900,
        # Emulating a nested hypervisor's VMX instructions (the L3 case).
        "VMREAD": 700,
        "VMWRITE": 820,
        "INVEPT": 1300,
        "EXTERNAL_INTERRUPT": 700,
        "HLT": 500,
        "PREEMPTION_TIMER": 650,
        "CR_ACCESS": 1000,
        "SVT_BLOCKED": 400,
    }


def _default_l0_single():
    """L0 handler time for exits from a *single-level* guest (no nesting
    machinery).  CPUID here makes Fig. 6's L1 bar ≈ 1.86 µs."""
    # paper: Fig. 6 L1 bar (CPUID anchor); other reasons are effective
    # values scaled per §6.2's subsystem shapes.
    return {
        "CPUID": 1000,
        "MSR_READ": 850,
        "MSR_WRITE": 950,
        "IO_INSTRUCTION": 1500,
        "EPT_MISCONFIG": 1900,
        "EPT_VIOLATION": 2200,
        "VMCALL": 700,
        "VMPTRLD": 5200,
        "VMREAD": 1200,
        "VMWRITE": 1300,
        "VMRESUME": 2900,
        "INVEPT": 1800,
        "EXTERNAL_INTERRUPT": 800,
        "HLT": 450,
        "PREEMPTION_TIMER": 600,
        "CR_ACCESS": 900,
        "CTXT_ACCESS": 1100,
    }


@dataclass(frozen=True)
class CostModel:
    """Immutable bag of timing constants (nanoseconds unless noted)."""

    # -- Table 1 calibration (see module docstring) ----------------------
    # The switch and transform figures in Table 1 are totals over one
    # whole nested-trap cycle, which crosses each boundary twice
    # (Alg. 1 lines 2/15 and 6/12); per-crossing charges are the halves
    # exposed as *_each properties below.
    cpuid_guest_work: int = 50     # paper: Table 1 part 0
    switch_l2_l0: int = 810        # paper: Table 1 part 1
    switch_l0_l1: int = 1400       # paper: Table 1 part 4
    vmcs_transform: int = 1290     # paper: Table 1 part 2
    l0_lazy_switch: int = 2070     # paper: Table 1 part 3, §2.3 split
    l1_lazy_switch: int = 840      # paper: Table 1 part 5, §2.3 split
    # Lazy save/restore for exits L0 handles *without* reflecting to L1
    # (external interrupts etc.) — lighter than the full nested cycle.
    l0_lazy_direct: int = 900      # paper: §2.3 (effective share)
    # Lazy share of the single-level exit path (plain L1 guest).
    l0_single_lazy: int = 400      # paper: §2.3 (effective share)
    l0_handler_pure: dict = field(default_factory=_default_l0_pure)
    l1_handler_pure: dict = field(default_factory=_default_l1_pure)
    l0_single_level: dict = field(default_factory=_default_l0_single)
    # Fallbacks for unlisted exit reasons, scaled off Table 1 parts 3/5.
    l0_handler_default: int = 2500   # paper: Table 1 part 3 (fallback)
    l1_handler_default: int = 1500   # paper: Table 1 part 5 (fallback)
    l0_single_default: int = 1100    # paper: Fig. 6 L1 bar (fallback)

    # -- HW SVt (paper §4) ------------------------------------------------
    svt_stall_resume: int = 20   # paper: §4 thread stall/resume event
    ctxt_access: int = 1         # paper: §4 ctxtld/ctxtst via the PRF
    # Caching the SVt fields is free: "the loading of the micro-
    # architectural registers ... already happens during the existing
    # VMPTRLD instruction".
    svt_vmptrld_cache: int = 0   # paper: §5.1

    # -- SW SVt channel & wait mechanisms (paper §5.2, §6.1) --------------
    # Cache-line ownership transfer by placement; sibling thread /
    # same-node core / cross-socket.
    cacheline_transfer_smt: int = 50     # paper: §6.1 SMT sibling
    cacheline_transfer_core: int = 150   # paper: §6.1 same NUMA node
    cacheline_transfer_numa: int = 1200  # paper: §6.1 cross-socket
    # Wait mechanisms: mwait C1 exit, monitor arm, one poll spin.
    mwait_wake: int = 60                 # paper: §5.2 mwait wake
    monitor_arm: int = 25                # paper: §5.2 mwait arm
    poll_iteration: int = 6              # paper: §5.2 polling
    # Sibling throughput stolen by a polling SVt-thread.
    poll_smt_interference: float = 0.22  # paper: §6.1 poll overhead
    mutex_startup: int = 1800            # paper: §5.2 futex block
    mutex_wake: int = 2200               # paper: §5.2 futex wake
    # Command-ring payload: GPRs serialised at 2.5 ns per register
    # (tenths of ns so the model stays integral).
    channel_payload_regs: int = 16       # paper: §5.2 command ring
    channel_per_reg_tenths: int = 25     # paper: §5.2 command ring

    # Waking an idle (halted) vCPU thread: kvm_vcpu_kick IPI + scheduler
    # wakeup + run-queue latency.  This is context-switch cost in the
    # paper's sense: HW SVt replaces it with a thread resume; SW SVt's
    # mwait-parked SVt-thread avoids it for L1 wakes (the wake is the
    # channel's cache-line write), but still pays it for L2 wakes.
    idle_wake: int = 6000          # paper: §6.2 (effective)

    # -- interrupts --------------------------------------------------------
    # Effective values chosen so the interrupt-path results land on the
    # shapes of the paper's §6.2 subsystem benchmarks.
    irq_delivery: int = 300        # paper: §6.2 (wire/LAPIC to host)
    irq_inject: int = 800          # paper: §6.2 (inject into guest)
    ipi_cost: int = 500            # paper: §6.2 (effective)
    timer_program: int = 120       # paper: §6.2 (TSC-deadline WRMSR)
    eoi_cost: int = 100            # paper: §6.2 (effective)

    # -- misc ---------------------------------------------------------------
    pipeline_flush: int = 150      # paper: §4 (inside switch totals)
    memory_touch: int = 4          # paper: §6.1 (cache-hit access)

    # -- identity -----------------------------------------------------------
    # Stable name of the model these constants calibrate.  The default
    # instance *is* the paper's Xeon (Table 1), so a bare ``CostModel()``
    # and the registered ``xeon-paper`` model compare equal.  The id
    # rides along in ``dataclasses.asdict`` and therefore in the segment
    # cost fingerprints and the result-cache keys; the registry
    # (:mod:`repro.cpu.costmodels`) validates and resolves it.
    model_id: str = "xeon-paper"

    def __post_init__(self):
        for name in (
            "cpuid_guest_work", "switch_l2_l0", "switch_l0_l1",
            "vmcs_transform", "l0_lazy_switch", "l1_lazy_switch",
            "svt_stall_resume", "ctxt_access",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"cost {name} must be non-negative")
        if not 0 <= self.poll_smt_interference < 1:
            raise ConfigError("poll_smt_interference must be in [0, 1)")
        if not self.model_id or not isinstance(self.model_id, str):
            raise ConfigError("model_id must be a non-empty string")

    # -- per-crossing halves ------------------------------------------------

    @property
    def switch_l2_l0_each(self):
        """One direction of the guest<->host switch (Table 1 part 1 is
        the round-trip total)."""
        return self.switch_l2_l0 // 2

    @property
    def switch_l0_l1_each(self):
        """One direction of the L0<->L1 hypervisor switch (part 4)."""
        return self.switch_l0_l1 // 2

    @property
    def vmcs_transform_each(self):
        """One direction of the vmcs02<->vmcs12 transform (part 2 covers
        both Alg. 1 line 3 and line 14)."""
        return self.vmcs_transform // 2

    # -- handler lookups ----------------------------------------------------

    def l0_pure(self, reason):
        """Pure L0 nested-path handler cost for an exit reason."""
        return self.l0_handler_pure.get(reason, self.l0_handler_default)

    def l1_pure(self, reason):
        """Pure L1 handler cost for a reflected exit reason."""
        return self.l1_handler_pure.get(reason, self.l1_handler_default)

    def l0_single(self, reason):
        """L0 handler cost for a single-level guest's exit."""
        return self.l0_single_level.get(reason, self.l0_single_default)

    # -- channel helpers ----------------------------------------------------

    def cacheline_transfer(self, placement):
        """One cache-line ownership transfer for a placement ('smt',
        'core', or 'numa')."""
        table = {
            "smt": self.cacheline_transfer_smt,
            "core": self.cacheline_transfer_core,
            "numa": self.cacheline_transfer_numa,
        }
        try:
            return table[placement]
        except KeyError:
            raise ConfigError(f"unknown placement {placement!r}") from None

    def channel_payload_ns(self):
        """Serialising the register payload into/out of the ring."""
        return (self.channel_payload_regs * self.channel_per_reg_tenths) // 10

    def channel_one_way(self, placement="smt", mechanism="mwait"):
        """One command delivery: line transfer + payload + wake cost."""
        base = self.cacheline_transfer(placement) + self.channel_payload_ns()
        if mechanism == "mwait":
            return base + self.mwait_wake
        if mechanism == "polling":
            return base + self.poll_iteration
        if mechanism == "mutex":
            return base + self.mutex_wake
        raise ConfigError(f"unknown wait mechanism {mechanism!r}")

    # -- derived sanity anchors ----------------------------------------------

    def table1_total(self):
        """Baseline nested cpuid total — must equal 10 400 ns."""
        return (
            self.cpuid_guest_work
            + self.switch_l2_l0
            + self.vmcs_transform
            + self.l0_pure("CPUID") + self.l0_lazy_switch
            + self.switch_l0_l1
            + self.l1_pure("CPUID") + self.l1_lazy_switch
        )

    def with_overrides(self, **overrides):
        """A copy with some constants replaced (ablation hook).

        ``model_id`` passes through unchanged unless overridden — the
        copy is still "the xeon-paper model, perturbed".  Cache and
        segment-memo identity come from the fingerprint over *all*
        fields, never from the id alone, so two different perturbations
        sharing an id can never alias.  Use :meth:`derived` to mint a
        named variant.
        """
        return dataclasses.replace(self, **overrides)

    def derived(self, model_id, **overrides):
        """A named variant: :meth:`with_overrides` plus a new id.

        This is how the registry's synthetic models are built from the
        calibrated base — e.g. ``CostModel().derived("fast-switch",
        switch_l2_l0=200, ...)``.
        """
        return dataclasses.replace(self, model_id=model_id, **overrides)
