"""Hardware execution context (one SMT thread's replicated state)."""

from repro.cpu.prf import RenameMap
from repro.errors import VirtualizationError
from repro.sim import sanitizer as _san


class ContextState:
    """Lifecycle states of a hardware context."""

    IDLE = "idle"          # no state loaded
    RUNNING = "running"    # the core is fetching from this context
    STALLED = "stalled"    # state held in the PRF, fetch suspended (SVt)
    HALTED = "halted"      # executed HLT / mwait, waiting for an event

    ALL = (IDLE, RUNNING, STALLED, HALTED)


class HardwareContext:
    """One SMT hardware thread: a rename map over the core's shared PRF
    plus a tiny amount of per-thread control state."""

    def __init__(self, index, prf):
        self.index = index
        self.registers = RenameMap(prf)
        self.state = ContextState.IDLE
        self.owner_label = None  # e.g. "L0", "L1", "L2" — set by software

    # -- register plumbing -------------------------------------------------

    def read(self, name):
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"ctx{self.index}", name, "r",
                               "HardwareContext.read")
        return self.registers.read(name)

    def write(self, name, value):
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"ctx{self.index}", name, "w",
                               "HardwareContext.write")
        self.registers.write(name, value)

    def load_state(self, arch_registers, owner_label=None):
        """Load a full architectural snapshot into this context."""
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"ctx{self.index}", "*", "w",
                               "HardwareContext.load_state")
        self.registers.load_snapshot(arch_registers)
        if owner_label is not None:
            self.owner_label = owner_label
        if self.state == ContextState.IDLE:
            self.state = ContextState.STALLED

    def extract_state(self):
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"ctx{self.index}", "*", "r",
                               "HardwareContext.extract_state")
        return self.registers.extract_snapshot()

    def release(self):
        """Tear the context down, freeing its PRF entries."""
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"ctx{self.index}", "*", "w",
                               "HardwareContext.release")
        self.registers.clear()
        self.state = ContextState.IDLE
        self.owner_label = None

    # -- state transitions --------------------------------------------------

    def set_state(self, new_state):
        if new_state not in ContextState.ALL:
            raise VirtualizationError(f"unknown context state {new_state!r}")
        if _san.ACTIVE is not None:
            _san.ACTIVE.record(f"ctx{self.index}", "state", "w",
                               "HardwareContext.set_state")
        self.state = new_state

    @property
    def is_running(self):
        return self.state == ContextState.RUNNING

    def __repr__(self):
        owner = self.owner_label or "-"
        return f"HardwareContext(#{self.index}, {self.state}, owner={owner})"
