"""Ablation-point models: single-axis perturbations of ``xeon-paper``.

Where ``arm-flavour``/``riscv-flavour`` move many constants coherently,
these move one axis at a time so a DSE sweep (or a test) can attribute
a crossover to a single design lever:

* ``fast-switch`` — what if explicit *and* lazy VM-switch costs nearly
  vanished (aggressive tagged-state hardware)?  SVt's headroom shrinks.
* ``slow-ring`` — what if the SW SVt command ring were expensive
  (uncached device memory, slow wake IPIs)?  SW SVt loses to baseline.

Every value is ``# synthetic:`` by construction.
"""

from repro.cpu.costmodels import register_model
from repro.cpu.costs import CostModel

FAST_SWITCH = register_model(CostModel().derived(
    "fast-switch",
    switch_l2_l0=200,        # synthetic: ~4x cheaper explicit switch
    switch_l0_l1=340,        # synthetic: ~4x cheaper explicit switch
    l0_lazy_switch=520,      # synthetic: ~4x cheaper lazy save/rest
    l1_lazy_switch=210,      # synthetic: ~4x cheaper lazy save/rest
    l0_lazy_direct=220,      # synthetic: scaled with l0_lazy_switch
    l0_single_lazy=100,      # synthetic: scaled with l0_lazy_switch
))

SLOW_RING = register_model(CostModel().derived(
    "slow-ring",
    cacheline_transfer_smt=400,    # synthetic: uncached ring lines
    cacheline_transfer_core=900,   # synthetic: uncached ring lines
    cacheline_transfer_numa=4800,  # synthetic: uncached ring lines
    mwait_wake=240,          # synthetic: deep-C-state exit latency
    channel_per_reg_tenths=100,    # synthetic: 10 ns per payload reg
    mutex_startup=3600,      # synthetic: contended futex block
    mutex_wake=4400,         # synthetic: contended futex wake
))
