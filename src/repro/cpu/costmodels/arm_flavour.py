"""``arm-flavour`` — a synthetic ARM-server-like calibration point.

Not a measurement: a plausible what-if for a VHE-style ARM core, used
to exercise the design space.  The shape follows public folklore about
such cores relative to the paper's Xeon — world switches are cheaper
(less VMCS-like state, no VMREAD/VMWRITE trapping in the common path),
the event-wait primitive (WFE) wakes faster than x86 ``mwait``, and
cross-socket transfers are pricier on the larger mesh.  Every value is
``# synthetic:`` — calibrated against nothing, swept by ``repro dse``.
"""

from repro.cpu.costmodels import register_model
from repro.cpu.costs import CostModel

ARM_FLAVOUR = register_model(CostModel().derived(
    "arm-flavour",
    switch_l2_l0=560,        # synthetic: lighter world switch than Xeon
    switch_l0_l1=980,        # synthetic: same ~0.7x scaling as L2<->L0
    vmcs_transform=900,      # synthetic: smaller arch state to rewrite
    l0_lazy_switch=1450,     # synthetic: ~0.7x of the Xeon lazy share
    l1_lazy_switch=590,      # synthetic: ~0.7x of the Xeon lazy share
    l0_lazy_direct=630,      # synthetic: scaled with l0_lazy_switch
    l0_single_lazy=280,      # synthetic: scaled with l0_lazy_switch
    svt_stall_resume=16,     # synthetic: slightly cheaper thread stall
    cacheline_transfer_smt=64,    # synthetic: SMT-sibling line bounce
    cacheline_transfer_core=190,  # synthetic: mesh hop on-package
    cacheline_transfer_numa=1500,  # synthetic: cross-socket mesh
    mwait_wake=45,           # synthetic: WFE wake beats mwait C1 exit
    monitor_arm=15,          # synthetic: WFE arm is a bare instruction
    poll_iteration=5,        # synthetic: load+compare spin step
    mutex_startup=2100,      # synthetic: futex-equivalent block path
    mutex_wake=2600,         # synthetic: scheduler wake, slower uncore
    idle_wake=7000,          # synthetic: IPI + scheduler wake latency
))
