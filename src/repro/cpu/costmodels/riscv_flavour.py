"""``riscv-flavour`` — a synthetic in-order RISC-V calibration point.

Inspired by CVA6-class cores with the hypervisor extension (see
PAPERS.md): a small in-order pipeline where trap entry itself is cheap
but the software paths around it run several times slower than on a
wide Xeon, and there is no real SMT — the "sibling" placement models a
tightly-coupled second hart.  Every value is ``# synthetic:`` — a
sweepable what-if, not a measurement.
"""

from repro.cpu.costmodels import register_model
from repro.cpu.costs import CostModel

RISCV_FLAVOUR = register_model(CostModel().derived(
    "riscv-flavour",
    cpuid_guest_work=150,     # synthetic: ~3x slower scalar pipeline
    switch_l2_l0=2400,        # synthetic: ~3x the Xeon switch in sw
    switch_l0_l1=4100,        # synthetic: ~3x, CSR-heavy save/restore
    vmcs_transform=3800,      # synthetic: vs-CSR shadow copy in sw
    l0_lazy_switch=6100,      # synthetic: ~3x the Xeon lazy share
    l1_lazy_switch=2500,      # synthetic: ~3x the Xeon lazy share
    l0_lazy_direct=2700,      # synthetic: scaled with l0_lazy_switch
    l0_single_lazy=1200,      # synthetic: scaled with l0_lazy_switch
    svt_stall_resume=35,      # synthetic: simpler core, slower fetch
    cacheline_transfer_smt=80,    # synthetic: shared-L1 hart pair
    cacheline_transfer_core=240,  # synthetic: crossbar hop
    cacheline_transfer_numa=2000,  # synthetic: off-chip interconnect
    mwait_wake=90,            # synthetic: WFI wake + pipeline refill
    monitor_arm=30,           # synthetic: reservation-set arm
    poll_iteration=9,         # synthetic: load+branch spin step
    mutex_startup=4200,       # synthetic: ~2.3x slower kernel path
    mutex_wake=5100,          # synthetic: ~2.3x slower kernel path
    idle_wake=14000,          # synthetic: software IPI + slow sched
))
