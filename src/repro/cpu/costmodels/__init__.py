"""Named, validated cost-model registry.

One simulator, many calibration points.  The paper's Xeon (Table 1) is
the ``xeon-paper`` model and stays the default — a bare ``CostModel()``
compares equal to it, so existing call sites are bit-identical.  On top
of it the bundled modules register synthetic variants (``arm-flavour``,
``riscv-flavour``, ``fast-switch``, ``slow-ring``) whose every constant
carries a ``# synthetic:`` rationale (svtlint SVT002 enforces this the
same way it enforces ``# paper:`` citations in ``repro.cpu.costs``).

Resolution has three layers, all going through :func:`resolve`:

* ``None`` — the *ambient default*: whatever :func:`use_default` has
  installed (the experiment runner installs the ``cost_model``
  parameter around every cell), falling back to ``xeon-paper``.
* a name — :func:`get_model` lookup (``"arm-flavour"``).
* a :class:`~repro.cpu.costs.CostModel` — passed through untouched.

The ambient default is a per-process stack, so pool workers installing
a model around a cell never leak it across cells, and monkeypatching
one place (:func:`use_default` / :func:`default_model`) affects every
layer that used to call ``CostModel()`` ad hoc.
"""

from contextlib import contextmanager

from repro.cpu.costs import CostModel
from repro.errors import ConfigError

#: Name of the model every layer falls back to.
DEFAULT_MODEL = "xeon-paper"

#: Registered models by ``model_id``.
_MODELS = {}

#: Ambient-default stack (installed by :func:`use_default`).
_DEFAULT_STACK = []

#: Exit reasons every registered model must price explicitly — the
#: calibration anchors of Table 1 / Fig. 6.
_REQUIRED_REASONS = ("CPUID",)


def validate_model(model):
    """Raise :class:`~repro.errors.ConfigError` unless ``model`` is a
    well-formed registry entry (CostModel invariants are checked by its
    own ``__post_init__``; this adds the registry-level contract)."""
    if not isinstance(model, CostModel):
        raise ConfigError(f"not a CostModel: {model!r}")
    name = model.model_id
    if not name.replace("-", "").replace("_", "").isalnum() \
            or name != name.lower():
        raise ConfigError(
            f"model_id {name!r} must be lowercase kebab-case"
        )
    for reason in _REQUIRED_REASONS:
        for table_name in ("l0_handler_pure", "l1_handler_pure",
                           "l0_single_level"):
            if reason not in getattr(model, table_name):
                raise ConfigError(
                    f"model {name!r}: {table_name} must price {reason!r}"
                )
    if model.table1_total() <= 0:
        raise ConfigError(f"model {name!r}: empty Table-1 cycle")


def register_model(model, replace=False):
    """Validate and add a model under its ``model_id``; returns it."""
    validate_model(model)
    if model.model_id in _MODELS and not replace:
        raise ConfigError(
            f"duplicate cost model {model.model_id!r}"
        )
    _MODELS[model.model_id] = model
    return model


def unregister_model(name):
    """Remove a model (test hook)."""
    _MODELS.pop(name, None)


def model_names():
    """Sorted ids of every registered model."""
    return sorted(_MODELS)


def get_model(name):
    """Look a model up by id."""
    try:
        return _MODELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown cost model {name!r}; "
            f"known: {', '.join(model_names())}"
        ) from None


def default_model():
    """The ambient default (innermost :func:`use_default`), falling
    back to the registered ``xeon-paper`` model."""
    if _DEFAULT_STACK:
        return _DEFAULT_STACK[-1]
    return get_model(DEFAULT_MODEL)


@contextmanager
def use_default(model=None):
    """Install ``model`` (name, instance, or ``None`` for the current
    default) as the ambient default within the ``with`` block."""
    resolved = resolve(model)
    _DEFAULT_STACK.append(resolved)
    try:
        yield resolved
    finally:
        _DEFAULT_STACK.pop()


def resolve(costs=None):
    """Normalize a ``costs`` argument to a :class:`CostModel`."""
    if costs is None:
        return default_model()
    if isinstance(costs, str):
        return get_model(costs)
    if isinstance(costs, CostModel):
        return costs
    raise ConfigError(
        f"cannot resolve cost model from {type(costs).__name__}"
    )


# Bundled models register themselves on import (safe mid-module: the
# registry functions above already exist when the submodules run).
from repro.cpu.costmodels import ablations  # noqa: E402,F401
from repro.cpu.costmodels import arm_flavour  # noqa: E402,F401
from repro.cpu.costmodels import riscv_flavour  # noqa: E402,F401
from repro.cpu.costmodels import xeon_paper  # noqa: E402,F401
