"""``xeon-paper`` — the paper's calibrated Xeon model (the default).

Every constant lives in :class:`repro.cpu.costs.CostModel` field
defaults, each with its own ``# paper:`` citation (Table 1 is the
anchor; see that module's docstring for the full derivation).  The
registered instance *is* ``CostModel()``, so code that used to default-
construct a model resolves to a bit-identical calibration.
"""

from repro.cpu.costmodels import register_model
from repro.cpu.costs import CostModel

# paper: Table 1 (all constants inherited from CostModel's defaults).
XEON_PAPER = register_model(CostModel())
