"""SMT core with SVt fetch steering.

Implements the micro-architectural side of paper §4 / Figure 4: several
hardware contexts share one physical register file; a per-core
``SVt_current`` register selects which context the front-end fetches from;
``SVt_visor`` / ``SVt_vm`` / ``SVt_nested`` (cached from the active VMCS
at VMPTRLD time) steer VM trap and resume events; ``is_vm`` marks whether
guest code is executing.

The core enforces the paper's cardinal invariant: **at most one context is
RUNNING at any instant** ("only one hardware thread is executing at any
point in time", §1), which is also why SVt sidesteps SMT's side-channel
and interference problems (§3.4).
"""

from repro.cpu.context import ContextState, HardwareContext
from repro.cpu.prf import PhysicalRegisterFile
from repro.errors import VirtualizationError
from repro.sim import sanitizer as _san
from repro.sim.trace import Category

#: Sentinel for "no context" in SVt_* registers (paper: "an invalid value").
INVALID_CONTEXT = -1


class SmtCore:
    """One SMT core: contexts, shared PRF, SVt micro-registers."""

    def __init__(self, sim, cost_model, tracer, n_contexts=2, prf_size=512,
                 core_id=0, obs=None):
        if n_contexts < 1:
            raise VirtualizationError("core needs at least one context")
        self.core_id = core_id
        self.sim = sim
        self.costs = cost_model
        self.tracer = tracer
        self.obs = obs
        self.prf = PhysicalRegisterFile(prf_size)
        self.contexts = [
            HardwareContext(i, self.prf) for i in range(n_contexts)
        ]
        # SVt micro-architectural registers (paper Table 2).
        self.svt_current = 0
        self.svt_visor = INVALID_CONTEXT
        self.svt_vm = INVALID_CONTEXT
        self.svt_nested = INVALID_CONTEXT
        self.is_vm = False
        self.contexts[0].set_state(ContextState.RUNNING)

    # -- basic accessors -----------------------------------------------------

    @property
    def n_contexts(self):
        return len(self.contexts)

    @property
    def active_context(self):
        return self.contexts[self.svt_current]

    def context(self, index):
        if not 0 <= index < len(self.contexts):
            raise VirtualizationError(f"no hardware context {index}")
        return self.contexts[index]

    def running_contexts(self):
        return [c for c in self.contexts if c.is_running]

    def check_single_running(self):
        """The SVt invariant: at most one context fetches at a time."""
        running = self.running_contexts()
        if len(running) > 1:
            raise AssertionError(
                f"multiple running contexts: {[c.index for c in running]}"
            )

    # -- SVt micro-register management (VMPTRLD path, paper §4 step B) -------

    def load_svt_fields(self, visor, vm, nested):
        """Cache the three SVt VMCS fields into the micro-registers.
        Called when the active VMCS is loaded (VMPTRLD)."""
        for name, value in (("visor", visor), ("vm", vm), ("nested", nested)):
            if value != INVALID_CONTEXT and not 0 <= value < self.n_contexts:
                raise VirtualizationError(
                    f"SVt_{name} points at nonexistent context {value}"
                )
        self.svt_visor = visor
        self.svt_vm = vm
        self.svt_nested = nested
        self.sim.charge(self.costs.svt_vmptrld_cache)
        self.tracer.record(Category.STALL_RESUME, self.costs.svt_vmptrld_cache)

    # -- fetch steering (paper §4 steps C / steady state) ---------------------

    def svt_resume(self):
        """VM resume in SVt mode: stall the current context, fetch from
        ``SVt_vm``, set ``is_vm`` (paper: "copies SVt_vm into SVt_current
        ... also sets the is_vm register to one")."""
        if self.svt_vm == INVALID_CONTEXT:
            raise VirtualizationError("VM resume with no SVt_vm configured")
        self._switch_fetch(self.svt_vm)
        self.is_vm = True

    def svt_trap(self):
        """VM trap in SVt mode: stall the current context, fetch from
        ``SVt_visor``, clear ``is_vm``."""
        if self.svt_visor == INVALID_CONTEXT:
            raise VirtualizationError("VM trap with no SVt_visor configured")
        self._switch_fetch(self.svt_visor)
        self.is_vm = False

    def force_fetch(self, target_index):
        """Steer the fetch target directly (used by extensions like the
        §3.1 level bypass, where a resume skips intermediate levels)."""
        self._switch_fetch(target_index)

    def _switch_fetch(self, target_index):
        """Stall current, run target, charge one stall/resume event."""
        target = self.context(target_index)
        current = self.active_context
        if current is target:
            return
        current.set_state(ContextState.STALLED)
        target.set_state(ContextState.RUNNING)
        self.svt_current = target_index
        if _san.ACTIVE is not None:
            # The stall/resume pair is itself a sanctioned ordering
            # point between the two contexts' shared-state accesses.
            _san.ACTIVE.ordering_event("ctx-switch")
        self.sim.charge(self.costs.svt_stall_resume)
        self.tracer.record(Category.STALL_RESUME, self.costs.svt_stall_resume)
        if self.obs is not None:
            self.obs.count("svt_transitions_total",
                           src=current.index, dst=target_index)
        self.check_single_running()

    # -- cross-context register file access (paper §4, ctxtld/ctxtst) ---------

    def cross_read(self, target_index, register):
        """Read ``register`` of another context through its rename map.
        The *semantic* operation — permission checks and ``lvl``
        virtualization live in `repro.core.cross_context`."""
        value = self.context(target_index).read(register)
        self.sim.charge(self.costs.ctxt_access)
        self.tracer.record(Category.CROSS_CONTEXT, self.costs.ctxt_access)
        if self.obs is not None:
            self.obs.count("ctxt_access_total", op="ctxtld")
        return value

    def cross_write(self, target_index, register, value):
        """Write ``register`` of another context through its rename map."""
        self.context(target_index).write(register, value)
        self.sim.charge(self.costs.ctxt_access)
        self.tracer.record(Category.CROSS_CONTEXT, self.costs.ctxt_access)
        if self.obs is not None:
            self.obs.count("ctxt_access_total", op="ctxtst")

    def __repr__(self):
        return (
            f"SmtCore(#{self.core_id}, {self.n_contexts} contexts, "
            f"current={self.svt_current}, is_vm={self.is_vm})"
        )
