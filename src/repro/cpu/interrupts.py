"""Interrupt controller model (LAPIC-like, per core).

Models what the evaluation needs: external interrupts (device completions,
timer) arriving asynchronously, IPIs between hardware contexts, and the
TSC-deadline timer the video workload leans on (paper §6.3.3: MSR_WRITE
exits "largely due to configuring timer interrupts (TSC deadline MSR)").

SVt's interrupt rule (paper §3.1): *"the simplest option is to have the
hypervisor configure the interrupt controller in a way that treats all
SVt-enabled contexts as part of the same target CPU by redirecting all
external interrupts to the hardware context where the L0 hypervisor is
executing"* — implemented by :meth:`InterruptController.redirect_all_to`.
"""

from collections import deque

from repro.errors import VirtualizationError


class Vectors:
    """Well-known interrupt vector numbers."""

    TIMER = 0xEC
    NET_RX = 0x60
    NET_TX = 0x61
    BLOCK = 0x62
    IPI_RESCHEDULE = 0xFD
    IPI_TLB_SHOOTDOWN = 0xFE
    SPURIOUS = 0xFF


class InterruptController:
    """Pending-interrupt bookkeeping for every context of one core."""

    def __init__(self, sim, n_contexts, cost_model, obs=None):
        self._sim = sim
        self._costs = cost_model
        self._pending = [deque() for _ in range(n_contexts)]
        self._deadline_handles = {}
        self._redirect_target = None
        self._observers = []
        self.obs = obs
        self.delivered = 0
        self.spurious = 0

    # -- configuration ----------------------------------------------------

    def redirect_all_to(self, context_index):
        """Route every *external* interrupt to one context (SVt mode)."""
        self._check_context(context_index)
        self._redirect_target = context_index

    def clear_redirect(self):
        self._redirect_target = None

    @property
    def redirect_target(self):
        """The context external interrupts steer to (``None`` when
        unredirected) — observable so steering checks need not poke
        the private field."""
        return self._redirect_target

    def add_observer(self, callback):
        """``callback(context_index, vector)`` runs on every delivery —
        used by wait loops (mwait) to wake on interrupts."""
        self._observers.append(callback)

    # -- delivery ----------------------------------------------------------

    def raise_external(self, context_index, vector, delay=0):
        """An external (device/timer) interrupt targeting a context.
        Honors the SVt redirect rule.  ``delay`` schedules the arrival in
        the future; 0 delivers now."""
        self._check_context(context_index)
        target = (
            self._redirect_target
            if self._redirect_target is not None
            else context_index
        )
        if delay > 0:
            self._sim.after(delay, self._deliver, target, vector)
        else:
            self._deliver(target, vector)

    def inject_spurious(self, context_index, vector, delay=0):
        """A fault-injected interrupt (`repro.faults`): lands on the
        *named* context at ``now + delay`` regardless of the redirect
        rule — modeling stray IPIs and misrouted vectors, generalizing
        the §5.3 interleaving beyond its scripted replay."""
        self._check_context(context_index)
        self.spurious += 1
        if self.obs is not None:
            self.obs.count("irqs_spurious_total",
                           vector=f"0x{vector:02x}", ctx=context_index)
        if delay > 0:
            self._sim.after(delay, self._deliver, context_index, vector)
        else:
            self._deliver(context_index, vector)

    def send_ipi(self, context_index, vector):
        """Inter-processor interrupt (never redirected — software chose
        the destination explicitly)."""
        self._check_context(context_index)
        self._sim.after(self._costs.ipi_cost, self._deliver,
                        context_index, vector)

    def arm_tsc_deadline(self, context_index, deadline_ns):
        """Program the TSC-deadline timer; fires a TIMER vector at the
        absolute simulation time ``deadline_ns`` (clamped to now).
        Re-arming replaces the previous deadline, like the real MSR."""
        self._check_context(context_index)
        previous = self._deadline_handles.get(context_index)
        if previous is not None:
            previous.cancel()
        when = max(deadline_ns, self._sim.now)
        handle = self._sim.at(when, self.raise_external,
                              context_index, Vectors.TIMER)
        self._deadline_handles[context_index] = handle
        return handle

    def _deliver(self, context_index, vector):
        self._pending[context_index].append((vector, self._sim.now))
        self.delivered += 1
        if self.obs is not None:
            self.obs.count("irqs_delivered_total",
                           vector=f"0x{vector:02x}", ctx=context_index)
        for callback in self._observers:
            callback(context_index, vector)

    # -- consumption ---------------------------------------------------------

    def has_pending(self, context_index):
        self._check_context(context_index)
        return bool(self._pending[context_index])

    def ack(self, context_index):
        """Pop the oldest pending interrupt as ``(vector, raised_at_ns)``."""
        self._check_context(context_index)
        if not self._pending[context_index]:
            raise VirtualizationError(
                f"context {context_index} has no pending interrupt"
            )
        return self._pending[context_index].popleft()

    def pending_count(self, context_index):
        self._check_context(context_index)
        return len(self._pending[context_index])

    def _check_context(self, index):
        if not 0 <= index < len(self._pending):
            raise VirtualizationError(f"no hardware context {index}")
