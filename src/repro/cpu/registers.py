"""Architectural register state.

The paper's cost story hinges on "saving and restoring dozens of
registers" per VM trap (§1, §2.3).  We model the x86-64 register set a
hypervisor actually context-switches: 16 GPRs, RIP/RFLAGS, control
registers, segment bases and the MSRs KVM touches on the exit path —
enough that "dozens" is literal here (see :func:`RegNames.switched_set`).
"""

from repro.errors import VirtualizationError


class RegNames:
    """Canonical register name constants."""

    GPRS = (
        "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    )
    RIP = "rip"
    RFLAGS = "rflags"
    CONTROL = ("cr0", "cr2", "cr3", "cr4", "cr8")
    SEGMENT_BASES = ("fs_base", "gs_base", "kernel_gs_base")
    MSRS = (
        "ia32_efer",
        "ia32_star",
        "ia32_lstar",
        "ia32_cstar",
        "ia32_fmask",
        "ia32_sysenter_cs",
        "ia32_sysenter_esp",
        "ia32_sysenter_eip",
        "ia32_tsc_deadline",
        "ia32_spec_ctrl",
        "ia32_pat",
        "ia32_debugctl",
    )

    ALL = GPRS + (RIP, RFLAGS) + CONTROL + SEGMENT_BASES + MSRS

    @classmethod
    def switched_set(cls):
        """Registers a VM trap/resume must transfer — the "dozens of
        values" of paper §2.3 (here: 38 named registers)."""
        return cls.ALL

    @classmethod
    def is_msr(cls, name):
        return name in cls.MSRS


class ArchRegisters:
    """A flat architectural register file snapshot.

    Values are plain integers.  Unwritten registers read as zero, like a
    freshly reset context.
    """

    __slots__ = ("_values",)

    def __init__(self, initial=None):
        self._values = {}
        if initial:
            for name, value in initial.items():
                self.write(name, value)

    def read(self, name):
        if name not in RegNames.ALL:
            raise VirtualizationError(f"unknown register {name!r}")
        return self._values.get(name, 0)

    def write(self, name, value):
        if name not in RegNames.ALL:
            raise VirtualizationError(f"unknown register {name!r}")
        if not isinstance(value, int):
            raise VirtualizationError(
                f"register {name} takes integers, got {type(value).__name__}"
            )
        self._values[name] = value & 0xFFFFFFFFFFFFFFFF

    def copy(self):
        clone = ArchRegisters()
        clone._values = dict(self._values)
        return clone

    def diff(self, other):
        """Names whose values differ between the two snapshots."""
        names = set(self._values) | set(other._values)
        return sorted(
            name for name in names if self.read(name) != other.read(name)
        )

    def as_dict(self):
        """Snapshot of the explicitly-written registers."""
        return dict(self._values)

    def __eq__(self, other):
        if not isinstance(other, ArchRegisters):
            return NotImplemented
        return all(
            self.read(name) == other.read(name) for name in RegNames.ALL
        )

    def __repr__(self):
        written = ", ".join(
            f"{k}={v:#x}" for k, v in sorted(self._values.items())
        )
        return f"ArchRegisters({written})"
