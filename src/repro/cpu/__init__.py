"""CPU substrate: SMT cores, register files, ISA, interrupts, timing.

This package models the hardware the paper's design modifies.  The SMT
core (`repro.cpu.smt`) exposes the pieces SVt builds on — per-context
rename maps over a shared physical register file, and a fetch-target
register — while `repro.cpu.costs` holds every timing constant, calibrated
against the paper's Table 1 breakdown.
"""

from repro.cpu.costs import CostModel
from repro.cpu.context import ContextState, HardwareContext
from repro.cpu.interrupts import InterruptController, Vectors
from repro.cpu.isa import Instruction, Op, Program
from repro.cpu.prf import PhysicalRegisterFile, RenameMap
from repro.cpu.registers import ArchRegisters, RegNames
from repro.cpu.smt import INVALID_CONTEXT, SmtCore

__all__ = [
    "ArchRegisters",
    "ContextState",
    "CostModel",
    "HardwareContext",
    "INVALID_CONTEXT",
    "Instruction",
    "InterruptController",
    "Op",
    "PhysicalRegisterFile",
    "Program",
    "RegNames",
    "RenameMap",
    "SmtCore",
    "Vectors",
]
