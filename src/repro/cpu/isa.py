"""Abstract instruction set for guest and hypervisor programs.

Programs are streams of :class:`Instruction`.  Only the properties the
evaluation depends on are modelled: how long an instruction computes, and
whether it is *protected* — i.e. whether executing it inside a VM raises a
VM trap (paper §1's trap-and-emulate model).  The SVt additions
(``ctxtld``/``ctxtst``, paper Table 2) are first-class instructions.
"""

from dataclasses import dataclass, field

from repro.errors import VirtualizationError


class Op:
    """Instruction kinds."""

    ALU = "alu"                  # plain computation, never traps
    CPUID = "cpuid"              # unconditionally trapped in VMX
    RDMSR = "rdmsr"
    WRMSR = "wrmsr"
    IO_READ = "io_read"          # port I/O
    IO_WRITE = "io_write"
    MMIO_READ = "mmio_read"      # memory-mapped I/O (EPT misconfig traps)
    MMIO_WRITE = "mmio_write"
    VMCALL = "vmcall"            # explicit hypercall
    VMPTRLD = "vmptrld"          # load a VMCS (traps when nested)
    VMREAD = "vmread"
    VMWRITE = "vmwrite"
    VMRESUME = "vmresume"
    INVEPT = "invept"
    RDTSC = "rdtsc"              # traps only if the hypervisor forces it
    HLT = "hlt"
    PAUSE = "pause"
    MONITOR = "monitor"
    MWAIT = "mwait"
    CTXTLD = "ctxtld"            # SVt: read a register of another context
    CTXTST = "ctxtst"            # SVt: write a register of another context

    # Kinds that *always* trap when executed inside a VM (hardware-defined
    # unconditional exits plus the VMX instructions, which a nested guest
    # hypervisor cannot run natively).
    ALWAYS_EXITING = frozenset({
        CPUID, VMCALL, VMPTRLD, VMREAD, VMWRITE, VMRESUME, INVEPT,
    })

    # Kinds whose trapping is conditional on VMCS controls / EPT layout.
    CONDITIONALLY_EXITING = frozenset({
        RDMSR, WRMSR, IO_READ, IO_WRITE, MMIO_READ, MMIO_WRITE, HLT,
        MONITOR, MWAIT, CTXTLD, CTXTST, RDTSC,
    })


@dataclass(frozen=True)
class Instruction:
    """One abstract instruction.

    ``work_ns`` is the cost of the instruction itself when it does *not*
    trap; trap-path costs come from the cost model, not from here.
    ``operands`` carries kind-specific data (MSR index, MMIO address,
    VMCS field name, target register for ctxtld/ctxtst, ...).
    """

    kind: str
    work_ns: int = 0
    operands: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.work_ns < 0:
            raise VirtualizationError("instruction work must be >= 0")

    def operand(self, name):
        try:
            return self.operands[name]
        except KeyError:
            raise VirtualizationError(
                f"{self.kind} instruction missing operand {name!r}"
            ) from None


# -- instruction builders ---------------------------------------------------

def alu(work_ns):
    """Plain computation of ``work_ns`` nanoseconds."""
    return Instruction(Op.ALU, work_ns=work_ns)


def cpuid(leaf=0):
    return Instruction(Op.CPUID, work_ns=0, operands={"leaf": leaf})


def rdmsr(msr):
    return Instruction(Op.RDMSR, operands={"msr": msr})


def wrmsr(msr, value):
    return Instruction(Op.WRMSR, operands={"msr": msr, "value": value})


def io_read(port, size=1):
    return Instruction(Op.IO_READ, operands={"port": port, "size": size})


def io_write(port, value, size=1):
    return Instruction(
        Op.IO_WRITE, operands={"port": port, "value": value, "size": size}
    )


def mmio_read(addr, size=4):
    return Instruction(Op.MMIO_READ, operands={"addr": addr, "size": size})


def mmio_write(addr, value, size=4):
    return Instruction(
        Op.MMIO_WRITE, operands={"addr": addr, "value": value, "size": size}
    )


def vmcall(number=0, payload=None):
    return Instruction(
        Op.VMCALL, operands={"number": number, "payload": payload or {}}
    )


def vmptrld(vmcs_name):
    return Instruction(Op.VMPTRLD, operands={"vmcs": vmcs_name})


def vmread(fields):
    return Instruction(Op.VMREAD, operands={"fields": tuple(fields)})


def vmwrite(assignments):
    return Instruction(Op.VMWRITE, operands={"assignments": dict(assignments)})


def vmresume():
    return Instruction(Op.VMRESUME)


def invept():
    return Instruction(Op.INVEPT)


def rdtsc():
    """Read the timestamp counter (paper §2.1's example of a resource L1
    may pass through while L0 forces it to trap)."""
    return Instruction(Op.RDTSC)


def hlt():
    return Instruction(Op.HLT)


def ctxtld(lvl, register):
    """SVt cross-context load (paper Table 2)."""
    return Instruction(Op.CTXTLD, operands={"lvl": lvl, "register": register})


def ctxtst(lvl, register, value):
    """SVt cross-context store (paper Table 2)."""
    return Instruction(
        Op.CTXTST, operands={"lvl": lvl, "register": register, "value": value}
    )


class Program:
    """A finite instruction stream with an optional repeat count.

    Iterating a program yields its instructions ``repeat`` times; the
    object itself is re-iterable.
    """

    def __init__(self, instructions, repeat=1, label="program"):
        self.instructions = tuple(instructions)
        if repeat < 1:
            raise VirtualizationError("program repeat must be >= 1")
        self.repeat = repeat
        self.label = label

    def __iter__(self):
        for _ in range(self.repeat):
            yield from self.instructions

    def __len__(self):
        return len(self.instructions) * self.repeat

    def total_work_ns(self):
        """Sum of the non-trap work in one full iteration set."""
        return sum(instr.work_ns for instr in self) if self.instructions else 0

    def __repr__(self):
        return (
            f"Program({self.label!r}, {len(self.instructions)} instrs "
            f"x{self.repeat})"
        )
