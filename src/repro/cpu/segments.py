"""Segment compiler: batch-replayable slices of instruction streams.

The interpreter loop in :meth:`repro.core.system.Machine.run_program`
pays a full dispatch per instruction — deferred-I/O check, interrupt
window, classification — even for instructions that *provably* cannot
exit or touch machine state (plain ``ALU`` work, ``PAUSE``).  This
module compiles a :class:`~repro.cpu.isa.Program` once into a plan of

* **segments** — maximal runs of unconditionally non-exiting,
  side-effect-free instructions (``Op.ALU``/``Op.PAUSE``), stored as a
  cost vector plus suffix sums so the replay loop can charge any
  remaining span in O(1); and
* **steps** — every other instruction, kept as an index into the
  program and dispatched through the ordinary
  :meth:`~repro.core.system.Machine.run_instruction` path, so every
  possible VM-exit, interrupt window and fault-injection site stays a
  segment boundary.

Equivalence argument (the byte-identity bar in docs/performance.md):
inside a segment the legacy loop's per-instruction checks are no-ops
unless a scheduled event fires — deferred I/O and pending interrupts
only ever appear from event callbacks or exit handling.  The replay
loop re-runs those checks at every point where an event *can* fire
(segment entry, and after each single-instruction step while the next
deadline lies inside the remaining span), and charges straight through
otherwise, so the machine passes through exactly the same state/time
trajectory as the legacy path.

Plans are structural — they depend only on the instruction kinds and
work costs, never on operand values — and are memoized per
``(structure, repeat, mode, level, cost-model fingerprint)`` so
BASELINE/SW/HW cells of the same workload share compilations without
ever crossing modes.
"""

import weakref
from dataclasses import asdict

from repro.cpu.isa import Op

#: Instructions a segment may absorb: never exit at any level in this
#: stack, and execute with no architectural side effects — `_classify`
#: returns None and `_execute_locally` ignores them, so their entire
#: legacy footprint is the `work_ns` charge.
BATCHABLE = frozenset({Op.ALU, Op.PAUSE})

#: Smallest dynamic count of *batchable* instructions
#: (:func:`batchable_dynamic`) worth compiling.  The original gate
#: counted every instruction and sat at 64, which routed the 63-ALU
#: ablation_hw_model program through the legacy loop and showed up as a
#: 0.93x "speedup" in BENCH_sim.json.  Measured sweep (same program,
#: forced compile vs legacy loop, min-of-400, this module's memo warm):
#:
#:   pure-ALU  dyn=4 0.90x | dyn=8 1.83x | dyn=63 5.94x | dyn=256 24x
#:   all-CPUID dyn=4 0.98x | dyn=8 0.95x | dyn=16 0.88x (never wins)
#:
#: The crossover tracks the *batchable* population, not the program
#: length: all-stepped programs only ever pay the memo-key build, so
#: the gate now counts ``Op.ALU``/``Op.PAUSE`` instructions times the
#: repeat and compiles from 8 up — past the measured break-even with
#: margin for the cold-memo first call.
COMPILE_MIN_INSTRUCTIONS = 8

#: Memo bound; a full wipe on overflow keeps the policy trivially
#: deterministic (no LRU ordering state).
_MEMO_MAX = 256

_memo = {}

#: Memo traffic counters (satellite of docs/performance.md's batch
#: section): a silent full wipe mid-sweep otherwise reads as an
#: unexplained slowdown.  Plain module counters — the replay hot path
#: never branches on them — surfaced by ``repro bench`` via
#: :func:`memo_stats`.
_memo_hits = 0
_memo_misses = 0
_memo_wipes = 0


def memo_stats():
    """Compile-memo traffic since process start or the last reset."""
    return {
        "hits": _memo_hits,
        "misses": _memo_misses,
        "wipes": _memo_wipes,
        "entries": len(_memo),
    }


def reset_memo_stats():
    """Zero the memo counters (bench sections reset between kernels)."""
    global _memo_hits, _memo_misses, _memo_wipes
    _memo_hits = _memo_misses = _memo_wipes = 0


def batchable_dynamic(program):
    """Dynamic count of segment-absorbable instructions in ``program``.

    ``len(batchable statics) * repeat``, cached on the program object —
    programs are immutable after construction, so the O(len) scan runs
    once and the compile gate in ``Machine.run_program`` stays O(1) on
    the re-run path.
    """
    count = getattr(program, "_batchable_static", None)
    if count is None:
        count = sum(1 for ins in program.instructions
                    if ins.kind in BATCHABLE)
        program._batchable_static = count
    return count * program.repeat


class Segment:
    """One batchable run: per-instruction costs plus suffix sums."""

    __slots__ = ("start", "costs", "suffix", "total")

    def __init__(self, start, costs):
        self.start = start
        self.costs = costs
        suffix = [0] * (len(costs) + 1)
        for index in range(len(costs) - 1, -1, -1):
            suffix[index] = suffix[index + 1] + costs[index]
        self.suffix = tuple(suffix)
        self.total = suffix[0]

    def __len__(self):
        return len(self.costs)

    def __repr__(self):
        return (f"Segment(start={self.start}, n={len(self.costs)}, "
                f"total={self.total})")


class CompiledProgram:
    """The replay plan for one (program, mode, level, costs) tuple.

    ``nodes`` holds :class:`Segment` objects interleaved with plain
    ``int`` step indices, in program order.  ``single`` is set when the
    whole pass is one segment — the replay loop then folds every repeat
    into a single multi-pass charge instead of looping per pass.
    """

    __slots__ = ("nodes", "single", "count")

    def __init__(self, nodes, count):
        self.nodes = tuple(nodes)
        self.count = count
        self.single = (self.nodes[0]
                       if len(self.nodes) == 1
                       and isinstance(self.nodes[0], Segment) else None)

    def __repr__(self):
        return (f"CompiledProgram(nodes={len(self.nodes)}, "
                f"count={self.count}, single={self.single is not None})")


def _freeze(value):
    """Hashable deep-freeze of a cost-model field tree."""
    if isinstance(value, dict):
        return tuple(sorted((key, _freeze(item))
                            for key, item in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


_cost_fp_cache = {}


def _cost_fingerprint(costs):
    """``_freeze(asdict(costs))``, cached per CostModel instance.

    ``asdict`` walks the entire (immutable) cost model and dominated
    every ``compile_program`` call for workloads that run many tiny
    programs; a CostModel never changes after construction, so the
    fingerprint is keyed by identity with a weakref guard against id
    reuse after collection.
    """
    key = id(costs)
    entry = _cost_fp_cache.get(key)
    if entry is not None and entry[0]() is costs:
        return entry[1]
    fingerprint = _freeze(asdict(costs))
    if len(_cost_fp_cache) >= _MEMO_MAX:
        _cost_fp_cache.clear()
    _cost_fp_cache[key] = (weakref.ref(costs), fingerprint)
    return fingerprint


def cost_fingerprint(costs):
    """Public, hashable fingerprint of a cost model's full contents.

    Other memo layers (e.g. the service-time memo in
    ``repro.workloads.memcached``) key on this so "same cost model" has
    one definition across the codebase — and they inherit the identity
    cache above instead of re-walking the dataclass."""
    return _cost_fingerprint(costs)


def _compile(instructions):
    nodes = []
    index = 0
    n = len(instructions)
    while index < n:
        if instructions[index].kind in BATCHABLE:
            stop = index
            while stop < n and instructions[stop].kind in BATCHABLE:
                stop += 1
            costs = tuple(ins.work_ns
                          for ins in instructions[index:stop])
            nodes.append(Segment(index, costs))
            index = stop
        else:
            nodes.append(index)
            index += 1
    return CompiledProgram(nodes, count=n)


def compile_program(program, mode, level, costs):
    """Compiled plan for ``program`` in a mode/level/cost context.

    Memoized: the structural key covers every input the plan could
    depend on (kinds and work costs per instruction, the repeat count,
    the execution mode and level, and the full cost-model contents) —
    deliberately *not* operand values, which only matter to stepped
    instructions and are read from the live program at replay time.
    """
    global _memo_hits, _memo_misses, _memo_wipes
    key = (
        tuple((ins.kind, ins.work_ns) for ins in program.instructions),
        program.repeat,
        str(mode),
        level,
        _cost_fingerprint(costs),
    )
    plan = _memo.get(key)
    if plan is None:
        _memo_misses += 1
        if len(_memo) >= _MEMO_MAX:
            _memo.clear()
            _memo_wipes += 1
        plan = _compile(program.instructions)
        _memo[key] = plan
    else:
        _memo_hits += 1
    return plan


def structural_key(program, mode, level):
    """Cheap structural fingerprint of a (program, mode, level) cell.

    The batch scheduler (``repro.exp.runner``) groups cells that would
    share this key onto one worker so the compile memo amortizes; it
    deliberately omits the cost-model fingerprint (grouping is a
    scheduling hint, never a correctness surface — the memo key proper
    still includes it)."""
    return (
        tuple((ins.kind, ins.work_ns) for ins in program.instructions),
        program.repeat,
        str(mode),
        level,
    )
