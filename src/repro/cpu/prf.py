"""Shared physical register file and per-context rename maps.

This is the hardware property SVt exploits (paper §3, §4): *"hardware
threads of the same core share a single physical register file"*, and
*"SVt accesses the register renaming map of the target context to index
into the appropriate physical register file entry"*.

The model is functional, not cycle-level: each architectural write
allocates a fresh physical register and frees the previous mapping (an
in-order machine with immediate retirement).  What matters for the paper
— that a colocated context can read/write another context's latest
architectural values *without any memory traffic* — is exactly observable
here, and the sharing invariants are property-tested.
"""

from repro.errors import PrfExhausted, VirtualizationError
from repro.cpu.registers import RegNames


class PhysicalRegisterFile:
    """Fixed-size pool of physical registers shared by all contexts of a
    core (Haswell-class cores have 168 integer PRF entries; we default to
    enough for several full architectural contexts)."""

    def __init__(self, size=512):
        if size < len(RegNames.ALL):
            raise VirtualizationError(
                f"PRF of {size} entries cannot hold one context"
            )
        self.size = size
        self._values = [0] * size
        self._free = list(range(size - 1, -1, -1))
        self._live = set()

    def alloc(self):
        """Take a free physical register; raises :class:`PrfExhausted`."""
        if not self._free:
            raise PrfExhausted(f"all {self.size} physical registers live")
        idx = self._free.pop()
        self._live.add(idx)
        self._values[idx] = 0
        return idx

    def release(self, idx):
        if idx not in self._live:
            raise VirtualizationError(f"releasing non-live phys reg {idx}")
        self._live.remove(idx)
        self._free.append(idx)

    def read(self, idx):
        if idx not in self._live:
            raise VirtualizationError(f"reading non-live phys reg {idx}")
        return self._values[idx]

    def write(self, idx, value):
        if idx not in self._live:
            raise VirtualizationError(f"writing non-live phys reg {idx}")
        self._values[idx] = value & 0xFFFFFFFFFFFFFFFF

    @property
    def live_count(self):
        return len(self._live)

    @property
    def free_count(self):
        return len(self._free)

    def check_invariants(self):
        """Free list and live set partition the register space."""
        free = set(self._free)
        if free & self._live:
            raise AssertionError("free list overlaps live set")
        if len(free) + len(self._live) != self.size:
            raise AssertionError("free list + live set do not cover PRF")
        if len(free) != len(self._free):
            raise AssertionError("duplicate entries in free list")


class RenameMap:
    """Architectural-to-physical mapping for one hardware context."""

    def __init__(self, prf):
        self._prf = prf
        self._map = {}

    def read(self, name):
        """Latest architectural value (0 for never-written registers)."""
        if name not in RegNames.ALL:
            raise VirtualizationError(f"unknown register {name!r}")
        idx = self._map.get(name)
        return self._prf.read(idx) if idx is not None else 0

    def write(self, name, value):
        """Rename-and-write: allocate a fresh physical register, retire
        the old mapping."""
        if name not in RegNames.ALL:
            raise VirtualizationError(f"unknown register {name!r}")
        idx = self._prf.alloc()
        self._prf.write(idx, value)
        old = self._map.get(name)
        self._map[name] = idx
        if old is not None:
            self._prf.release(old)

    def physical_index(self, name):
        """The physical register currently backing ``name`` (or None)."""
        return self._map.get(name)

    def load_snapshot(self, arch_registers):
        """Bulk-load an :class:`ArchRegisters` snapshot."""
        for name, value in arch_registers.as_dict().items():
            self.write(name, value)

    def extract_snapshot(self):
        """Materialise the context's architectural state."""
        from repro.cpu.registers import ArchRegisters

        snapshot = ArchRegisters()
        for name in self._map:
            snapshot.write(name, self.read(name))
        return snapshot

    def clear(self):
        """Release every mapping (context teardown)."""
        for idx in self._map.values():
            self._prf.release(idx)
        self._map.clear()

    @property
    def mapped_names(self):
        return frozenset(self._map)

    def check_invariants(self):
        """Mapping is injective and every target is live."""
        targets = list(self._map.values())
        if len(targets) != len(set(targets)):
            raise AssertionError("rename map is not injective")
        for idx in targets:
            self._prf.read(idx)  # raises if not live
